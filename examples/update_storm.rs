//! Update storm: re-annotation vs full annotation under update load.
//!
//! Replays a stream of delete updates against the native backend twice —
//! once with the paper's Trigger-based partial re-annotation and once
//! with the brute-force "delete all annotations and annotate from
//! scratch" baseline — and reports the per-update cost of each, a
//! single-document preview of Figure 12.
//!
//! Run with: `cargo run --release --example update_storm`

use std::time::Duration;
use xac_core::{time, Backend, NativeXmlBackend, System};
use xac_xmlgen::{coverage_policy, delete_updates, xmark_document, xmark_schema, XmarkConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let doc = xmark_document(XmarkConfig::with_factor(0.02));
    let policy = coverage_policy(&doc, 0.5, 13);
    let system = System::builder(xmark_schema(), policy, doc).build()?;
    let updates = delete_updates(&xmark_schema(), 20, 5);

    let mut backend = NativeXmlBackend::new();

    let mut partial_total = Duration::ZERO;
    let mut partial_writes = 0usize;
    let mut full_total = Duration::ZERO;
    let mut full_writes = 0usize;

    println!("{:<34} {:>9} {:>12} {:>9} {:>12}", "update", "partial", "(writes)", "full", "(writes)");
    for u in &updates {
        // Partial: fresh copy, annotate, delete, Trigger-planned repair.
        // The timed region is the repair itself (plan + partial pass), so
        // both columns measure "time to get the store consistent again".
        system.load(&mut backend)?;
        system.annotate(&mut backend)?;
        backend.delete(u)?;
        let (writes_partial, partial) = time(|| {
            let plan = system.plan_update(u);
            xac_core::reannotator::apply(&mut backend, &plan).expect("partial")
        });
        let accessible_partial = backend.accessible_count()?;

        // Baseline: fresh copy, annotate, delete, full re-annotation.
        system.load(&mut backend)?;
        system.annotate(&mut backend)?;
        backend.delete(u)?;
        let (writes_full, full) = time(|| system.full_reannotate(&mut backend).expect("full"));
        let accessible_full = backend.accessible_count()?;

        assert_eq!(
            accessible_partial, accessible_full,
            "partial re-annotation diverged on `{u}`"
        );

        println!(
            "{:<34} {:>9.2?} {:>12} {:>9.2?} {:>12}",
            u.to_string(),
            partial,
            writes_partial,
            full,
            writes_full
        );
        partial_total += partial;
        partial_writes += writes_partial;
        full_total += full;
        full_writes += writes_full;
    }

    let n = updates.len() as u32;
    println!(
        "\naverage per update: partial {:?} ({} writes) vs full {:?} ({} writes)",
        partial_total / n,
        partial_writes / n as usize,
        full_total / n,
        full_writes / n as usize
    );
    if full_total > partial_total {
        println!(
            "partial re-annotation is {:.1}x faster on this document (paper: ~5x native)",
            full_total.as_secs_f64() / partial_total.as_secs_f64().max(1e-9)
        );
    }
    Ok(())
}
