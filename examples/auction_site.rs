//! Auction site: the paper's experimental setting in miniature.
//!
//! Generates an XMark-like auction document, builds a coverage policy
//! (the §7.1 dataset), and compares the three backends on load time,
//! annotation time and response time — a single-shot preview of
//! Figures 9–11.
//!
//! Run with: `cargo run --release --example auction_site`

use xac_core::{time, Backend, NativeXmlBackend, RelationalBackend, System};
use xac_xmlgen::{actual_coverage, coverage_policy, query_workload, xmark_document, xmark_schema, XmarkConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let factor = 0.02;
    let doc = xmark_document(XmarkConfig::with_factor(factor));
    println!(
        "xmark document: factor {factor}, {} elements, {} items, {} people",
        doc.element_count(),
        xac_xpath::eval(&doc, &xac_xpath::parse("//item")?).len(),
        xac_xpath::eval(&doc, &xac_xpath::parse("//person")?).len(),
    );

    let policy = coverage_policy(&doc, 0.45, 7);
    println!(
        "coverage policy: {} rules, target 45%, actual {:.1}%",
        policy.len(),
        100.0 * actual_coverage(&doc, &policy)
    );
    println!("{policy}");

    let system = System::builder(xmark_schema(), policy, doc).build()?;
    println!(
        "prepared artifacts: XML {} KiB, SQL {} KiB",
        system.prepared().xml_bytes() / 1024,
        system.prepared().sql_bytes() / 1024
    );

    let queries = query_workload(&xmark_schema(), 55, 99);

    let mut backends: Vec<Box<dyn Backend>> = vec![
        Box::new(RelationalBackend::row()),
        Box::new(RelationalBackend::column()),
        Box::new(NativeXmlBackend::new()),
    ];

    println!(
        "\n{:<20} {:>12} {:>14} {:>16} {:>10}",
        "backend", "load", "annotate", "avg response", "granted"
    );
    for backend in backends.iter_mut() {
        let b = backend.as_mut();
        let (_, load) = time(|| system.load(b));
        let (writes, annotate) = time(|| system.annotate(b).expect("annotate"));

        let mut granted = 0usize;
        let (_, respond_all) = time(|| {
            for q in &queries {
                if system.request_path(b, q).expect("request").granted() {
                    granted += 1;
                }
            }
        });
        println!(
            "{:<20} {:>10.2?} {:>12.2?} {:>14.2?} {:>7}/{}",
            b.name(),
            load,
            annotate,
            respond_all / queries.len() as u32,
            granted,
            queries.len(),
        );
        let _ = writes;
    }

    println!("\n(the native store loads and answers fastest; the relational stores\n pay shredding at load and table sweeps per request — Figures 9 & 10)");
    Ok(())
}
