//! Quickstart: the paper's motivating example end-to-end.
//!
//! Builds the hospital system (Figure 1 schema, Figure 2 document,
//! Table 1 policy), shows the optimizer reducing the policy to Table 3,
//! annotates all three backends, and answers a few user requests under
//! all-or-nothing semantics.
//!
//! Run with: `cargo run --example quickstart`

use xac_core::{Backend, NativeXmlBackend, RelationalBackend, System};
use xac_policy::policy::hospital_policy;
use xac_xmlgen::{figure2_document, hospital_schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policy = hospital_policy();
    println!("== Policy (paper Table 1) ==\n{policy}");

    let system = System::builder(hospital_schema(), policy, figure2_document()).build()?;
    println!("== After redundancy elimination (paper Table 3) ==\n{}", system.policy());

    println!("== Annotation query ==");
    println!("{}\n", xac_core::annotator::annotation_query(system.policy()).describe());

    let mut backends: Vec<Box<dyn Backend>> = vec![
        Box::new(RelationalBackend::row()),
        Box::new(RelationalBackend::column()),
        Box::new(NativeXmlBackend::new()),
    ];

    let reference = system.reference_accessible().len();
    println!("reference accessible nodes (Table 2 semantics): {reference}\n");

    for backend in backends.iter_mut() {
        let b = backend.as_mut();
        system.load(b)?;
        let writes = system.annotate(b)?;
        println!(
            "[{}] annotated: {writes} sign writes, {} accessible nodes",
            b.name(),
            b.accessible_count()?
        );
        for query in ["//patient/name", "//patient", "//regular", "//med"] {
            let decision = system.request(b, query)?;
            println!(
                "[{}]   {query:<16} -> {} ({} nodes)",
                b.name(),
                if decision.granted() { "GRANTED" } else { "DENIED" },
                decision.node_count()
            );
        }
    }

    // The paper's §5.3 example: delete the treatments, re-annotate only
    // the triggered scopes, and watch //patient flip to GRANTED.
    println!("\n== Update: delete //patient/treatment ==");
    let update = xac_xpath::parse("//patient/treatment")?;
    let plan = system.plan_update(&update);
    println!("triggered rules: {:?}", plan.triggered_ids());
    for backend in backends.iter_mut() {
        let b = backend.as_mut();
        let outcome = system.apply_update(b, &update)?;
        let decision = system.request(b, "//patient")?;
        println!(
            "[{}] removed {} elements, {} sign writes, //patient -> {}",
            b.name(),
            outcome.removed_elements,
            outcome.sign_writes,
            if decision.granted() { "GRANTED" } else { "DENIED" },
        );
    }
    Ok(())
}
