//! Hospital audit: a larger generated hospital under the paper's policy.
//!
//! Generates a multi-department hospital document, annotates it, audits
//! per-rule scopes and the resulting accessibility breakdown, and shows
//! how a targeted update (a patient finishing treatment) ripples through
//! re-annotation.
//!
//! Run with: `cargo run --example hospital_audit`

use xac_core::{Backend, NativeXmlBackend, System};
use xac_policy::policy::hospital_policy;
use xac_xmlgen::{hospital_document, hospital_schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let doc = hospital_document(4, 250, 2026);
    println!(
        "generated hospital: {} departments, {} elements, {} patients",
        4,
        doc.element_count(),
        xac_xpath::eval(&doc, &xac_xpath::parse("//patient")?).len()
    );

    let system = System::builder(hospital_schema(), hospital_policy(), doc).build()?;

    // Per-rule scope audit on the reference tree.
    println!("\n== Rule scopes ==");
    let report = xac_policy::analyze(&system.prepared().doc, system.policy());
    for (rule, stats) in system.policy().rules.iter().zip(&report.rules) {
        println!(
            "  {:<4} {:<5} {:<35} {:>6} nodes ({} exclusive)",
            stats.id,
            stats.effect.to_string(),
            rule.resource.to_string(),
            stats.scope,
            stats.exclusive
        );
    }
    println!(
        "  ({} conflicted, {} defaulted, coverage {:.1}%)",
        report.conflicted,
        report.defaulted,
        100.0 * report.coverage()
    );

    let mut backend = NativeXmlBackend::new();
    system.load(&mut backend)?;
    let writes = system.annotate(&mut backend)?;
    let accessible = backend.accessible_count()?;
    let total = system.prepared().doc.element_count();
    println!(
        "\nannotated: {writes} writes, {accessible}/{total} nodes accessible ({:.1}%)",
        100.0 * accessible as f64 / total as f64
    );

    // Access review: what can the requester see?
    println!("\n== Requests ==");
    for query in [
        "//patient/name",
        "//patient",
        "//patient[treatment]",
        "//regular",
        "//experimental",
        "//staff",
        "//nurse/phone",
    ] {
        let d = system.request(&mut backend, query)?;
        println!(
            "  {query:<24} {} ({} nodes)",
            if d.granted() { "GRANTED" } else { "DENIED " },
            d.node_count()
        );
    }

    // A ward clears all experimental treatments: affected rules and the
    // partial re-annotation cost.
    println!("\n== Update: delete //treatment[experimental] ==");
    let update = xac_xpath::parse("//treatment[experimental]")?;
    let plan = system.plan_update(&update);
    println!("  triggered rules: {:?}", plan.triggered_ids());
    let outcome = system.apply_update(&mut backend, &update)?;
    println!(
        "  removed {} elements; partial re-annotation wrote {} signs",
        outcome.removed_elements, outcome.sign_writes
    );
    let accessible_after = backend.accessible_count()?;
    println!(
        "  accessible nodes: {accessible} -> {accessible_after} \
         (ex-experimental patients regained access)"
    );

    // Cross-check against a full re-annotation from scratch.
    let full = system.full_reannotate(&mut backend)?;
    let accessible_full = backend.accessible_count()?;
    println!(
        "  full re-annotation wrote {full} signs; accessible stays {accessible_full}"
    );
    assert_eq!(accessible_after, accessible_full, "partial must match full");
    Ok(())
}
