#!/usr/bin/env sh
# Offline CI gate: the whole workspace must build, test and run the
# figures smoke entirely without network access (no external crates —
# see DESIGN.md §6). Run from the repository root.
set -eu

export CARGO_NET_OFFLINE=true

echo "== tier 1: release build =="
cargo build --release

echo "== tier 1: tests =="
cargo test -q

echo "== lint: clippy, warnings are errors =="
cargo clippy --workspace -- -D warnings

echo "== bench targets compile (in-repo harness) =="
cargo bench --no-run -q

echo "== figures smoke: table3 =="
cargo run --release -q -p xac-bench --bin figures -- table3

echo "== vm: compiled mode is lint-clean and observationally identical =="
cargo clippy -p xac-vmc -- -D warnings
cargo test --release -q -p xac-serve --test vm_equivalence

echo "== figures smoke: annotate-modes artifact =="
cargo run --release -q -p xac-bench --bin figures -- annotate-modes
test -s BENCH_annotation_modes.json

echo "== vm: compiled row family present and state-identical to batched =="
# The figures run itself asserts equal writes/accessible across modes;
# here we double-check the emitted artifact carries the compiled rows
# and that each compiled row repeats its sibling batched row's writes
# and accessible counts verbatim.
grep -q '"mode": "compiled"' BENCH_annotation_modes.json
for backend in column row; do
    batched=$(grep "\"backend\": \"$backend\", \"mode\": \"batched\"" \
        BENCH_annotation_modes.json |
        sed 's/.*\("writes": [0-9]*, "accessible": [0-9]*\).*/\1/')
    compiled=$(grep "\"backend\": \"$backend\", \"mode\": \"compiled\"" \
        BENCH_annotation_modes.json |
        sed 's/.*\("writes": [0-9]*, "accessible": [0-9]*\).*/\1/')
    test -n "$batched"
    if [ "$batched" != "$compiled" ]; then
        echo "ci.sh: compiled rows diverge from batched on $backend"
        exit 1
    fi
done

echo "== figures smoke: serve artifact (incl. decide-path micro-sweep) =="
cargo run --release -q -p xac-bench --bin figures -- serve
test -s BENCH_serve.json
grep -q '"mode": "compiled"' BENCH_serve.json
grep -q '"decide_compiled_us": [0-9]' BENCH_serve.json

echo "== fault sweep: every injection point x every backend =="
cargo test --release -q -p xac-serve --test fault_recovery

echo "== storage: xac-store lint-clean under -D warnings =="
cargo clippy -p xac-store -- -D warnings

echo "== storage: kill-and-reopen crash sweep (wal + pager) =="
cargo test --release -q -p xac-serve --test durability_recovery

echo "== storage: durable serve-bench exit-code contract =="
# Fresh durable boot (exit 0), reopen recovering from the WAL (exit 0,
# recovery banner printed), and a backend-tag mismatch against the same
# data dir (exit 8 — the storage-error code).
rm -rf target/ci_data_dir
cargo run --release -q -p xac-net --bin xmlac -- serve-bench \
    --schema data/hospital.dtd --policy data/hospital.pol --doc data/figure2.xml \
    --query "//patient/name" --readers 2 --reads 50 --delete "//regular" \
    --data-dir target/ci_data_dir > target/ci_durable_boot.txt
grep -q "fresh durable boot" target/ci_durable_boot.txt
test -s target/ci_data_dir/xmlac.wal
test -s target/ci_data_dir/signs.pages
cargo run --release -q -p xac-net --bin xmlac -- serve-bench \
    --schema data/hospital.dtd --policy data/hospital.pol --doc data/figure2.xml \
    --query "//patient/name" --readers 2 --reads 50 \
    --data-dir target/ci_data_dir > target/ci_durable_reopen.txt
grep -q "recovered native/xml" target/ci_durable_reopen.txt
mismatch=0
cargo run --release -q -p xac-net --bin xmlac -- serve-bench \
    --schema data/hospital.dtd --policy data/hospital.pol --doc data/figure2.xml \
    --query "//patient/name" --backend row \
    --data-dir target/ci_data_dir > /dev/null 2>&1 || mismatch=$?
if [ "$mismatch" -ne 8 ]; then
    echo "ci.sh: backend-tag mismatch exited $mismatch, expected 8"
    exit 1
fi

echo "== figures smoke: fault-recovery artifact =="
cargo run --release -q -p xac-bench --bin figures -- fault-recovery
test -s BENCH_fault_recovery.json
# The durable checkpoint row family must be present: the WAL commit
# replaces the clone checkpoint whose cost grew with document size.
grep -q '"metric": "checkpoint_wal"' BENCH_fault_recovery.json

echo "== obs: traced serve-bench smoke =="
cargo run --release -q -p xac-net --bin xmlac -- serve-bench \
    --schema data/hospital.dtd --policy data/hospital.pol --doc data/figure2.xml \
    --query "//patient/name" --readers 2 --reads 50 --delete "//regular" \
    --trace-out target/obs_trace.json --metrics-out target/obs_metrics.prom \
    > /dev/null
test -s target/obs_trace.json
test -s target/obs_metrics.prom

echo "== obs: exporter output validates (Prometheus exposition + trace JSON) =="
cargo run --release -q -p xac-net --bin xmlac -- obs check \
    --metrics target/obs_metrics.prom --trace target/obs_trace.json

echo "== obs: figures artifact (includes <2% tracing-off overhead assert) =="
cargo run --release -q -p xac-bench --bin figures -- obs
test -s BENCH_obs.json
# The wire-propagation rows (trace context on vs off over loopback, with
# the in-run <3% overhead assert) and the per-phase wire breakdown must
# be present.
grep -q '"kind": "wire_propagation", "mode": "off"' BENCH_obs.json
grep -q '"kind": "wire_propagation", "mode": "on"' BENCH_obs.json
grep -q '"kind": "wire_propagation_overhead"' BENCH_obs.json
grep -q '"kind": "wire_phase", "span": "net.client_send"' BENCH_obs.json

echo "== analyze: every checked-in policy passes the verifier gate =="
# Intentionally dirty fixtures are allowlisted with the exit code and
# diagnostic codes they are expected to produce; everything else must be
# clean under --deny warn.
for pol in data/*.pol examples/policies/*.pol; do
    case "$pol" in
    examples/policies/flawed_all5.pol)
        # Must fail with errors (exit 5) and report all five codes.
        out=$(cargo run --release -q -p xac-net --bin xmlac -- analyze \
            --policy "$pol" --schema data/hospital.dtd --format json \
            --deny warn) && {
            echo "ci.sh: $pol unexpectedly passed the analyzer"
            exit 1
        }
        status=$?
        if [ "$status" -ne 5 ]; then
            echo "ci.sh: $pol exited $status, expected 5"
            exit 1
        fi
        for code in XA001 XA002 XA003 XA004 XA005; do
            case "$out" in
            *"$code"*) ;;
            *)
                echo "ci.sh: $pol report is missing $code"
                exit 1
                ;;
            esac
        done
        ;;
    examples/policies/repairable.pol)
        # One finding per repair kind; the dead rule makes it exit 5.
        status=0
        out=$(cargo run --release -q -p xac-net --bin xmlac -- analyze \
            --policy "$pol" --schema data/hospital.dtd --format json \
            --deny warn) || status=$?
        if [ "$status" -ne 5 ]; then
            echo "ci.sh: $pol exited $status, expected 5"
            exit 1
        fi
        for code in XA001 XA002 XA003 XA004; do
            case "$out" in
            *"$code"*) ;;
            *)
                echo "ci.sh: $pol report is missing $code"
                exit 1
                ;;
            esac
        done
        ;;
    *)
        cargo run --release -q -p xac-net --bin xmlac -- analyze \
            --policy "$pol" --schema data/hospital.dtd --deny warn > /dev/null
        ;;
    esac
done

echo "== analyze: verified repair synthesis (--fix end-to-end) =="
# Repair the flawed fixture in place (on a copy): the synthesizer must
# clear the dead and shadowed rules, each edit verified by incremental
# re-analysis and differential annotation on all three backends, and the
# repaired file must then re-analyze clean under --deny warn.
cargo clippy -p xac-analyze -- -D warnings
cp examples/policies/flawed_all5.pol target/ci_repair.pol
cargo run --release -q -p xac-net --bin xmlac -- analyze \
    --policy target/ci_repair.pol --schema data/hospital.dtd \
    --doc data/figure2.xml --deny warn --fix > /dev/null
cargo run --release -q -p xac-net --bin xmlac -- analyze \
    --policy target/ci_repair.pol --schema data/hospital.dtd \
    --deny warn > /dev/null
# A --dry-run over the repairable fixture must reproduce the checked-in
# golden diff (headers carry the path, so compare from the first hunk).
dry=0
cargo run --release -q -p xac-net --bin xmlac -- analyze \
    --policy examples/policies/repairable.pol --schema data/hospital.dtd \
    --doc data/figure2.xml --deny warn --fix-level info --dry-run \
    --out target/ci_repairable_report.txt \
    > target/ci_repairable.diff 2> /dev/null || dry=$?
if [ "$dry" -ne 5 ]; then
    echo "ci.sh: repairable dry-run exited $dry, expected 5 (file untouched)"
    exit 1
fi
tail -n +3 target/ci_repairable.diff > target/ci_repairable.hunks
tail -n +3 tests/golden/repairable_fix.diff > target/ci_repairable_golden.hunks
if ! cmp -s target/ci_repairable.hunks target/ci_repairable_golden.hunks; then
    echo "ci.sh: repairable dry-run diff diverges from tests/golden/repairable_fix.diff"
    exit 1
fi

echo "== analyze: dynamic trigger-soundness audit on the paper instance =="
cargo run --release -q -p xac-net --bin xmlac -- analyze \
    --policy data/hospital.pol --schema data/hospital.dtd \
    --doc data/figure2.xml --format json --deny warn \
    --out target/analyze_hospital.json
grep -q '"missed": 0' target/analyze_hospital.json
grep -q '"sound": true' target/analyze_hospital.json

echo "== analyze: figures artifact =="
# The binary itself asserts the >= 5x incremental speedup at the largest
# ladder size and that the repaired fixture re-analyzes to exit 0; here
# we check the artifact carries the row families.
cargo run --release -q -p xac-bench --bin figures -- analyze
test -s BENCH_analyze.json
grep -q '"sound": true' BENCH_analyze.json
grep -q '"kind": "incremental"' BENCH_analyze.json
grep -q '"kind": "repair"' BENCH_analyze.json
grep -q '"kind": "repair_summary", "repairs": 2, "exit_code": 0' BENCH_analyze.json

echo "== net: lint-clean under -D warnings =="
cargo clippy -p xac-net -- -D warnings

echo "== net: loopback smoke (server + client, exit-code contract) =="
# A real server process on a free port, exercised by real client
# processes: a read (exit 0), a guarded write (exit 0), and a
# role-denied write attempt (exit 7).
rm -f target/net_addr.txt
cargo run --release -q -p xac-net --bin xmlac -- serve \
    --schema data/hospital.dtd --policy data/hospital.pol --doc data/figure2.xml \
    --addr-file target/net_addr.txt --linger-ms 30000 > /dev/null &
server_pid=$!
tries=0
while [ ! -s target/net_addr.txt ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "ci.sh: server never wrote its address file"
        exit 1
    fi
    sleep 0.1
done
addr=$(cat target/net_addr.txt)
cargo run --release -q -p xac-net --bin xmlac -- client \
    --addr "$addr" --query "//patient/name" status > /dev/null
cargo run --release -q -p xac-net --bin xmlac -- client \
    --addr "$addr" --role writer --delete "//regular" > /dev/null
denied=0
cargo run --release -q -p xac-net --bin xmlac -- client \
    --addr "$addr" --role reader --delete "//med" > /dev/null 2>&1 || denied=$?
if [ "$denied" -ne 7 ]; then
    echo "ci.sh: denied-role client exited $denied, expected 7"
    exit 1
fi

echo "== net: admin telemetry plane (scrape + tail + top over the wire) =="
# An admin scrape must carry the per-verb wire histograms with trace-id
# exemplars, validate as Prometheus exposition, and be refused for a
# reader with the role exit code.
cargo run --release -q -p xac-net --bin xmlac -- client \
    --addr "$addr" --role admin scrape --scrape-out target/net_scrape.prom \
    > /dev/null
test -s target/net_scrape.prom
grep -q 'xac_net_request_us_bucket{verb=' target/net_scrape.prom
grep -q '# {trace_id="' target/net_scrape.prom
cargo run --release -q -p xac-net --bin xmlac -- obs check \
    --metrics target/net_scrape.prom > /dev/null
scrape_denied=0
cargo run --release -q -p xac-net --bin xmlac -- client \
    --addr "$addr" --role reader scrape > /dev/null 2>&1 || scrape_denied=$?
if [ "$scrape_denied" -ne 7 ]; then
    echo "ci.sh: denied-role scrape exited $scrape_denied, expected 7"
    exit 1
fi
# The admin wire plane also serves the policy linter: an admin analyze
# of the live (clean) hospital policy reports zero repairs, and a reader
# is refused with the role exit code.
cargo run --release -q -p xac-net --bin xmlac -- client \
    --addr "$addr" --role admin --fix analyze | grep -q 'verified repair'
analyze_denied=0
cargo run --release -q -p xac-net --bin xmlac -- client \
    --addr "$addr" --role reader analyze > /dev/null 2>&1 || analyze_denied=$?
if [ "$analyze_denied" -ne 7 ]; then
    echo "ci.sh: denied-role analyze exited $analyze_denied, expected 7"
    exit 1
fi
# One `top` sample renders the reconstructed quantile table, and the
# flight tail shows the served requests with their phase breakdown.
cargo run --release -q -p xac-net --bin xmlac -- top \
    --addr "$addr" --iterations 1 | grep -q 'p999_us'
cargo run --release -q -p xac-net --bin xmlac -- client \
    --addr "$addr" --role admin tail --last 8 | grep -q 'flight records'
wait "$server_pid"

echo "== net: wire bench artifact =="
cargo run --release -q -p xac-net --bin xmlac -- serve-bench \
    --schema data/hospital.dtd --policy data/hospital.pol --doc data/figure2.xml \
    --query "//patient/name" --query "//med" --net 3 --reads 50 \
    --delete "//regular" --out BENCH_net.json > /dev/null
test -s BENCH_net.json
grep -q '"bench": "net"' BENCH_net.json
grep -q '"wire_errors": 0' BENCH_net.json

echo "ci.sh: all green"
