#!/usr/bin/env sh
# Offline CI gate: the whole workspace must build, test and run the
# figures smoke entirely without network access (no external crates —
# see DESIGN.md §6). Run from the repository root.
set -eu

export CARGO_NET_OFFLINE=true

echo "== tier 1: release build =="
cargo build --release

echo "== tier 1: tests =="
cargo test -q

echo "== lint: clippy, warnings are errors =="
cargo clippy --workspace -- -D warnings

echo "== bench targets compile (in-repo harness) =="
cargo bench --no-run -q

echo "== figures smoke: table3 =="
cargo run --release -q -p xac-bench --bin figures -- table3

echo "== vm: compiled mode is lint-clean and observationally identical =="
cargo clippy -p xac-vmc -- -D warnings
cargo test --release -q -p xac-serve --test vm_equivalence

echo "== figures smoke: annotate-modes artifact =="
cargo run --release -q -p xac-bench --bin figures -- annotate-modes
test -s BENCH_annotation_modes.json

echo "== vm: compiled row family present and state-identical to batched =="
# The figures run itself asserts equal writes/accessible across modes;
# here we double-check the emitted artifact carries the compiled rows
# and that each compiled row repeats its sibling batched row's writes
# and accessible counts verbatim.
grep -q '"mode": "compiled"' BENCH_annotation_modes.json
for backend in column row; do
    batched=$(grep "\"backend\": \"$backend\", \"mode\": \"batched\"" \
        BENCH_annotation_modes.json |
        sed 's/.*\("writes": [0-9]*, "accessible": [0-9]*\).*/\1/')
    compiled=$(grep "\"backend\": \"$backend\", \"mode\": \"compiled\"" \
        BENCH_annotation_modes.json |
        sed 's/.*\("writes": [0-9]*, "accessible": [0-9]*\).*/\1/')
    test -n "$batched"
    if [ "$batched" != "$compiled" ]; then
        echo "ci.sh: compiled rows diverge from batched on $backend"
        exit 1
    fi
done

echo "== figures smoke: serve artifact (incl. decide-path micro-sweep) =="
cargo run --release -q -p xac-bench --bin figures -- serve
test -s BENCH_serve.json
grep -q '"mode": "compiled"' BENCH_serve.json
grep -q '"decide_compiled_us": [0-9]' BENCH_serve.json

echo "== fault sweep: every injection point x every backend =="
cargo test --release -q -p xac-serve --test fault_recovery

echo "== figures smoke: fault-recovery artifact =="
cargo run --release -q -p xac-bench --bin figures -- fault-recovery
test -s BENCH_fault_recovery.json

echo "== obs: traced serve-bench smoke =="
cargo run --release -q -p xac-serve --bin xmlac -- serve-bench \
    --schema data/hospital.dtd --policy data/hospital.pol --doc data/figure2.xml \
    --query "//patient/name" --readers 2 --reads 50 --delete "//regular" \
    --trace-out target/obs_trace.json --metrics-out target/obs_metrics.prom \
    > /dev/null
test -s target/obs_trace.json
test -s target/obs_metrics.prom

echo "== obs: exporter output validates (Prometheus exposition + trace JSON) =="
cargo run --release -q -p xac-serve --bin xmlac -- obs check \
    --metrics target/obs_metrics.prom --trace target/obs_trace.json

echo "== obs: figures artifact (includes <2% tracing-off overhead assert) =="
cargo run --release -q -p xac-bench --bin figures -- obs
test -s BENCH_obs.json

echo "== analyze: every checked-in policy passes the verifier gate =="
# Intentionally dirty fixtures are allowlisted with the exit code and
# diagnostic codes they are expected to produce; everything else must be
# clean under --deny warn.
for pol in data/*.pol examples/policies/*.pol; do
    case "$pol" in
    examples/policies/flawed_all5.pol)
        # Must fail with errors (exit 5) and report all five codes.
        out=$(cargo run --release -q -p xac-serve --bin xmlac -- analyze \
            --policy "$pol" --schema data/hospital.dtd --format json \
            --deny warn) && {
            echo "ci.sh: $pol unexpectedly passed the analyzer"
            exit 1
        }
        status=$?
        if [ "$status" -ne 5 ]; then
            echo "ci.sh: $pol exited $status, expected 5"
            exit 1
        fi
        for code in XA001 XA002 XA003 XA004 XA005; do
            case "$out" in
            *"$code"*) ;;
            *)
                echo "ci.sh: $pol report is missing $code"
                exit 1
                ;;
            esac
        done
        ;;
    *)
        cargo run --release -q -p xac-serve --bin xmlac -- analyze \
            --policy "$pol" --schema data/hospital.dtd --deny warn > /dev/null
        ;;
    esac
done

echo "== analyze: dynamic trigger-soundness audit on the paper instance =="
cargo run --release -q -p xac-serve --bin xmlac -- analyze \
    --policy data/hospital.pol --schema data/hospital.dtd \
    --doc data/figure2.xml --format json --deny warn \
    --out target/analyze_hospital.json
grep -q '"missed": 0' target/analyze_hospital.json
grep -q '"sound": true' target/analyze_hospital.json

echo "== analyze: figures artifact =="
cargo run --release -q -p xac-bench --bin figures -- analyze
test -s BENCH_analyze.json
grep -q '"sound": true' BENCH_analyze.json

echo "ci.sh: all green"
