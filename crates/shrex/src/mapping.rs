//! Schema mapping: one relational table per element type.

use crate::{Error, Result};
use xac_xml::Schema;

/// Name of the text-value column on leaf-type tables.
pub const VALUE_COLUMN: &str = "v";

/// Name of the accessibility sign column present on every table.
pub const SIGN_COLUMN: &str = "s";

/// The derived relational mapping for an XML schema.
#[derive(Debug, Clone)]
pub struct Mapping {
    schema: Schema,
    tables: Vec<MappedTable>,
}

/// One mapped element type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappedTable {
    /// Table (and element type) name.
    pub name: String,
    /// Whether the table carries a `v` value column (leaf text types).
    pub has_value: bool,
}

impl Mapping {
    /// Derive the mapping. The schema must be non-recursive (the paper
    /// removed recursion from xmlgen's schema for exactly this reason) and
    /// every mapped type must be reachable from the root.
    pub fn derive(schema: &Schema) -> Result<Mapping> {
        if schema.is_recursive() {
            return Err(Error::Mapping(
                "recursive schemas cannot be shredded with this mapping".into(),
            ));
        }
        let reachable = schema.reachable_types();
        let tables = reachable
            .iter()
            .map(|&name| MappedTable {
                name: name.to_string(),
                has_value: schema.is_text_type(name),
            })
            .collect();
        Ok(Mapping { schema: schema.clone(), tables })
    }

    /// The source XML schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The mapped tables, sorted by name.
    pub fn tables(&self) -> &[MappedTable] {
        &self.tables
    }

    /// Look up one mapped table.
    pub fn table(&self, name: &str) -> Option<&MappedTable> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// The column list of one table, in order.
    pub fn columns(&self, name: &str) -> Option<Vec<&'static str>> {
        self.table(name).map(|t| {
            if t.has_value {
                vec!["id", "pid", VALUE_COLUMN, SIGN_COLUMN]
            } else {
                vec!["id", "pid", SIGN_COLUMN]
            }
        })
    }

    /// The `CREATE TABLE` DDL for the whole mapping (one statement per
    /// element type, `;`-separated).
    pub fn ddl(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            if t.has_value {
                out.push_str(&format!(
                    "CREATE TABLE {} (id INT PRIMARY KEY, pid INT INDEX, v TEXT, s TEXT);\n",
                    t.name
                ));
            } else {
                out.push_str(&format!(
                    "CREATE TABLE {} (id INT PRIMARY KEY, pid INT INDEX, s TEXT);\n",
                    t.name
                ));
            }
        }
        out
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use xac_xml::{Occurs::*, Particle, Schema};

    pub(crate) fn hospital_schema() -> Schema {
        Schema::builder("hospital")
            .sequence("hospital", vec![Particle::new("dept", Plus)])
            .sequence(
                "dept",
                vec![Particle::new("patients", One), Particle::new("staffinfo", One)],
            )
            .sequence("patients", vec![Particle::new("patient", Star)])
            .sequence("staffinfo", vec![Particle::new("staff", Star)])
            .sequence(
                "patient",
                vec![
                    Particle::new("psn", One),
                    Particle::new("name", One),
                    Particle::new("treatment", Optional),
                ],
            )
            .choice(
                "treatment",
                vec![
                    Particle::new("regular", Optional),
                    Particle::new("experimental", Optional),
                ],
            )
            .sequence("regular", vec![Particle::new("med", One), Particle::new("bill", One)])
            .sequence(
                "experimental",
                vec![Particle::new("test", One), Particle::new("bill", One)],
            )
            .choice("staff", vec![Particle::new("nurse", One), Particle::new("doctor", One)])
            .sequence(
                "nurse",
                vec![
                    Particle::new("sid", One),
                    Particle::new("name", One),
                    Particle::new("phone", One),
                ],
            )
            .sequence(
                "doctor",
                vec![
                    Particle::new("sid", One),
                    Particle::new("name", One),
                    Particle::new("phone", One),
                ],
            )
            .text(&["psn", "name", "med", "bill", "test", "sid", "phone"])
            .build()
            .unwrap()
    }

    #[test]
    fn derives_one_table_per_type() {
        let m = Mapping::derive(&hospital_schema()).unwrap();
        assert_eq!(m.tables().len(), 18);
        assert!(m.table("patient").is_some());
        assert!(!m.table("patient").unwrap().has_value);
        assert!(m.table("med").unwrap().has_value);
        assert_eq!(m.columns("med").unwrap(), vec!["id", "pid", "v", "s"]);
        assert_eq!(m.columns("patient").unwrap(), vec!["id", "pid", "s"]);
    }

    #[test]
    fn ddl_mentions_every_table() {
        let m = Mapping::derive(&hospital_schema()).unwrap();
        let ddl = m.ddl();
        assert_eq!(ddl.matches("CREATE TABLE").count(), 18);
        assert!(ddl.contains("CREATE TABLE med (id INT PRIMARY KEY, pid INT INDEX, v TEXT, s TEXT);"));
        assert!(ddl.contains("CREATE TABLE patient (id INT PRIMARY KEY, pid INT INDEX, s TEXT);"));
    }

    #[test]
    fn rejects_recursive_schema() {
        let s = Schema::builder("a")
            .sequence("a", vec![Particle::new("a", Star)])
            .build()
            .unwrap();
        assert!(Mapping::derive(&s).is_err());
    }

    #[test]
    fn unreachable_types_not_mapped() {
        let s = Schema::builder("a")
            .sequence("a", vec![Particle::new("b", Star)])
            .text(&["b", "orphan"])
            .build()
            .unwrap();
        let m = Mapping::derive(&s).unwrap();
        assert!(m.table("orphan").is_none());
        assert_eq!(m.tables().len(), 2);
    }
}
