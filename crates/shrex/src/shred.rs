//! Document shredding: XML tree → tuples / SQL INSERT text.
//!
//! Every element becomes one tuple in its element type's table. Universal
//! identifiers are assigned in document pre-order (so a node's id is
//! always greater than its parent's), the `pid` column holds the parent's
//! id (`NULL` for the root), leaf types carry their text value in `v`, and
//! `s` starts at the policy's default sign.

use crate::mapping::Mapping;
use crate::{Error, Result};
use xac_xml::{Document, NodeId};

/// One shredded tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShreddedRow {
    /// Target table (= element type name).
    pub table: String,
    /// Universal identifier.
    pub id: i64,
    /// Parent universal identifier (`None` for the root).
    pub pid: Option<i64>,
    /// Text value for leaf types.
    pub value: Option<String>,
    /// Initial sign (`'+'` or `'-'`).
    pub sign: char,
}

/// The output of shredding one document.
#[derive(Debug, Clone)]
pub struct ShreddedDocument {
    /// Tuples in document pre-order.
    pub rows: Vec<ShreddedRow>,
    /// Universal id per arena slot (`None` for text nodes / detached
    /// slots), indexed by [`NodeId::index`].
    node_to_id: Vec<Option<i64>>,
    /// Next unassigned universal id (for post-shredding insertions).
    next_id: i64,
}

impl ShreddedDocument {
    /// The universal id assigned to an element node.
    pub fn id_of(&self, node: NodeId) -> Option<i64> {
        self.node_to_id.get(node.index()).copied().flatten()
    }

    /// Number of shredded tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no tuples were produced (never for a valid document).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Assign a fresh universal id to an element inserted after
    /// shredding, keeping the node↔id correspondence current. The caller
    /// is responsible for inserting the matching relational tuple.
    pub fn register_insert(&mut self, node: NodeId) -> i64 {
        let id = self.next_id;
        self.next_id += 1;
        if self.node_to_id.len() <= node.index() {
            self.node_to_id.resize(node.index() + 1, None);
        }
        self.node_to_id[node.index()] = Some(id);
        id
    }
}

/// Shred a document under a mapping. `default_sign` seeds the `s` column
/// (the policy's default semantics).
pub fn shred_document(
    doc: &Document,
    mapping: &Mapping,
    default_sign: char,
) -> Result<ShreddedDocument> {
    let mut rows = Vec::with_capacity(doc.element_count());
    let mut node_to_id: Vec<Option<i64>> = vec![None; doc.arena_len()];
    let mut next_id: i64 = 1;

    for node in doc.subtree(doc.root()) {
        let Some(name) = doc.name(node) else {
            continue; // text nodes become their parent's value
        };
        let mapped = mapping.table(name).ok_or_else(|| {
            Error::Shred(format!("element `{name}` is not part of the mapped schema"))
        })?;
        let id = next_id;
        next_id += 1;
        node_to_id[node.index()] = Some(id);
        let pid = doc.parent(node).and_then(|p| node_to_id[p.index()]);
        let value = if mapped.has_value {
            Some(doc.text_of(node))
        } else {
            None
        };
        rows.push(ShreddedRow { table: name.to_string(), id, pid, value, sign: default_sign });
    }
    Ok(ShreddedDocument { rows, node_to_id, next_id })
}

/// Render a shredded document as SQL `INSERT` statements — the text files
/// whose execution the paper measures as relational loading time.
pub fn shred_to_sql(doc: &Document, mapping: &Mapping, default_sign: char) -> Result<String> {
    let shredded = shred_document(doc, mapping, default_sign)?;
    let mut out = String::with_capacity(shredded.rows.len() * 64);
    for row in &shredded.rows {
        out.push_str(&insert_statement(row));
        out.push('\n');
    }
    Ok(out)
}

/// The `INSERT` statement for one tuple.
pub fn insert_statement(row: &ShreddedRow) -> String {
    let pid = row.pid.map(|p| p.to_string()).unwrap_or_else(|| "NULL".to_string());
    match &row.value {
        Some(v) => format!(
            "INSERT INTO {} (id, pid, v, s) VALUES ({}, {}, '{}', '{}');",
            row.table,
            row.id,
            pid,
            v.replace('\'', "''"),
            row.sign
        ),
        None => format!(
            "INSERT INTO {} (id, pid, s) VALUES ({}, {}, '{}');",
            row.table, row.id, pid, row.sign
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::tests::hospital_schema;
    use xac_xml::Document;

    fn figure2() -> Document {
        Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>033</psn><name>john doe</name>\
             <treatment><regular><med>enoxaparin</med><bill>700</bill></regular></treatment>\
             </patient>\
             <patient><psn>099</psn><name>joy smith</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap()
    }

    #[test]
    fn shreds_every_element_once() {
        let m = Mapping::derive(&hospital_schema()).unwrap();
        let doc = figure2();
        let s = shred_document(&doc, &m, '-').unwrap();
        assert_eq!(s.len(), doc.element_count());
        // Pre-order ids: the root gets 1, a child's id exceeds its parent's.
        assert_eq!(s.rows[0].table, "hospital");
        assert_eq!(s.rows[0].id, 1);
        assert_eq!(s.rows[0].pid, None);
        for row in &s.rows[1..] {
            assert!(row.pid.is_some());
            assert!(row.pid.unwrap() < row.id, "pre-order parent id");
        }
    }

    #[test]
    fn leaf_values_captured() {
        let m = Mapping::derive(&hospital_schema()).unwrap();
        let s = shred_document(&figure2(), &m, '-').unwrap();
        let med = s.rows.iter().find(|r| r.table == "med").unwrap();
        assert_eq!(med.value.as_deref(), Some("enoxaparin"));
        let patient = s.rows.iter().find(|r| r.table == "patient").unwrap();
        assert_eq!(patient.value, None);
        let bill = s.rows.iter().find(|r| r.table == "bill").unwrap();
        assert_eq!(bill.value.as_deref(), Some("700"));
    }

    #[test]
    fn node_id_mapping_round_trips() {
        let m = Mapping::derive(&hospital_schema()).unwrap();
        let doc = figure2();
        let s = shred_document(&doc, &m, '-').unwrap();
        for node in doc.all_elements() {
            let id = s.id_of(node).expect("every element has a universal id");
            let row = s.rows.iter().find(|r| r.id == id).unwrap();
            assert_eq!(row.table, doc.name(node).unwrap());
        }
        // Text nodes have no ids.
        for node in doc.all_nodes().filter(|&n| doc.is_text(n)) {
            assert_eq!(s.id_of(node), None);
        }
    }

    #[test]
    fn sql_text_loads_into_reldb() {
        use xac_reldb::{Database, StorageKind};
        let m = Mapping::derive(&hospital_schema()).unwrap();
        let doc = figure2();
        let sql = shred_to_sql(&doc, &m, '-').unwrap();
        for kind in [StorageKind::Row, StorageKind::Column] {
            let mut db = Database::new(kind);
            db.execute_script(&m.ddl()).unwrap();
            db.execute_script(&sql).unwrap();
            assert_eq!(db.row_count("patient").unwrap(), 2);
            assert_eq!(db.row_count("med").unwrap(), 1);
            let rs = db.query("SELECT v FROM name").unwrap();
            assert_eq!(rs.len(), 2);
        }
    }

    #[test]
    fn quotes_escaped_in_sql() {
        let row = ShreddedRow {
            table: "name".into(),
            id: 5,
            pid: Some(4),
            value: Some("o'hare".into()),
            sign: '-',
        };
        assert_eq!(
            insert_statement(&row),
            "INSERT INTO name (id, pid, v, s) VALUES (5, 4, 'o''hare', '-');"
        );
    }

    #[test]
    fn unmapped_element_errors() {
        let m = Mapping::derive(&hospital_schema()).unwrap();
        let doc = Document::parse_str("<hospital><alien/></hospital>").unwrap();
        assert!(shred_document(&doc, &m, '-').is_err());
    }
}
