//! XPath → SQL translation over the shredded schema (paper §5.2).
//!
//! Each XPath expression in the fragment becomes a `UNION` of conjunctive
//! queries. A child step adds a `child.pid = parent.id` join; a
//! descendant step is expanded through the (non-recursive) schema into
//! every child-axis label path, one conjunctive query per path; an
//! existence predicate joins the predicate chain in; a value predicate
//! constrains the `v` column of the leaf table. The rule
//! `R1 = //patient` translates to the paper's
//!
//! ```sql
//! SELECT patient1.id FROM patient patient1
//! ```
//!
//! and `R7 = //regular[med = "celecoxib"]` to a two-table join with a
//! constant condition on `med.v`.

use crate::{Error, Result};
use xac_xml::Schema;
use xac_xpath::{Axis, CmpOp, Path, Qualifier, Step};

/// One conjunctive query under construction.
#[derive(Debug, Clone)]
struct Cq {
    /// `(table, alias)` pairs of the FROM list.
    tables: Vec<(String, String)>,
    /// Rendered WHERE conjuncts.
    conds: Vec<String>,
    /// Alias producing the output ids.
    out_alias: String,
    /// Element type of the output alias.
    out_type: String,
}

impl Cq {
    fn render(&self) -> String {
        let from: Vec<String> =
            self.tables.iter().map(|(t, a)| format!("{t} {a}")).collect();
        if self.conds.is_empty() {
            format!("SELECT {}.id FROM {}", self.out_alias, from.join(", "))
        } else {
            format!(
                "SELECT {}.id FROM {} WHERE {}",
                self.out_alias,
                from.join(", "),
                self.conds.join(" AND ")
            )
        }
    }
}

/// Translate an absolute XPath expression to a SQL query returning the
/// universal ids of the selected nodes.
pub fn translate(path: &Path, schema: &Schema) -> Result<String> {
    if !path.absolute {
        return Err(Error::Translate(format!(
            "only absolute paths translate to SQL, got `{path}`"
        )));
    }
    if schema.is_recursive() {
        return Err(Error::Translate("recursive schemas are not supported".into()));
    }
    let mut counter = 0usize;
    let mut states: Vec<Cq> = Vec::new();

    for (i, step) in path.steps.iter().enumerate() {
        states = if i == 0 {
            first_step(step, schema, &mut counter)
        } else {
            let mut next = Vec::new();
            for cq in states {
                next.extend(extend_step(&cq, step, schema, &mut counter));
            }
            next
        };
        // Apply the step's predicates to every surviving branch.
        for q in &step.predicates {
            let mut next = Vec::new();
            for cq in states {
                next.extend(apply_qualifier(&cq, q, schema, &mut counter)?);
            }
            states = next;
        }
        if states.is_empty() {
            break;
        }
    }

    if states.is_empty() {
        // The path cannot match any node of this schema.
        return Ok(format!("SELECT id FROM {} WHERE 1 = 0", schema.root()));
    }
    let parts: Vec<String> = states.iter().map(Cq::render).collect();
    if parts.len() == 1 {
        Ok(parts.into_iter().next().expect("one part"))
    } else {
        Ok(parts
            .into_iter()
            .map(|p| format!("({p})"))
            .collect::<Vec<_>>()
            .join(" UNION "))
    }
}

fn fresh_alias(table: &str, counter: &mut usize) -> String {
    *counter += 1;
    format!("{table}{counter}")
}

fn test_matches(step: &Step, name: &str) -> bool {
    step.test.matches(name)
}

/// The first step starts from the virtual root: `child` can only reach the
/// document root type, `descendant` reaches every reachable type.
fn first_step(step: &Step, schema: &Schema, counter: &mut usize) -> Vec<Cq> {
    let targets: Vec<String> = match step.axis {
        Axis::Child => {
            if test_matches(step, schema.root()) {
                vec![schema.root().to_string()]
            } else {
                Vec::new()
            }
        }
        Axis::Descendant => schema
            .reachable_types()
            .into_iter()
            .filter(|t| test_matches(step, t))
            .map(str::to_string)
            .collect(),
    };
    targets
        .into_iter()
        .map(|t| {
            let alias = fresh_alias(&t, counter);
            Cq {
                tables: vec![(t.clone(), alias.clone())],
                conds: Vec::new(),
                out_alias: alias,
                out_type: t,
            }
        })
        .collect()
}

/// Extend a conjunctive query by one step from its output node.
fn extend_step(cq: &Cq, step: &Step, schema: &Schema, counter: &mut usize) -> Vec<Cq> {
    let paths = step_label_paths(&cq.out_type, step, schema);
    paths
        .into_iter()
        .map(|labels| {
            let mut next = cq.clone();
            for label in labels {
                let alias = fresh_alias(&label, counter);
                next.conds
                    .push(format!("{alias}.pid = {}.id", next.out_alias));
                next.tables.push((label.clone(), alias.clone()));
                next.out_alias = alias;
                next.out_type = label;
            }
            next
        })
        .collect()
}

/// The child-axis label paths a step denotes from a context type: one
/// single-label path per matching child for `child`, every downward label
/// path ending at a matching type for `descendant`.
fn step_label_paths(from: &str, step: &Step, schema: &Schema) -> Vec<Vec<String>> {
    match step.axis {
        Axis::Child => schema
            .child_types(from)
            .into_iter()
            .filter(|c| test_matches(step, c))
            .map(|c| vec![c.to_string()])
            .collect(),
        Axis::Descendant => {
            let mut out = Vec::new();
            let mut prefix: Vec<String> = Vec::new();
            collect_descendant_paths(schema, from, step, &mut prefix, &mut out);
            out
        }
    }
}

fn collect_descendant_paths(
    schema: &Schema,
    at: &str,
    step: &Step,
    prefix: &mut Vec<String>,
    out: &mut Vec<Vec<String>>,
) {
    for child in schema.child_types(at) {
        prefix.push(child.to_string());
        if test_matches(step, child) {
            out.push(prefix.clone());
        }
        collect_descendant_paths(schema, child, step, prefix, out);
        prefix.pop();
    }
}

/// Apply a qualifier at the query's output node. Fans out when predicate
/// paths expand along several schema paths (each branch is a sufficient
/// witness, so branches are unioned).
fn apply_qualifier(
    cq: &Cq,
    q: &Qualifier,
    schema: &Schema,
    counter: &mut usize,
) -> Result<Vec<Cq>> {
    match q {
        Qualifier::Exists(rel) => {
            if rel.is_self() {
                return Ok(vec![cq.clone()]);
            }
            Ok(extend_relative(cq, rel, schema, counter)
                .into_iter()
                .map(|mut ext| {
                    // Existence only: restore the output node.
                    ext.out_alias = cq.out_alias.clone();
                    ext.out_type = cq.out_type.clone();
                    ext
                })
                .collect())
        }
        Qualifier::Cmp(rel, op, lit) => {
            let branches = if rel.is_self() {
                vec![cq.clone()]
            } else {
                extend_relative(cq, rel, schema, counter)
            };
            let mut out = Vec::new();
            for mut ext in branches {
                // The compared node must be a leaf type carrying a value.
                if !schema.is_text_type(&ext.out_type) {
                    continue;
                }
                ext.conds.push(format!(
                    "{}.v {} {}",
                    ext.out_alias,
                    sql_op(*op),
                    sql_literal(lit)
                ));
                ext.out_alias = cq.out_alias.clone();
                ext.out_type = cq.out_type.clone();
                out.push(ext);
            }
            Ok(out)
        }
        Qualifier::And(qs) => {
            let mut states = vec![cq.clone()];
            for q in qs {
                let mut next = Vec::new();
                for s in states {
                    next.extend(apply_qualifier(&s, q, schema, counter)?);
                }
                states = next;
            }
            Ok(states)
        }
    }
}

/// Extend a conjunctive query along a relative path (used by qualifiers).
fn extend_relative(cq: &Cq, rel: &Path, schema: &Schema, counter: &mut usize) -> Vec<Cq> {
    let mut states = vec![cq.clone()];
    for step in &rel.steps {
        let mut next = Vec::new();
        for s in &states {
            next.extend(extend_step(s, step, schema, counter));
        }
        // Nested predicates inside the relative path.
        for q in &step.predicates {
            let mut filtered = Vec::new();
            for s in next {
                if let Ok(mut more) = apply_qualifier(&s, q, schema, counter) {
                    filtered.append(&mut more);
                }
            }
            next = filtered;
        }
        states = next;
        if states.is_empty() {
            break;
        }
    }
    states
}

fn sql_op(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn sql_literal(lit: &str) -> String {
    if lit.parse::<i64>().is_ok() {
        lit.to_string()
    } else {
        format!("'{}'", lit.replace('\'', "''"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::tests::hospital_schema;
    use crate::mapping::Mapping;
    use crate::shred::{shred_document, shred_to_sql};
    use std::collections::BTreeSet;
    use xac_reldb::{Database, StorageKind};
    use xac_xml::Document;

    fn tr(src: &str) -> String {
        translate(&xac_xpath::parse(src).unwrap(), &hospital_schema()).unwrap()
    }

    #[test]
    fn single_table_scan_for_descendant_type() {
        assert_eq!(tr("//patient"), "SELECT patient1.id FROM patient patient1");
    }

    #[test]
    fn child_step_becomes_pid_join() {
        let sql = tr("//patient/name");
        assert_eq!(
            sql,
            "SELECT name2.id FROM patient patient1, name name2 \
             WHERE name2.pid = patient1.id"
        );
    }

    #[test]
    fn root_child_chain() {
        let sql = tr("/hospital/dept/patients/patient");
        assert!(sql.starts_with("SELECT patient4.id FROM hospital hospital1"));
        assert_eq!(sql.matches("pid").count(), 3);
    }

    #[test]
    fn existence_predicate_joins() {
        let sql = tr("//patient[treatment]");
        assert_eq!(
            sql,
            "SELECT patient1.id FROM patient patient1, treatment treatment2 \
             WHERE treatment2.pid = patient1.id"
        );
    }

    #[test]
    fn value_predicate_constrains_v() {
        let sql = tr("//regular[med = \"celecoxib\"]");
        assert!(sql.contains("med2.v = 'celecoxib'"), "{sql}");
        let sql = tr("//regular[bill > 1000]");
        assert!(sql.contains("bill2.v > 1000"), "{sql}");
    }

    #[test]
    fn descendant_in_predicate_unions_paths() {
        // `//patient[.//bill]` — bill lives under regular and experimental.
        let sql = tr("//patient[.//bill]");
        assert!(sql.contains(" UNION "), "{sql}");
        assert!(sql.contains("regular"), "{sql}");
        assert!(sql.contains("experimental"), "{sql}");
    }

    #[test]
    fn multi_location_type_unions() {
        // `name` occurs under patient, nurse and doctor, but as a plain
        // descendant step it needs no joins at all.
        assert_eq!(tr("//name"), "SELECT name1.id FROM name name1");
        // Under a specific parent it does.
        let sql = tr("//doctor/name");
        assert!(sql.contains("doctor"), "{sql}");
    }

    #[test]
    fn impossible_paths_translate_to_empty() {
        assert_eq!(tr("//med/patient"), "SELECT id FROM hospital WHERE 1 = 0");
        assert_eq!(tr("/dept"), "SELECT id FROM hospital WHERE 1 = 0");
        assert_eq!(tr("//patient[phone]"), "SELECT id FROM hospital WHERE 1 = 0");
        // Value predicate on a non-leaf type can never hold.
        assert_eq!(
            tr("//patient[treatment = \"x\"]"),
            "SELECT id FROM hospital WHERE 1 = 0"
        );
    }

    #[test]
    fn wildcard_steps() {
        let sql = tr("//patient/*");
        // psn, name, treatment → three unioned branches.
        assert_eq!(sql.matches("SELECT").count(), 3, "{sql}");
    }

    /// The central cross-check: for a corpus of expressions, translating
    /// to SQL and running on the shredded store selects exactly the same
    /// nodes as evaluating the XPath on the tree — on both engines.
    #[test]
    fn translation_agrees_with_tree_evaluation() {
        let schema = hospital_schema();
        let mapping = Mapping::derive(&schema).unwrap();
        let doc = Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>033</psn><name>john doe</name>\
             <treatment><regular><med>enoxaparin</med><bill>700</bill></regular></treatment>\
             </patient>\
             <patient><psn>042</psn><name>jane doe</name>\
             <treatment><experimental><test>hypnosis</test><bill>1600</bill></experimental></treatment>\
             </patient>\
             <patient><psn>099</psn><name>joy smith</name></patient>\
             </patients><staffinfo>\
             <staff><doctor><sid>7</sid><name>dr who</name><phone>555</phone></doctor></staff>\
             </staffinfo></dept></hospital>",
        )
        .unwrap();
        let shredded = shred_document(&doc, &mapping, '-').unwrap();
        let sql_text = shred_to_sql(&doc, &mapping, '-').unwrap();

        let queries = [
            "//patient",
            "//patient/name",
            "//name",
            "//patient[treatment]",
            "//patient[treatment]/name",
            "//patient[.//experimental]",
            "//regular",
            "//regular[med = \"celecoxib\"]",
            "//regular[med = \"enoxaparin\"]",
            "//regular[bill > 1000]",
            "//experimental[bill > 1000]",
            "//patient[.//bill]",
            "//patient[psn and treatment]",
            "/hospital/dept/patients/patient",
            "//dept//bill",
            "//staff/*",
            "//patient[name = \"joy smith\"]",
            "//patient[treatment[regular]]",
            "//*",
        ];

        for kind in [StorageKind::Row, StorageKind::Column] {
            let mut db = Database::new(kind);
            db.execute_script(&mapping.ddl()).unwrap();
            db.execute_script(&sql_text).unwrap();
            for q in queries {
                let path = xac_xpath::parse(q).unwrap();
                let expected: BTreeSet<i64> = xac_xpath::eval(&doc, &path)
                    .into_iter()
                    .map(|n| shredded.id_of(n).unwrap())
                    .collect();
                let sql = translate(&path, &schema).unwrap();
                let got = db.query(&sql).unwrap().column_as_int_set(0);
                assert_eq!(got, expected, "mismatch for `{q}` on {kind:?}\nSQL: {sql}");
            }
        }
    }
}
