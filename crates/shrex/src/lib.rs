//! # xac-shrex
//!
//! A ShreX-style [Du, Amer-Yahia, Freire, VLDB'04] XML-to-relational
//! mapping layer, reproducing the paper's §5.2 storage scheme:
//!
//! * every element type `E` of the (non-recursive) schema maps to a table
//!   `E(id, pid[, v], s)` — `id` a database-wide *universal identifier*,
//!   `pid` the parent node's id, `v` the text value for leaf types, and
//!   `s` the accessibility sign column;
//! * documents *shred* into one tuple per element
//!   ([`shred::shred_document`]), or into the SQL `INSERT` text whose
//!   execution the paper measures as loading time
//!   ([`shred::shred_to_sql`]);
//! * XPath expressions in the fragment translate to SQL
//!   ([`xpath2sql::translate`]): child steps become `pid = id` joins,
//!   descendant steps are expanded through the schema into unions of join
//!   chains, existence predicates become extra joins and value predicates
//!   become conditions on `v` — producing exactly the `SELECT pat1.id FROM
//!   patients pats1, patient pat1 WHERE …` queries of §5.2.

pub mod mapping;
pub mod shred;
pub mod xpath2sql;

pub use mapping::{Mapping, SIGN_COLUMN, VALUE_COLUMN};
pub use shred::{shred_document, shred_to_sql, ShreddedDocument, ShreddedRow};
pub use xpath2sql::translate;

/// Errors from mapping, shredding or translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The schema cannot be mapped (recursive, unknown root, …).
    Mapping(String),
    /// The document does not fit the mapped schema.
    Shred(String),
    /// The XPath expression cannot be translated.
    Translate(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Mapping(m) => write!(f, "mapping error: {m}"),
            Error::Shred(m) => write!(f, "shredding error: {m}"),
            Error::Translate(m) => write!(f, "translation error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
