//! Robustness: the XPath parser must never panic — arbitrary input either
//! parses (and then round-trips) or returns a parse error.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup: no panics, errors carry sane offsets.
    #[test]
    fn arbitrary_input_never_panics(input in ".{0,40}") {
        match xac_xpath::parse(&input) {
            Ok(path) => {
                // Whatever parsed must round-trip.
                let printed = path.to_string();
                let again = xac_xpath::parse(&printed)
                    .unwrap_or_else(|e| panic!("round-trip of `{input}` -> `{printed}`: {e}"));
                prop_assert_eq!(path, again);
            }
            Err(xac_xpath::Error::Parse { offset, .. }) => {
                prop_assert!(offset <= input.len());
            }
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }

    /// Structured-ish garbage from path-flavoured fragments: higher parse
    /// hit-rate, same invariants.
    #[test]
    fn fragment_soup_never_panics(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("/"), Just("//"), Just("a"), Just("bc"), Just("*"),
                Just("["), Just("]"), Just("."), Just(".//"), Just(" and "),
                Just("= 5"), Just("= \"x\""), Just(">"), Just("<="), Just("!"),
            ],
            0..12,
        )
    ) {
        let input: String = parts.concat();
        if let Ok(path) = xac_xpath::parse(&input) {
            let printed = path.to_string();
            let again = xac_xpath::parse(&printed).expect("display must re-parse");
            prop_assert_eq!(path, again);
        }
    }
}

// The XML parser under the same contract.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn xml_parser_never_panics(input in ".{0,60}") {
        let _ = xac_xml::Document::parse_str(&input);
    }

    #[test]
    fn xml_fragment_soup_never_panics(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<a>"), Just("</a>"), Just("<b/>"), Just("text"),
                Just("<"), Just(">"), Just("&amp;"), Just("&bogus;"),
                Just("<!--"), Just("-->"), Just("<?xml?>"), Just("attr=\"v\""),
                Just("<a attr='v'>"), Just("\""),
            ],
            0..10,
        )
    ) {
        let input: String = parts.concat();
        if let Ok(doc) = xac_xml::Document::parse_str(&input) {
            // Anything that parses must serialize and re-parse.
            let xml = doc.to_xml();
            xac_xml::Document::parse_str(&xml).expect("serialized form re-parses");
        }
    }
}

// The DTD parser too.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dtd_parser_never_panics(input in ".{0,80}") {
        let _ = xac_xml::parse_dtd(&input);
    }

    #[test]
    fn dtd_fragment_soup_never_panics(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<!ELEMENT "), Just("a "), Just("(b)"), Just("(#PCDATA)"),
                Just("EMPTY"), Just(">"), Just("(a, b?)"), Just("(a | b)"),
                Just("(("), Just("*"), Just("+"),
            ],
            0..8,
        )
    ) {
        let input: String = parts.concat();
        if let Ok(schema) = xac_xml::parse_dtd(&input) {
            let rendered = schema.to_dtd_string();
            xac_xml::parse_dtd(&rendered).expect("rendered DTD re-parses");
        }
    }
}
