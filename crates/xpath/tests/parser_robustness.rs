//! Robustness: the XPath parser must never panic — arbitrary input either
//! parses (and then round-trips) or returns a parse error.
//!
//! Seeded hand-rolled generators (no external crates): every run explores
//! the same inputs, and a failure message carries the seed-derived input
//! so it reproduces directly.

/// Tiny splitmix64 stream keeping this test self-contained and offline.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Printable-ish soup including XPath metacharacters and some unicode.
fn random_input(rng: &mut Rng, max_len: usize) -> String {
    const POOL: &[char] = &[
        'a', 'b', 'z', '0', '7', '/', '*', '[', ']', '.', '=', '<', '>', '!', '"', '\'',
        ' ', '\t', '(', ')', '@', '-', '_', ',', '|', '&', '%', '€', 'λ', '→', '\\', '#',
    ];
    let len = rng.below(max_len + 1);
    (0..len).map(|_| POOL[rng.below(POOL.len())]).collect()
}

#[test]
fn arbitrary_input_never_panics() {
    let mut rng = Rng(0xA1);
    for _ in 0..512 {
        let input = random_input(&mut rng, 40);
        match xac_xpath::parse(&input) {
            Ok(path) => {
                // Whatever parsed must round-trip.
                let printed = path.to_string();
                let again = xac_xpath::parse(&printed)
                    .unwrap_or_else(|e| panic!("round-trip of `{input}` -> `{printed}`: {e}"));
                assert_eq!(path, again);
            }
            Err(xac_xpath::Error::Parse { offset, .. }) => {
                assert!(offset <= input.len(), "offset out of range for `{input}`");
            }
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }
}

#[test]
fn fragment_soup_never_panics() {
    // Structured-ish garbage from path-flavoured fragments: higher parse
    // hit-rate, same invariants.
    const PARTS: &[&str] = &[
        "/", "//", "a", "bc", "*", "[", "]", ".", ".//", " and ",
        "= 5", "= \"x\"", ">", "<=", "!",
    ];
    let mut rng = Rng(0xA2);
    let mut parsed = 0usize;
    for _ in 0..512 {
        let n = rng.below(12);
        let input: String = (0..n).map(|_| PARTS[rng.below(PARTS.len())]).collect();
        if let Ok(path) = xac_xpath::parse(&input) {
            parsed += 1;
            let printed = path.to_string();
            let again = xac_xpath::parse(&printed).expect("display must re-parse");
            assert_eq!(path, again);
        }
    }
    assert!(parsed > 5, "soup generator should hit the parser sometimes ({parsed})");
}

// The XML parser under the same contract.

#[test]
fn xml_parser_never_panics() {
    let mut rng = Rng(0xB1);
    for _ in 0..512 {
        let input = random_input(&mut rng, 60);
        let _ = xac_xml::Document::parse_str(&input);
    }
}

#[test]
fn xml_fragment_soup_never_panics() {
    const PARTS: &[&str] = &[
        "<a>", "</a>", "<b/>", "text", "<", ">", "&amp;", "&bogus;",
        "<!--", "-->", "<?xml?>", "attr=\"v\"", "<a attr='v'>", "\"",
    ];
    let mut rng = Rng(0xB2);
    for _ in 0..512 {
        let n = rng.below(10);
        let input: String = (0..n).map(|_| PARTS[rng.below(PARTS.len())]).collect();
        if let Ok(doc) = xac_xml::Document::parse_str(&input) {
            // Anything that parses must serialize and re-parse.
            let xml = doc.to_xml();
            xac_xml::Document::parse_str(&xml).expect("serialized form re-parses");
        }
    }
}

// The DTD parser too.

#[test]
fn dtd_parser_never_panics() {
    let mut rng = Rng(0xC1);
    for _ in 0..256 {
        let input = random_input(&mut rng, 80);
        let _ = xac_xml::parse_dtd(&input);
    }
}

#[test]
fn dtd_fragment_soup_never_panics() {
    const PARTS: &[&str] = &[
        "<!ELEMENT ", "a ", "(b)", "(#PCDATA)", "EMPTY", ">", "(a, b?)",
        "(a | b)", "((", "*", "+",
    ];
    let mut rng = Rng(0xC2);
    for _ in 0..256 {
        let n = rng.below(8);
        let input: String = (0..n).map(|_| PARTS[rng.below(PARTS.len())]).collect();
        if let Ok(schema) = xac_xml::parse_dtd(&input) {
            let rendered = schema.to_dtd_string();
            xac_xml::parse_dtd(&rendered).expect("rendered DTD re-parses");
        }
    }
}
