//! Schema specialization: rewriting a path into the finite union of
//! child-axis-only variants it denotes on documents valid under a
//! (non-recursive) schema.
//!
//! On schema-valid trees, `[[p]] = ⋃ [[v]]` over the variants `v` — the
//! rewrite preserves semantics exactly, unlike [`crate::expand`] (which
//! strips predicates and adds prefixes for *triggering*). Specialization
//! powers the schema-aware containment test the paper's §8 calls for:
//!
//! ```
//! use xac_xml::{Schema, Particle, Occurs::*};
//! use xac_xpath::{parse, contained_in, specialize::contained_in_with_schema};
//!
//! let schema = Schema::builder("r")
//!     .sequence("r", vec![Particle::new("a", Star)])
//!     .sequence("a", vec![Particle::new("b", Optional)])
//!     .sequence("b", vec![Particle::new("c", Optional)])
//!     .text(&["c"])
//!     .build()
//!     .unwrap();
//! let p = parse("//a[.//c]").unwrap();
//! let q = parse("//a[b]").unwrap();
//! // Schema-blind containment cannot relate the descendant predicate to
//! // `b`; under the schema every `c` below `a` sits inside a `b`.
//! assert!(!contained_in(&p, &q));
//! assert!(contained_in_with_schema(&p, &q, &schema));
//! ```

use crate::ast::{Axis, CmpOp, NodeTest, Path, Qualifier, Step};
use crate::containment::{contained_in, disjoint};
use xac_xml::{ContentModel, Schema};

/// Rewrite an absolute path into its child-axis-only schema variants.
///
/// Descendant steps (on the spine and inside qualifiers) are replaced by
/// every child-axis label path the schema admits; steps whose anchor is a
/// wildcard or unknown label keep their descendant axis (the variant set
/// then still covers `[[p]]`, it is just less specialized). Paths that
/// cannot match any valid document yield an empty set.
pub fn schema_variants(path: &Path, schema: &Schema) -> Vec<Path> {
    assert!(path.absolute, "specialization applies to absolute paths");
    if schema.is_recursive() {
        // Infinitely many child paths: return the path unchanged.
        return vec![path.clone()];
    }
    let mut variants: Vec<(Vec<Step>, Option<String>)> = vec![(Vec::new(), None)];
    let mut first = true;
    for step in &path.steps {
        let mut next = Vec::new();
        for (prefix, anchor) in &variants {
            for (steps, end) in specialize_step(step, anchor.as_deref(), first, schema) {
                let mut longer = prefix.clone();
                longer.extend(steps);
                next.push((longer, end));
            }
        }
        variants = next;
        first = false;
        if variants.is_empty() {
            return Vec::new();
        }
    }
    variants
        .into_iter()
        .map(|(steps, _)| Path::absolute(steps))
        .collect()
}

/// Specialize one step from an anchor type. Returns `(steps, end type)`
/// alternatives; `end` is `None` when the label is not statically known.
fn specialize_step(
    step: &Step,
    anchor: Option<&str>,
    from_root: bool,
    schema: &Schema,
) -> Vec<(Vec<Step>, Option<String>)> {
    let preds = |label: Option<&str>| -> Vec<Vec<Qualifier>> {
        specialize_qualifiers(&step.predicates, label, schema)
    };
    let mk = |axis: Axis, test: NodeTest, quals: Vec<Qualifier>| Step {
        axis,
        test,
        predicates: quals,
    };

    // The set of (label path, end label) pairs this step can denote.
    let label_paths: Vec<(Vec<String>, Option<String>)> = match (&step.test, step.axis) {
        (NodeTest::Name(n), Axis::Child) => {
            let ok = match (from_root, anchor) {
                (true, _) => n == schema.root(),
                (false, Some(a)) => schema.child_types(a).contains(&n.as_str()),
                (false, None) => true, // unknown anchor: keep as written
            };
            if ok {
                vec![(vec![n.clone()], Some(n.clone()))]
            } else {
                Vec::new()
            }
        }
        (NodeTest::Name(n), Axis::Descendant) => {
            if from_root {
                // Descendants of the virtual root = every node, so the
                // label paths run from the document root inclusive.
                if !schema.contains(n) {
                    return Vec::new();
                }
                schema
                    .paths_from_root(n)
                    .unwrap_or_default()
                    .into_iter()
                    .map(|p| (p, Some(n.clone())))
                    .collect()
            } else {
                match anchor {
                    Some(a) if schema.contains(a) && schema.contains(n) => schema
                        .paths_between(a, n)
                        .unwrap_or_default()
                        .into_iter()
                        .map(|p| (p, Some(n.clone())))
                        .collect(),
                    _ => return keep_verbatim(step, preds(None), mk),
                }
            }
        }
        (NodeTest::Wildcard, _) => return keep_verbatim(step, preds(None), mk),
    };

    let mut out = Vec::new();
    for (labels, end) in label_paths {
        for quals in preds(end.as_deref()) {
            let mut steps: Vec<Step> = labels
                .iter()
                .map(|l| Step::child(l.clone()))
                .collect();
            if let Some(last) = steps.last_mut() {
                last.predicates = quals.clone();
            }
            out.push((steps, end.clone()));
        }
    }
    out
}

/// A step kept as written (wildcard or unknown anchor), with its
/// qualifier alternatives attached.
fn keep_verbatim(
    step: &Step,
    qual_sets: Vec<Vec<Qualifier>>,
    mk: impl Fn(Axis, NodeTest, Vec<Qualifier>) -> Step,
) -> Vec<(Vec<Step>, Option<String>)> {
    let end = match &step.test {
        NodeTest::Name(n) => Some(n.clone()),
        NodeTest::Wildcard => None,
    };
    qual_sets
        .into_iter()
        .map(|quals| (vec![mk(step.axis, step.test.clone(), quals)], end.clone()))
        .collect()
}

/// Specialize a conjunction of qualifiers at a context label: the
/// cartesian product of each qualifier's alternatives.
fn specialize_qualifiers(
    quals: &[Qualifier],
    anchor: Option<&str>,
    schema: &Schema,
) -> Vec<Vec<Qualifier>> {
    let mut sets: Vec<Vec<Qualifier>> = vec![Vec::new()];
    for q in quals {
        let alts = specialize_qualifier(q, anchor, schema);
        if alts.is_empty() {
            return Vec::new(); // unsatisfiable qualifier
        }
        let mut next = Vec::new();
        for set in &sets {
            for alt in &alts {
                let mut grown = set.clone();
                grown.push(alt.clone());
                next.push(grown);
            }
        }
        sets = next;
    }
    sets
}

fn specialize_qualifier(
    q: &Qualifier,
    anchor: Option<&str>,
    schema: &Schema,
) -> Vec<Qualifier> {
    match q {
        Qualifier::Exists(rel) => specialize_relative(rel, anchor, schema)
            .into_iter()
            .map(Qualifier::Exists)
            .collect(),
        Qualifier::Cmp(rel, op, d) => specialize_relative(rel, anchor, schema)
            .into_iter()
            .map(|r| Qualifier::Cmp(r, *op, d.clone()))
            .collect(),
        Qualifier::And(qs) => specialize_qualifiers(qs, anchor, schema)
            .into_iter()
            .map(Qualifier::And)
            .collect(),
    }
}

/// Specialize a relative (qualifier) path from an anchor label.
fn specialize_relative(rel: &Path, anchor: Option<&str>, schema: &Schema) -> Vec<Path> {
    if rel.is_self() {
        return vec![rel.clone()];
    }
    let mut variants: Vec<(Vec<Step>, Option<String>)> =
        vec![(Vec::new(), anchor.map(str::to_string))];
    for step in &rel.steps {
        let mut next = Vec::new();
        for (prefix, at) in &variants {
            for (steps, end) in specialize_step(step, at.as_deref(), false, schema) {
                let mut longer = prefix.clone();
                longer.extend(steps);
                next.push((longer, end));
            }
        }
        variants = next;
        if variants.is_empty() {
            return Vec::new();
        }
    }
    variants
        .into_iter()
        .map(|(steps, _)| Path::relative(steps))
        .collect()
}

/// Schema-aware containment: `p ⊑ q` on documents valid under `schema`.
///
/// Sound strengthening of [`contained_in`]: every schema variant of `p`
/// must embed into some schema variant of `q` (each variant denotes a
/// subset of `[[q]]` on valid documents).
pub fn contained_in_with_schema(p: &Path, q: &Path, schema: &Schema) -> bool {
    if contained_in(p, q) {
        return true;
    }
    let p_variants = schema_variants(p, schema);
    if p_variants.is_empty() {
        return true; // p matches nothing on valid documents
    }
    let mut q_variants = schema_variants(q, schema);
    q_variants.push(q.clone());
    p_variants
        .iter()
        .all(|v| q_variants.iter().any(|qv| contained_in(v, qv)))
}

/// Schema-aware disjointness: `[[p]] ∩ [[q]] = ∅` on every document
/// valid under `schema`. Sound strengthening of [`disjoint`] (which is
/// schema-blind and thus holds on *all* trees): on top of the blind
/// test it proves emptiness when either path matches no valid document,
/// when the variants' end labels never coincide, and when two variants
/// sharing an end type carry contradicting value constraints
/// ([`CmpOp::contradicts`]) on the same single-occurrence child — the
/// occurrence bound is what licenses the step from "no one value
/// satisfies both" to "no one *element* satisfies both" under
/// exists-semantics. Returns `false` whenever disjointness cannot be
/// proved.
pub fn disjoint_with_schema(p: &Path, q: &Path, schema: &Schema) -> bool {
    if disjoint(p, q) {
        return true;
    }
    let p_variants = schema_variants(p, schema);
    if p_variants.is_empty() {
        return true; // p matches nothing on valid documents
    }
    let q_variants = schema_variants(q, schema);
    if q_variants.is_empty() {
        return true;
    }
    p_variants
        .iter()
        .all(|a| q_variants.iter().all(|b| variant_pair_disjoint(a, b, schema)))
}

/// Disjointness of two schema variants (child-axis-normalized paths).
fn variant_pair_disjoint(a: &Path, b: &Path, schema: &Schema) -> bool {
    if disjoint(a, b) {
        return true;
    }
    let (ea, eb) = match (named_end(a), named_end(b)) {
        (Some(x), Some(y)) => (x, y),
        _ => return false, // wildcard end: label analysis proves nothing
    };
    if ea != eb {
        return true;
    }
    // Same end type: hunt for a pair of value constraints on the same
    // single-occurrence child that no single value can satisfy.
    let content = match schema.element_type(ea) {
        Some(t) => &t.content,
        None => return false,
    };
    let ca = value_constraints(a);
    let cb = value_constraints(b);
    ca.iter().any(|(pa, opa, da)| {
        cb.iter().any(|(pb, opb, db)| {
            pa == pb
                && single_occurrence_child(pa, content)
                && opa.contradicts(da, *opb, db)
        })
    })
}

/// The end label of a path, when its last step names one.
fn named_end(p: &Path) -> Option<&str> {
    match &p.last_step()?.test {
        NodeTest::Name(n) => Some(n),
        NodeTest::Wildcard => None,
    }
}

/// Every `Cmp` qualifier on the output step, with `And` flattened.
fn value_constraints(p: &Path) -> Vec<(&Path, CmpOp, &str)> {
    fn collect<'a>(q: &'a Qualifier, out: &mut Vec<(&'a Path, CmpOp, &'a str)>) {
        match q {
            Qualifier::Cmp(rel, op, d) => out.push((rel, *op, d)),
            Qualifier::And(qs) => qs.iter().for_each(|q| collect(q, out)),
            Qualifier::Exists(_) => {}
        }
    }
    let mut out = Vec::new();
    if let Some(last) = p.last_step() {
        last.predicates.iter().for_each(|q| collect(q, &mut out));
    }
    out
}

/// Is `rel` a bare single child step naming an element the content model
/// admits at most once? Only then can contradicting value constraints
/// prove element-level disjointness under exists-semantics.
fn single_occurrence_child(rel: &Path, content: &ContentModel) -> bool {
    let [step] = rel.steps.as_slice() else {
        return false;
    };
    if rel.absolute || step.axis != Axis::Child || !step.predicates.is_empty() {
        return false;
    }
    let NodeTest::Name(name) = &step.test else {
        return false;
    };
    let particles = match content {
        ContentModel::Sequence(ps) | ContentModel::Choice(ps) => ps,
        ContentModel::Text | ContentModel::Empty => return false,
    };
    particles
        .iter()
        .filter(|p| p.name == *name)
        .map(|p| p.occurs.max())
        .try_fold(0usize, |acc, max| max.map(|m| acc + m))
        .is_some_and(|total| total == 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use xac_xml::{Occurs::*, Particle};

    fn hospital_schema() -> Schema {
        Schema::builder("hospital")
            .sequence("hospital", vec![Particle::new("dept", Plus)])
            .sequence(
                "dept",
                vec![Particle::new("patients", One), Particle::new("staffinfo", One)],
            )
            .sequence("patients", vec![Particle::new("patient", Star)])
            .sequence("staffinfo", vec![Particle::new("staff", Star)])
            .sequence(
                "patient",
                vec![
                    Particle::new("psn", One),
                    Particle::new("name", One),
                    Particle::new("treatment", Optional),
                ],
            )
            .choice(
                "treatment",
                vec![
                    Particle::new("regular", Optional),
                    Particle::new("experimental", Optional),
                ],
            )
            .sequence("regular", vec![Particle::new("med", One), Particle::new("bill", One)])
            .sequence(
                "experimental",
                vec![Particle::new("test", One), Particle::new("bill", One)],
            )
            .choice("staff", vec![Particle::new("nurse", One), Particle::new("doctor", One)])
            .sequence(
                "nurse",
                vec![
                    Particle::new("sid", One),
                    Particle::new("name", One),
                    Particle::new("phone", One),
                ],
            )
            .sequence(
                "doctor",
                vec![
                    Particle::new("sid", One),
                    Particle::new("name", One),
                    Particle::new("phone", One),
                ],
            )
            .text(&["psn", "name", "med", "bill", "test", "sid", "phone"])
            .build()
            .unwrap()
    }

    fn strings(paths: &[Path]) -> Vec<String> {
        paths.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn spine_descendants_expand() {
        let s = hospital_schema();
        let vs = schema_variants(&parse("//regular").unwrap(), &s);
        assert_eq!(
            strings(&vs),
            vec!["/hospital/dept/patients/patient/treatment/regular"]
        );
        // `//bill` fans out into both treatment branches.
        let vs = schema_variants(&parse("//bill").unwrap(), &s);
        assert_eq!(vs.len(), 2);
        assert!(vs.iter().all(|v| !v.uses_descendant()));
    }

    #[test]
    fn predicate_descendants_expand() {
        let s = hospital_schema();
        let vs = schema_variants(&parse("//patient[.//experimental]").unwrap(), &s);
        assert_eq!(
            strings(&vs),
            vec!["/hospital/dept/patients/patient[treatment/experimental]"]
        );
    }

    #[test]
    fn impossible_paths_vanish() {
        let s = hospital_schema();
        assert!(schema_variants(&parse("//med/patient").unwrap(), &s).is_empty());
        assert!(schema_variants(&parse("//patient[phone]").unwrap(), &s).is_empty());
        assert!(schema_variants(&parse("/dept").unwrap(), &s).is_empty());
    }

    #[test]
    fn root_matched_by_descendant_step() {
        let s = hospital_schema();
        let vs = schema_variants(&parse("//hospital").unwrap(), &s);
        assert_eq!(strings(&vs), vec!["/hospital"]);
    }

    #[test]
    fn wildcards_kept_verbatim() {
        let s = hospital_schema();
        let vs = schema_variants(&parse("//*[psn]").unwrap(), &s);
        assert_eq!(strings(&vs), vec!["//*[psn]"]);
    }

    #[test]
    fn variants_preserve_semantics_on_valid_documents() {
        let s = hospital_schema();
        let doc = xac_xml::Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>1</psn><name>a</name>\
             <treatment><experimental><test>t</test><bill>9</bill></experimental></treatment>\
             </patient>\
             <patient><psn>2</psn><name>b</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap();
        for src in [
            "//patient",
            "//patient[.//experimental]",
            "//bill",
            "//dept//name",
            "//patient[.//bill > 5]",
        ] {
            let p = parse(src).unwrap();
            let expected = crate::eval(&doc, &p);
            let mut got: Vec<_> = schema_variants(&p, &s)
                .iter()
                .flat_map(|v| crate::eval(&doc, v))
                .collect();
            got.sort();
            got.dedup();
            assert_eq!(got, expected, "variants of {src} changed semantics");
        }
    }

    #[test]
    fn schema_containment_beats_blind_containment() {
        let s = hospital_schema();
        let p = parse("//patient[.//experimental]").unwrap();
        let q = parse("//patient[treatment]").unwrap();
        assert!(!contained_in(&p, &q), "schema-blind test cannot know");
        assert!(contained_in_with_schema(&p, &q, &s));
        // And the reverse still fails (a treatment need not be experimental).
        assert!(!contained_in_with_schema(&q, &p, &s));
    }

    #[test]
    fn schema_containment_relates_descendant_to_child_chain() {
        let s = hospital_schema();
        let p = parse("//patients//bill").unwrap();
        let q = parse("//treatment/*/bill").unwrap();
        assert!(!contained_in(&p, &q));
        assert!(contained_in_with_schema(&p, &q, &s));
    }

    #[test]
    fn schema_containment_still_sound() {
        let s = hospital_schema();
        // Distinct leaves stay unrelated.
        assert!(!contained_in_with_schema(
            &parse("//med").unwrap(),
            &parse("//test").unwrap(),
            &s
        ));
        // Unsatisfiable p is contained in anything.
        assert!(contained_in_with_schema(
            &parse("//med/patient").unwrap(),
            &parse("//test").unwrap(),
            &s
        ));
    }

    #[test]
    fn schema_disjointness_beats_blind_disjointness() {
        let s = hospital_schema();
        // Dead path: matches nothing valid, disjoint from everything.
        let p = parse("//nurse/med").unwrap();
        let q = parse("//med").unwrap();
        assert!(!disjoint(&p, &q), "blind test cannot separate these");
        assert!(disjoint_with_schema(&p, &q, &s));
        // Unsatisfiable qualifier, same end label as the peer.
        assert!(disjoint_with_schema(
            &parse("//patient[phone]").unwrap(),
            &parse("//patient").unwrap(),
            &s
        ));
        // Contradicting bounds on the single-occurrence `bill` child.
        let lo = parse("//regular[bill > 500][bill <= 1000]").unwrap();
        let hi = parse("//regular[bill > 1000]").unwrap();
        assert!(!disjoint(&lo, &hi));
        assert!(disjoint_with_schema(&lo, &hi, &s));
        assert!(disjoint_with_schema(&hi, &lo, &s));
    }

    #[test]
    fn schema_disjointness_still_sound() {
        let s = hospital_schema();
        // Overlapping bounds: 700 satisfies both.
        assert!(!disjoint_with_schema(
            &parse("//regular[bill > 500]").unwrap(),
            &parse("//regular[bill <= 1000]").unwrap(),
            &s
        ));
        // Same end type, no constraints: plainly overlapping.
        assert!(!disjoint_with_schema(
            &parse("//patient").unwrap(),
            &parse("//patients/patient").unwrap(),
            &s
        ));
        // Constraints on a *repeated* child must not be combined: under
        // exists-semantics two different `a` children can satisfy the
        // two bounds even though no single value does.
        let multi = Schema::builder("r")
            .sequence("r", vec![Particle::new("a", Star)])
            .text(&["a"])
            .build()
            .unwrap();
        assert!(!disjoint_with_schema(
            &parse("//r[a > 10]").unwrap(),
            &parse("//r[a <= 10]").unwrap(),
            &multi
        ));
        // Single-occurrence child: the same bounds do contradict.
        let single = Schema::builder("r")
            .sequence("r", vec![Particle::new("a", One)])
            .text(&["a"])
            .build()
            .unwrap();
        assert!(disjoint_with_schema(
            &parse("//r[a > 10]").unwrap(),
            &parse("//r[a <= 10]").unwrap(),
            &single
        ));
    }

    #[test]
    fn recursive_schema_degrades_gracefully() {
        let s = Schema::builder("a")
            .sequence("a", vec![Particle::new("a", Star)])
            .build()
            .unwrap();
        let p = parse("//a").unwrap();
        assert_eq!(schema_variants(&p, &s), vec![p.clone()]);
        assert!(contained_in_with_schema(&p, &p, &s));
    }
}
