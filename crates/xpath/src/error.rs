//! Error type for parsing and static analysis.

use std::fmt;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The XPath text was malformed.
    Parse { offset: usize, message: String },
    /// A static analysis was asked something it cannot answer (e.g.
    /// expansion over a recursive schema).
    Analysis(String),
}

impl Error {
    pub(crate) fn parse(offset: usize, message: impl Into<String>) -> Self {
        Error::Parse { offset, message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { offset, message } => {
                write!(f, "XPath parse error at byte {offset}: {message}")
            }
            Error::Analysis(m) => write!(f, "XPath analysis error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
