//! Set-semantics evaluation of the fragment over [`xac_xml::Document`]
//! trees: `[[p]](T)` returns the set of nodes selected by `p`, in document
//! order (paper §2.2; semantics follow Wadler \[25\] / Gottlob et al. \[12\]
//! restricted to the fragment).
//!
//! Node tests match *element* nodes only — text nodes are values from `D`
//! and are reached through comparisons, never selected.

use crate::ast::{Axis, Path, Qualifier, Step};
use std::collections::BTreeSet;
use xac_xml::{Document, NodeId};

/// Evaluate an absolute path on the document. Returns selected element
/// nodes in document order (arena order).
pub fn eval(doc: &Document, path: &Path) -> Vec<NodeId> {
    assert!(path.absolute, "eval requires an absolute path, got `{path}`");
    // The virtual context "above" the root: a child step selects the root
    // itself, a descendant step selects every element.
    let mut current: BTreeSet<NodeId> = BTreeSet::new();
    let mut first = true;
    for step in &path.steps {
        current = if first {
            first = false;
            apply_first_step(doc, step)
        } else {
            apply_step(doc, &current, step)
        };
        if current.is_empty() {
            break;
        }
    }
    current.into_iter().collect()
}

/// Evaluate a relative path from a context node. The self path returns the
/// context node itself.
pub fn eval_from(doc: &Document, context: NodeId, path: &Path) -> Vec<NodeId> {
    assert!(!path.absolute, "eval_from requires a relative path, got `{path}`");
    let mut current: BTreeSet<NodeId> = BTreeSet::new();
    current.insert(context);
    for step in &path.steps {
        current = apply_step(doc, &current, step);
        if current.is_empty() {
            break;
        }
    }
    current.into_iter().collect()
}

fn apply_first_step(doc: &Document, step: &Step) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    match step.axis {
        Axis::Child => {
            // Children of the virtual root = the document root.
            let root = doc.root();
            if node_matches(doc, root, step) {
                out.insert(root);
            }
        }
        Axis::Descendant => {
            // Descendants of the virtual root = every node.
            for n in doc.subtree(doc.root()) {
                if node_matches(doc, n, step) {
                    out.insert(n);
                }
            }
        }
    }
    out
}

fn apply_step(doc: &Document, current: &BTreeSet<NodeId>, step: &Step) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    match step.axis {
        Axis::Child => {
            for &ctx in current {
                for c in doc.children(ctx) {
                    if node_matches(doc, c, step) {
                        out.insert(c);
                    }
                }
            }
        }
        Axis::Descendant => {
            // When contexts nest, descendants overlap; the set dedups.
            for &ctx in current {
                for d in doc.descendants(ctx) {
                    if node_matches(doc, d, step) {
                        out.insert(d);
                    }
                }
            }
        }
    }
    out
}

fn node_matches(doc: &Document, node: NodeId, step: &Step) -> bool {
    let Some(name) = doc.name(node) else {
        return false; // text nodes are never selected by a node test
    };
    if !step.test.matches(name) {
        return false;
    }
    step.predicates.iter().all(|q| qualifier_holds(doc, node, q))
}

/// Evaluate a qualifier at a context node.
pub fn qualifier_holds(doc: &Document, context: NodeId, q: &Qualifier) -> bool {
    match q {
        Qualifier::Exists(p) => {
            if p.is_self() {
                return true;
            }
            !eval_from(doc, context, p).is_empty()
        }
        Qualifier::Cmp(p, op, d) => {
            if p.is_self() {
                return op.compare(&string_value(doc, context), d);
            }
            eval_from(doc, context, p)
                .into_iter()
                .any(|n| op.compare(&string_value(doc, n), d))
        }
        Qualifier::And(qs) => qs.iter().all(|q| qualifier_holds(doc, context, q)),
    }
}

/// The string value used in comparisons: the concatenation of the
/// element's direct text children (leaf elements carry their datum there).
fn string_value(doc: &Document, node: NodeId) -> String {
    doc.text_of(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use xac_xml::Document;

    /// The partial hospital document of the paper's Figure 2.
    pub(crate) fn figure2() -> Document {
        Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>033</psn><name>john doe</name>\
             <treatment><regular><med>enoxaparin</med><bill>700</bill></regular></treatment>\
             </patient>\
             <patient><psn>042</psn><name>jane doe</name>\
             <treatment><experimental><test>regression hypnosis</test><bill>1600</bill></experimental></treatment>\
             </patient>\
             <patient><psn>099</psn><name>joy smith</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap()
    }

    fn names(doc: &Document, ids: &[NodeId]) -> Vec<String> {
        ids.iter().map(|&n| doc.name(n).unwrap().to_string()).collect()
    }

    fn run(doc: &Document, src: &str) -> Vec<NodeId> {
        eval(doc, &parse(src).unwrap())
    }

    #[test]
    fn descendant_from_root() {
        let doc = figure2();
        assert_eq!(run(&doc, "//patient").len(), 3);
        assert_eq!(run(&doc, "//hospital").len(), 1, "// includes the root");
        assert_eq!(run(&doc, "//bill").len(), 2);
    }

    #[test]
    fn child_chains() {
        let doc = figure2();
        assert_eq!(run(&doc, "/hospital").len(), 1);
        assert_eq!(run(&doc, "/hospital/dept/patients/patient").len(), 3);
        assert_eq!(run(&doc, "/dept").len(), 0, "root is hospital, not dept");
        assert_eq!(run(&doc, "/hospital/patient").len(), 0, "child, not descendant");
    }

    #[test]
    fn wildcard_matches_elements_only() {
        let doc = figure2();
        // Children of patient: psn, name, treatment (text nodes excluded).
        assert_eq!(run(&doc, "//patient/*").len(), 8);
        let all = run(&doc, "//*");
        assert_eq!(all.len(), doc.element_count());
    }

    #[test]
    fn existence_predicates() {
        let doc = figure2();
        assert_eq!(run(&doc, "//patient[treatment]").len(), 2);
        assert_eq!(run(&doc, "//patient[treatment]/name").len(), 2);
        assert_eq!(run(&doc, "//patient[.//experimental]").len(), 1);
        assert_eq!(run(&doc, "//patient[psn and treatment]").len(), 2);
        assert_eq!(run(&doc, "//patient[bogus]").len(), 0);
    }

    #[test]
    fn value_predicates() {
        let doc = figure2();
        assert_eq!(run(&doc, "//regular[med = \"celecoxib\"]").len(), 0);
        assert_eq!(run(&doc, "//regular[med = \"enoxaparin\"]").len(), 1);
        assert_eq!(run(&doc, "//regular[bill > 1000]").len(), 0);
        assert_eq!(run(&doc, "//experimental[bill > 1000]").len(), 1);
        assert_eq!(run(&doc, "//patient[.//bill > 1000]").len(), 1);
        assert_eq!(run(&doc, "//bill[. > 1000]").len(), 1);
        assert_eq!(run(&doc, "//patient[name = \"joy smith\"]").len(), 1);
    }

    #[test]
    fn nested_predicates() {
        let doc = figure2();
        assert_eq!(run(&doc, "//patient[treatment[regular]]").len(), 1);
        assert_eq!(run(&doc, "//patient[treatment[regular[med = \"enoxaparin\"]]]").len(), 1);
        assert_eq!(run(&doc, "//dept[patients[patient[treatment]]]").len(), 1);
    }

    #[test]
    fn results_in_document_order_and_deduplicated() {
        let doc = Document::parse_str("<a><b><b><c/></b></b></a>").unwrap();
        let r = run(&doc, "//b//c");
        // c is a descendant of both b elements but must appear once.
        assert_eq!(r.len(), 1);
        let bs = run(&doc, "//b");
        assert_eq!(names(&doc, &bs), vec!["b", "b"]);
        assert!(bs[0] < bs[1], "document order");
    }

    #[test]
    fn relative_eval_from_context() {
        let doc = figure2();
        let patients = run(&doc, "//patient");
        let rel = parse("treatment/regular").unwrap();
        let hits: Vec<usize> = patients
            .iter()
            .map(|&p| eval_from(&doc, p, &rel).len())
            .collect();
        assert_eq!(hits, vec![1, 0, 0]);
        let relder = parse(".//bill").unwrap();
        let hits: Vec<usize> =
            patients.iter().map(|&p| eval_from(&doc, p, &relder).len()).collect();
        assert_eq!(hits, vec![1, 1, 0]);
    }

    #[test]
    fn empty_document_edge_cases() {
        let doc = Document::parse_str("<a/>").unwrap();
        assert_eq!(run(&doc, "//a").len(), 1);
        assert_eq!(run(&doc, "/a").len(), 1);
        assert_eq!(run(&doc, "//b").len(), 0);
        assert_eq!(run(&doc, "/a/b").len(), 0);
        assert_eq!(run(&doc, "//a[b]").len(), 0);
    }
}
