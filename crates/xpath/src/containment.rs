//! XPath containment via canonical homomorphisms (Miklau & Suciu \[18\]).
//!
//! `p ⊑ q` holds when `[[p]](T) ⊆ [[q]](T)` for every tree `T`. The test
//! used here — *does a homomorphism exist from `q`'s tree pattern into
//! `p`'s?* — is the standard practical algorithm: it is **sound** for the
//! whole fragment (if it answers yes, containment truly holds) and
//! **complete** on XP(`/`, `//`, `\[\]`) (no wildcards), which covers every
//! policy in the paper. Containment of the full XP(`/`, `//`, `*`, `[]`)
//! fragment is coNP-complete \[18\], so a complete polynomial test cannot
//! exist; the homomorphism under-approximation is what the paper's own
//! checker \[13\] implements.
//!
//! A homomorphism `h : Q → P` maps the virtual root to the virtual root
//! and the output node to the output node, preserves labels (`*` in `Q`
//! matches any element label in `P`, named labels must match exactly and
//! cannot map onto `*`), maps child edges to child edges and descendant
//! edges to paths of length ≥ 1, and every value constraint in `Q` must be
//! implied by a constraint on the image node in `P`.

use crate::ast::Path;
use crate::pattern::{Constraint, EdgeKind, PLabel, TreePattern};

/// `p ⊑ q` — sound homomorphism containment test.
pub fn contained_in(p: &Path, q: &Path) -> bool {
    let tp = TreePattern::from_path(p);
    let tq = TreePattern::from_path(q);
    homomorphism_exists(&tq, &tp)
}

/// `p ⊑ q` over prebuilt tree patterns — the memoization-friendly entry
/// point: [`crate::ContainmentOracle`] builds each distinct pattern once
/// and replays it here instead of re-deriving it per query.
pub fn pattern_contained_in(tp: &TreePattern, tq: &TreePattern) -> bool {
    homomorphism_exists(tq, tp)
}

/// `p ≡ q` — containment in both directions.
pub fn equivalent(p: &Path, q: &Path) -> bool {
    contained_in(p, q) && contained_in(q, p)
}

/// Sound disjointness test: `true` only when `[[p]](T) ∩ [[q]](T) = ∅` for
/// every tree `T`. Conservative — `false` means "may overlap".
pub fn disjoint(p: &Path, q: &Path) -> bool {
    let tp = TreePattern::from_path(p);
    let tq = TreePattern::from_path(q);

    // Conflicting output labels: a node selected by both would need two
    // different element names.
    if let (PLabel::Name(a), PLabel::Name(b)) =
        (&tp.node(tp.output()).label, &tq.node(tq.output()).label)
    {
        if a != b {
            return true;
        }
    }

    // Depth arguments. Each spine step descends at least one level, and a
    // child-only spine descends exactly one level per step.
    let p_min = tp.spine().len() - 1;
    let q_min = tq.spine().len() - 1;
    if tp.spine_child_only() {
        let p_exact = p_min;
        if q_min > p_exact {
            return true;
        }
        if tq.spine_child_only() {
            let q_exact = q_min;
            if p_exact != q_exact {
                return true;
            }
            // Same exact depth: compare spine labels position by position.
            for (pi, qi) in tp.spine().iter().zip(tq.spine().iter()).skip(1) {
                if let (PLabel::Name(a), PLabel::Name(b)) =
                    (&tp.node(*pi).label, &tq.node(*qi).label)
                {
                    if a != b {
                        return true;
                    }
                }
            }
        }
    } else if tq.spine_child_only() && p_min > q_min {
        return true;
    }
    false
}

/// May the result sets of `p` and `q` intersect on some tree? The
/// over-approximating complement of [`disjoint`].
pub fn may_overlap(p: &Path, q: &Path) -> bool {
    !disjoint(p, q)
}

/// Does a homomorphism exist from pattern `q` into pattern `p`?
fn homomorphism_exists(q: &TreePattern, p: &TreePattern) -> bool {
    let reach = p.reachability();
    let emb = embedding_table(q, p, &reach);
    spine_maps(q, p, &reach, &emb)
}

fn label_ok(ql: &PLabel, pl: &PLabel) -> bool {
    match (ql, pl) {
        (PLabel::Root, PLabel::Root) => true,
        (PLabel::Root, _) | (_, PLabel::Root) => false,
        (PLabel::Wild, _) => true,
        (PLabel::Name(a), PLabel::Name(b)) => a == b,
        (PLabel::Name(_), PLabel::Wild) => false,
    }
}

fn constraints_ok(qc: &[Constraint], pc: &[Constraint]) -> bool {
    qc.iter().all(|need| {
        pc.iter()
            .any(|have| have.op.implies(&have.value, need.op, &need.value))
    })
}

/// `emb[qi][pj]` — the q-subtree rooted at `qi` embeds with `qi ↦ pj`.
/// Pattern nodes are created parent-before-child, so iterating `qi`
/// high-to-low processes children first.
fn embedding_table(q: &TreePattern, p: &TreePattern, reach: &[Vec<bool>]) -> Vec<Vec<bool>> {
    let (nq, np) = (q.len(), p.len());
    let mut emb = vec![vec![false; np]; nq];
    for qi in (0..nq).rev() {
        for pj in 0..np {
            let qn = q.node(qi);
            let pn = p.node(pj);
            if !label_ok(&qn.label, &pn.label) || !constraints_ok(&qn.constraints, &pn.constraints)
            {
                continue;
            }
            let all_children_embed = qn.children.iter().all(|&(kind, qc)| {
                (0..np).any(|pc| edge_ok(p, reach, pj, pc, kind) && emb[qc][pc])
            });
            emb[qi][pj] = all_children_embed;
        }
    }
    emb
}

fn edge_ok(p: &TreePattern, reach: &[Vec<bool>], from: usize, to: usize, kind: EdgeKind) -> bool {
    match kind {
        EdgeKind::Child => p
            .node(from)
            .children
            .iter()
            .any(|&(k, c)| k == EdgeKind::Child && c == to),
        EdgeKind::Descendant => reach[from][to],
    }
}

/// Spine DP: the q spine must map onto the p spine, root ↦ root and
/// output ↦ output, with predicate subtrees embedding anywhere.
fn spine_maps(q: &TreePattern, p: &TreePattern, reach: &[Vec<bool>], emb: &[Vec<bool>]) -> bool {
    let qs = q.spine();
    let ps = p.spine();
    let (k, m) = (qs.len(), ps.len());
    // ok[i][j]: spine suffix starting at q position i maps with qs[i] ↦ ps[j]
    // and q output lands on p output.
    let mut ok = vec![vec![false; m]; k];
    let q_edges: Vec<EdgeKind> = q.spine_edges().collect();
    let p_edges: Vec<EdgeKind> = p.spine_edges().collect();

    for i in (0..k).rev() {
        for j in 0..m {
            if !spine_node_ok(q, p, reach, emb, qs[i], ps[j]) {
                continue;
            }
            if i == k - 1 {
                // Output must land on output.
                ok[i][j] = j == m - 1;
                continue;
            }
            ok[i][j] = match q_edges[i] {
                EdgeKind::Child => {
                    j + 1 < m && p_edges[j] == EdgeKind::Child && ok[i + 1][j + 1]
                }
                EdgeKind::Descendant => (j + 1..m).any(|j2| ok[i + 1][j2]),
            };
        }
    }
    ok[0][0]
}

/// A q spine node can sit at a p spine node: labels and constraints agree
/// and every predicate branch embeds somewhere below the image.
fn spine_node_ok(
    q: &TreePattern,
    p: &TreePattern,
    reach: &[Vec<bool>],
    emb: &[Vec<bool>],
    qi: usize,
    pj: usize,
) -> bool {
    let qn = q.node(qi);
    let pn = p.node(pj);
    if !label_ok(&qn.label, &pn.label) || !constraints_ok(&qn.constraints, &pn.constraints) {
        return false;
    }
    let spine_pos = q.spine().iter().position(|&s| s == qi).expect("qi on spine");
    let spine_child = q.spine().get(spine_pos + 1).copied();
    qn.children
        .iter()
        .filter(|&&(_, c)| Some(c) != spine_child)
        .all(|&(kind, qc)| (0..p.len()).any(|pc| edge_ok(p, reach, pj, pc, kind) && emb[qc][pc]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn sub(a: &str, b: &str) -> bool {
        contained_in(&parse(a).unwrap(), &parse(b).unwrap())
    }

    #[test]
    fn paper_redundancy_examples() {
        // Table 3: R4 ⊑ R2, R7 ⊑ R6, R8 ⊑ R6, R3 ⊑ R1.
        assert!(sub("//patient[treatment]/name", "//patient/name"));
        assert!(sub("//regular[med = \"celecoxib\"]", "//regular"));
        assert!(sub("//regular[bill > 1000]", "//regular"));
        assert!(sub("//patient[treatment]", "//patient"));
        assert!(sub("//patient[.//experimental]", "//patient"));
        // And none of the reverse directions hold.
        assert!(!sub("//patient/name", "//patient[treatment]/name"));
        assert!(!sub("//regular", "//regular[med = \"celecoxib\"]"));
        assert!(!sub("//patient", "//patient[treatment]"));
    }

    #[test]
    fn axis_relationships() {
        assert!(sub("/a/b", "//b"));
        assert!(sub("/a/b", "/a//b"));
        assert!(sub("/a//b", "//b"));
        assert!(!sub("//b", "/a/b"));
        assert!(!sub("/a//b", "/a/b"));
        assert!(sub("/a/b/c", "/a//c"));
        assert!(sub("/a/b/c", "//b/c"));
        assert!(!sub("/a/b/c", "//c/b"));
    }

    #[test]
    fn wildcard_relationships() {
        assert!(sub("//a/b", "//*/b"));
        assert!(sub("//a", "//*"));
        assert!(!sub("//*", "//a"));
        assert!(sub("/a/*/c", "/a//c"));
        assert!(!sub("/a//c", "/a/*/c"));
    }

    #[test]
    fn predicate_relationships() {
        assert!(sub("//a[b and c]", "//a[b]"));
        assert!(sub("//a[b and c]", "//a[c]"));
        assert!(!sub("//a[b]", "//a[b and c]"));
        assert!(sub("//a[b[c]]", "//a[b]"));
        assert!(!sub("//a[b]", "//a[b[c]]"));
        assert!(sub("//a[b/c]", "//a[b]"));
        assert!(sub("//a[b/c]", "//a[.//c]"));
        assert!(!sub("//a[.//c]", "//a[b/c]"));
    }

    #[test]
    fn value_constraint_relationships() {
        assert!(sub("//r[b = 5]", "//r[b]"));
        assert!(sub("//r[b > 1000]", "//r[b > 500]"));
        assert!(!sub("//r[b > 500]", "//r[b > 1000]"));
        assert!(sub("//r[b = 7]", "//r[b > 5]"));
        assert!(sub("//r[b = \"x\"]", "//r[b = \"x\"]"));
        assert!(!sub("//r[b = \"x\"]", "//r[b = \"y\"]"));
        assert!(sub("//r[b >= 10]", "//r[b > 9]"));
        assert!(!sub("//r[b >= 10]", "//r[b > 10]"));
    }

    #[test]
    fn equivalence() {
        let a = parse("//patient[treatment]").unwrap();
        let b = parse("//patient[treatment]").unwrap();
        assert!(equivalent(&a, &b));
        let c = parse("//patient[treatment and psn]").unwrap();
        let d = parse("//patient[psn and treatment]").unwrap();
        assert!(equivalent(&c, &d), "conjunction order is irrelevant");
        assert!(!equivalent(&a, &c));
    }

    #[test]
    fn output_position_matters() {
        // Same constraint structure, different output node.
        assert!(!sub("//patient/treatment", "//patient"));
        assert!(!sub("//patient", "//patient/treatment"));
        assert!(sub("//patient/treatment", "//treatment"));
        assert!(sub("//patient/treatment", "//patient[treatment]/treatment"));
        assert!(!sub("//patient[treatment]", "//patient[.//bill]"));
    }

    #[test]
    fn reflexivity_and_transitivity_spot_checks() {
        for s in ["//a", "/a/b[c]", "//a[b > 3]//c[d = \"x\"]"] {
            assert!(sub(s, s), "containment is reflexive on {s}");
        }
        // a ⊑ b and b ⊑ c gives a ⊑ c for these samples.
        assert!(sub("//patient[treatment[regular]]", "//patient[treatment]"));
        assert!(sub("//patient[treatment]", "//patient"));
        assert!(sub("//patient[treatment[regular]]", "//patient"));
    }

    #[test]
    fn disjointness_sound_cases() {
        let d = |a: &str, b: &str| disjoint(&parse(a).unwrap(), &parse(b).unwrap());
        assert!(d("//patient", "//name"), "different output labels");
        assert!(d("/a/b", "/a/b/c"), "different exact depths");
        assert!(d("/a/b", "/a/c"), "conflicting spine labels");
        assert!(d("/a", "//a/a"), "q needs depth 2+, p is exactly depth 1");
        assert!(!d("//patient", "//patient[treatment]"));
        assert!(!d("//a/b", "//b"));
        assert!(!d("//*", "//a"), "wildcard may be anything");
    }

    /// The homomorphism test is *incomplete* on XP(/,//,*,[]) — Miklau &
    /// Suciu's classic witnesses. These tests pin the known behaviour so a
    /// future "fix" that accidentally makes the checker unsound (or a
    /// regression that makes it weaker on the complete sub-fragments)
    /// shows up here.
    #[test]
    fn known_incompleteness_is_stable() {
        // [18]'s canonical example: a//b ⊑ a[.//b[c//d]]//b[c]//d … the
        // simplest standard witness is p = //a/*//b vs q = //a//*/b-ish
        // families. We use the textbook pair:
        //   p = //a[b]/c  and  q = //a/c  — containment HOLDS and the
        //   homomorphism finds it (sanity);
        assert!(sub("//a[b]/c", "//a/c"));
        //   p = //a//*//b ⊑ //a//*//b trivially;
        assert!(sub("//a//*//b", "//a//*//b"));
        // A true containment the homomorphism CANNOT verify:
        //   //a/*/b ∪-free form of "b at depth exactly 2 under a" is
        //   contained in //a//b ("b somewhere under a") — this one the
        //   checker does find:
        assert!(sub("//a/*/b", "//a//b"));
        // …whereas the converse requires case analysis and is false:
        assert!(!sub("//a//b", "//a/*/b"));
        // The classic unverifiable-but-true instance (requires reasoning
        // by cases over intermediate labels):
        //   p = //a[.//b[c]][.//b[d]]  q = //a[.//b]
        // holds and IS found (q is a plain projection)…
        assert!(sub("//a[.//b[c]][.//b[d]]", "//a[.//b]"));
        // …but the genuinely incomplete case — q's descendant edge must
        // split over p's disjunction of shapes — stays conservative:
        //   p = /a[b/c and b/d] ⊑ q = /a[b[c and d]] is FALSE (different
        //   b witnesses), and the checker agrees:
        assert!(!sub("/a[b/c and b/d]", "/a[b[c and d]]"));
        // while q ⊑ p is TRUE (one b with both children witnesses both
        // paths) and the homomorphism finds it:
        assert!(sub("/a[b[c and d]]", "/a[b/c and b/d]"));
    }

    #[test]
    fn containment_implies_overlap() {
        let pairs = [
            ("//patient[treatment]", "//patient"),
            ("/a/b", "//b"),
            ("//r[b > 1000]", "//r"),
        ];
        for (a, b) in pairs {
            let (pa, pb) = (parse(a).unwrap(), parse(b).unwrap());
            assert!(contained_in(&pa, &pb));
            assert!(may_overlap(&pa, &pb), "{a} ⊑ {b} but judged disjoint");
        }
    }
}
