//! Abstract syntax for the paper's XPath fragment.
//!
//! A [`Path`] is a sequence of [`Step`]s, each with an axis (`child` or
//! `descendant`), a node test (a label or `*`) and a conjunction of
//! qualifiers. Paths are *absolute* (access-control rules, user queries,
//! updates) or *relative* (paths inside qualifiers, evaluated from the
//! context node).
//!
//! `Display` renders the abbreviated syntax and round-trips through
//! [`crate::parse`].

use std::fmt;

/// The two axes of the fragment (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `child::` — rendered `/` (or nothing for the first step of a
    /// relative path).
    Child,
    /// `descendant::` — rendered `//` (or `.//` leading a relative path).
    Descendant,
}

/// A node test: an element label from `Σ` or the wildcard `*`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// Match elements with this name.
    Name(String),
    /// Match any element.
    Wildcard,
}

impl NodeTest {
    /// Does this test accept an element named `name`?
    pub fn matches(&self, name: &str) -> bool {
        match self {
            NodeTest::Name(n) => n == name,
            NodeTest::Wildcard => true,
        }
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => f.write_str(n),
            NodeTest::Wildcard => f.write_str("*"),
        }
    }
}

/// Comparison operators usable in value qualifiers. The paper's grammar
/// lists only `p = d`, but its own rule R8 (`//regular[bill > 1000]`) uses
/// an inequality, so the full comparator set is supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Apply the comparison. Operands compare numerically when both parse
    /// as numbers, lexicographically otherwise (only `=`/`!=` are
    /// meaningful for non-numeric strings, but the others stay total).
    pub fn compare(self, lhs: &str, rhs: &str) -> bool {
        if let (Ok(a), Ok(b)) = (lhs.trim().parse::<f64>(), rhs.trim().parse::<f64>()) {
            return match self {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            };
        }
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// Can *no single value* satisfy both `self` with bound `own` and
    /// `other` with bound `other_bound`? Sound under the same numeric
    /// convention as [`CmpOp::implies`] (numeric bounds compare over the
    /// numeric domain); returns `false` whenever unsatisfiability cannot
    /// be proved. Used by the schema-aware disjointness test, which only
    /// applies it to single-occurrence qualifier paths — with repeated
    /// children, exists-semantics could satisfy both constraints via
    /// *different* nodes even when no one value satisfies both.
    /// The complementary operator: satisfied by exactly the values this
    /// one rejects (`>` ↔ `<=`, `=` ↔ `!=`). For any shared bound `d`,
    /// `self` and `self.complement()` contradict each other, which is
    /// what the repair synthesizer exploits to carve one rule's scope
    /// out of another's.
    pub fn complement(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Le => CmpOp::Gt,
        }
    }

    pub fn contradicts(self, own: &str, other: CmpOp, other_bound: &str) -> bool {
        use CmpOp::*;
        match (self, other) {
            (Eq, _) => !other.compare(own, other_bound),
            (_, Eq) => !self.compare(other_bound, own),
            (Ne, _) | (_, Ne) => false,
            _ => {
                let (a, b) = match (
                    own.trim().parse::<f64>(),
                    other_bound.trim().parse::<f64>(),
                ) {
                    (Ok(a), Ok(b)) => (a, b),
                    _ => return false,
                };
                // Opposite-direction numeric bounds: the interval they
                // would jointly admit is empty.
                match (self, other) {
                    (Gt, Lt) | (Gt, Le) | (Ge, Lt) => b <= a,
                    (Ge, Le) => b < a,
                    (Lt, Gt) | (Le, Gt) | (Lt, Ge) => a <= b,
                    (Le, Ge) => a < b,
                    _ => false, // same-direction bounds always overlap
                }
            }
        }
    }

    /// Does satisfying `self` with bound `own` imply satisfying `other`
    /// with bound `other_bound`? Sound (never claims implication that does
    /// not hold); used by the containment test. Numeric bounds only; for
    /// non-numeric bounds only syntactic identity implies.
    pub fn implies(self, own: &str, other: CmpOp, other_bound: &str) -> bool {
        if self == other && own == other_bound {
            return true;
        }
        let (a, b) = match (own.trim().parse::<f64>(), other_bound.trim().parse::<f64>()) {
            (Ok(a), Ok(b)) => (a, b),
            _ => return false,
        };
        use CmpOp::*;
        match (self, other) {
            (Eq, _) => other.compare(own, other_bound),
            (Gt, Gt) => a >= b,
            (Gt, Ge) => a >= b,
            (Ge, Ge) => a >= b,
            (Ge, Gt) => a > b,
            (Lt, Lt) => a <= b,
            (Lt, Le) => a <= b,
            (Le, Le) => a <= b,
            (Le, Lt) => a < b,
            (Gt, Ne) => a >= b,
            (Ge, Ne) => a > b,
            (Lt, Ne) => a <= b,
            (Le, Ne) => a < b,
            _ => false,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A qualifier (`[...]` predicate body).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Qualifier {
    /// `p` — the relative path has a non-empty result from the context
    /// node. `Exists(Path::self_path())` is the trivial `[.]`.
    Exists(Path),
    /// `p op d` — some node reached by `p` has a string value satisfying
    /// the comparison with constant `d`.
    Cmp(Path, CmpOp, String),
    /// `q and q …` — conjunction.
    And(Vec<Qualifier>),
}

impl fmt::Display for Qualifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Qualifier::Exists(p) => write!(f, "{p}"),
            Qualifier::Cmp(p, op, d) => {
                if d.trim().parse::<f64>().is_ok() {
                    write!(f, "{p} {op} {d}")
                } else {
                    write!(f, "{p} {op} \"{d}\"")
                }
            }
            Qualifier::And(qs) => {
                let mut first = true;
                for q in qs {
                    if !first {
                        f.write_str(" and ")?;
                    }
                    first = false;
                    write!(f, "{q}")?;
                }
                Ok(())
            }
        }
    }
}

/// One location step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Step {
    /// The axis relating this step to the previous context.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Conjoined qualifiers (all must hold).
    pub predicates: Vec<Qualifier>,
}

impl Step {
    /// A step with no predicates.
    pub fn new(axis: Axis, test: NodeTest) -> Self {
        Step { axis, test, predicates: Vec::new() }
    }

    /// Child step to a named element.
    pub fn child(name: impl Into<String>) -> Self {
        Step::new(Axis::Child, NodeTest::Name(name.into()))
    }

    /// Descendant step to a named element.
    pub fn descendant(name: impl Into<String>) -> Self {
        Step::new(Axis::Descendant, NodeTest::Name(name.into()))
    }

    /// Attach a predicate (builder style).
    pub fn with_predicate(mut self, q: Qualifier) -> Self {
        self.predicates.push(q);
        self
    }
}

/// A path expression: absolute (`/p`, `//p`) or relative (evaluated from a
/// context node inside a qualifier).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    /// True for absolute paths (starting at the document root).
    pub absolute: bool,
    /// The location steps. May be empty only for the relative self path
    /// (`.`).
    pub steps: Vec<Step>,
}

impl Path {
    /// An absolute path from the given steps.
    pub fn absolute(steps: Vec<Step>) -> Self {
        Path { absolute: true, steps }
    }

    /// A relative path from the given steps.
    pub fn relative(steps: Vec<Step>) -> Self {
        Path { absolute: false, steps }
    }

    /// The relative self path `.`.
    pub fn self_path() -> Self {
        Path { absolute: false, steps: Vec::new() }
    }

    /// True if this is the relative self path.
    pub fn is_self(&self) -> bool {
        !self.absolute && self.steps.is_empty()
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the path has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The last step, if any.
    pub fn last_step(&self) -> Option<&Step> {
        self.steps.last()
    }

    /// True if no step (at any nesting depth) uses a predicate.
    pub fn is_predicate_free(&self) -> bool {
        self.steps.iter().all(|s| s.predicates.is_empty())
    }

    /// True if any step (at any nesting depth) uses the descendant axis.
    pub fn uses_descendant(&self) -> bool {
        fn qual_uses(q: &Qualifier) -> bool {
            match q {
                Qualifier::Exists(p) | Qualifier::Cmp(p, _, _) => p.uses_descendant(),
                Qualifier::And(qs) => qs.iter().any(qual_uses),
            }
        }
        self.steps.iter().any(|s| {
            s.axis == Axis::Descendant || s.predicates.iter().any(qual_uses)
        })
    }

    /// Append a step (builder style).
    pub fn then(mut self, step: Step) -> Self {
        self.steps.push(step);
        self
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_self() {
            return f.write_str(".");
        }
        for (i, step) in self.steps.iter().enumerate() {
            let sep = match (i, self.absolute, step.axis) {
                (0, false, Axis::Child) => "",
                (0, false, Axis::Descendant) => ".//",
                (_, _, Axis::Child) => "/",
                (_, _, Axis::Descendant) => "//",
            };
            f.write_str(sep)?;
            write!(f, "{}", step.test)?;
            for p in &step.predicates {
                write!(f, "[{p}]")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_absolute_paths() {
        let p = Path::absolute(vec![Step::descendant("patient"), Step::child("name")]);
        assert_eq!(p.to_string(), "//patient/name");
        let p = Path::absolute(vec![Step::child("hospital"), Step::child("dept")]);
        assert_eq!(p.to_string(), "/hospital/dept");
    }

    #[test]
    fn display_relative_and_predicates() {
        let rel = Path::relative(vec![Step::descendant("experimental")]);
        assert_eq!(rel.to_string(), ".//experimental");
        let p = Path::absolute(vec![Step::descendant("patient")
            .with_predicate(Qualifier::Exists(Path::relative(vec![Step::child("treatment")])))]);
        assert_eq!(p.to_string(), "//patient[treatment]");
        let p = Path::absolute(vec![Step::descendant("regular").with_predicate(
            Qualifier::Cmp(
                Path::relative(vec![Step::child("med")]),
                CmpOp::Eq,
                "celecoxib".into(),
            ),
        )]);
        assert_eq!(p.to_string(), "//regular[med = \"celecoxib\"]");
    }

    #[test]
    fn display_numeric_literal_unquoted() {
        let p = Path::absolute(vec![Step::descendant("regular").with_predicate(
            Qualifier::Cmp(Path::relative(vec![Step::child("bill")]), CmpOp::Gt, "1000".into()),
        )]);
        assert_eq!(p.to_string(), "//regular[bill > 1000]");
    }

    #[test]
    fn cmp_numeric_and_string() {
        assert!(CmpOp::Gt.compare("1600", "1000"));
        assert!(!CmpOp::Gt.compare("700", "1000"));
        assert!(CmpOp::Eq.compare("celecoxib", "celecoxib"));
        assert!(CmpOp::Ne.compare("a", "b"));
        assert!(CmpOp::Eq.compare(" 10 ", "10.0"), "numeric equality after trim");
    }

    #[test]
    fn cmp_implication() {
        use CmpOp::*;
        assert!(Gt.implies("1000", Gt, "500"));
        assert!(!Gt.implies("500", Gt, "1000"));
        assert!(Gt.implies("1000", Ge, "1000"));
        assert!(Ge.implies("1000", Gt, "999"));
        assert!(!Ge.implies("1000", Gt, "1000"));
        assert!(Lt.implies("5", Le, "5"));
        assert!(Eq.implies("7", Gt, "5"));
        assert!(Eq.implies("x", Eq, "x"));
        assert!(!Eq.implies("x", Eq, "y"));
        assert!(Gt.implies("10", Ne, "10"));
        assert!(!Gt.implies("10", Ne, "11"));
    }

    #[test]
    fn cmp_contradiction() {
        use CmpOp::*;
        // Opposite-direction numeric bounds with an empty joint interval.
        assert!(Gt.contradicts("1000", Le, "1000"));
        assert!(Le.contradicts("1000", Gt, "1000"));
        assert!(Gt.contradicts("1000", Lt, "500"));
        assert!(Ge.contradicts("1000", Le, "999"));
        assert!(!Ge.contradicts("1000", Le, "1000"), "1000 satisfies both");
        assert!(!Gt.contradicts("500", Le, "1000"), "interval (500,1000]");
        // Same-direction bounds never contradict.
        assert!(!Gt.contradicts("500", Gt, "1000"));
        assert!(!Le.contradicts("5", Lt, "3"));
        // Equality against anything it fails.
        assert!(Eq.contradicts("7", Gt, "10"));
        assert!(Eq.contradicts("a", Eq, "b"));
        assert!(!Eq.contradicts("7", Ne, "10"));
        assert!(Ne.contradicts("x", Eq, "x"));
        // Ne against inequalities proves nothing.
        assert!(!Ne.contradicts("10", Gt, "10"));
        // Non-numeric bounds on ordered ops prove nothing.
        assert!(!Gt.contradicts("abc", Lt, "abb"));
    }

    #[test]
    fn uses_descendant_looks_into_predicates() {
        let p = Path::absolute(vec![Step::child("a").with_predicate(Qualifier::Exists(
            Path::relative(vec![Step::descendant("b")]),
        ))]);
        assert!(p.uses_descendant());
        let p = Path::absolute(vec![Step::child("a")]);
        assert!(!p.uses_descendant());
    }

    #[test]
    fn self_path_display() {
        assert_eq!(Path::self_path().to_string(), ".");
        assert!(Path::self_path().is_self());
    }
}
