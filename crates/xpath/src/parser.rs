//! Recursive-descent parser for the abbreviated syntax of the fragment.
//!
//! Accepted forms (examples from the paper's Table 1):
//!
//! * `//patient`, `/hospital/dept`, `//patient/name`
//! * `//patient[treatment]`, `//patient[.//experimental]`
//! * `//regular[med = "celecoxib"]`, `//regular[bill > 1000]`
//! * conjunctions: `//a[b and c/d]`, nesting: `//a[b[c]]`

use crate::ast::{Axis, CmpOp, NodeTest, Path, Qualifier, Step};
use crate::error::{Error, Result};

/// Parse an XPath expression. Absolute expressions start with `/` or `//`;
/// anything else parses as a relative path (useful for tests and for the
/// qualifier sub-language).
pub fn parse(input: &str) -> Result<Path> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let path = p.parse_path()?;
    p.skip_ws();
    if p.pos != input.len() {
        return Err(p.err("trailing characters after path"));
    }
    Ok(path)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> Error {
        Error::parse(self.pos, message)
    }

    fn peek(&self) -> Option<u8> {
        self.input.as_bytes().get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn parse_path(&mut self) -> Result<Path> {
        if self.starts_with("//") {
            self.bump(2);
            let steps = self.parse_steps(Axis::Descendant)?;
            Ok(Path::absolute(steps))
        } else if self.starts_with("/") {
            self.bump(1);
            let steps = self.parse_steps(Axis::Child)?;
            Ok(Path::absolute(steps))
        } else if self.starts_with(".") {
            self.bump(1);
            if self.starts_with("//") {
                self.bump(2);
                let steps = self.parse_steps(Axis::Descendant)?;
                Ok(Path::relative(steps))
            } else if self.starts_with("/") {
                self.bump(1);
                let steps = self.parse_steps(Axis::Child)?;
                Ok(Path::relative(steps))
            } else {
                Ok(Path::self_path())
            }
        } else {
            let steps = self.parse_steps(Axis::Child)?;
            Ok(Path::relative(steps))
        }
    }

    fn parse_steps(&mut self, first_axis: Axis) -> Result<Vec<Step>> {
        let mut steps = vec![self.parse_step(first_axis)?];
        loop {
            if self.starts_with("//") {
                self.bump(2);
                steps.push(self.parse_step(Axis::Descendant)?);
            } else if self.starts_with("/") {
                self.bump(1);
                steps.push(self.parse_step(Axis::Child)?);
            } else {
                return Ok(steps);
            }
        }
    }

    fn parse_step(&mut self, axis: Axis) -> Result<Step> {
        let test = if self.starts_with("*") {
            self.bump(1);
            NodeTest::Wildcard
        } else {
            NodeTest::Name(self.parse_name()?.to_string())
        };
        let mut step = Step::new(axis, test);
        loop {
            self.skip_ws_in_predicates();
            if !self.starts_with("[") {
                return Ok(step);
            }
            self.bump(1);
            let q = self.parse_qualifier()?;
            self.skip_ws();
            if !self.starts_with("]") {
                return Err(self.err("expected `]`"));
            }
            self.bump(1);
            step.predicates.push(q);
        }
    }

    /// Whitespace is insignificant before `[` only when a predicate indeed
    /// follows; peek without consuming.
    fn skip_ws_in_predicates(&mut self) {
        let save = self.pos;
        self.skip_ws();
        if !self.starts_with("[") {
            self.pos = save;
        }
    }

    fn parse_name(&mut self) -> Result<&'a str> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.');
            // `.` participates in names only when not starting one and not
            // followed by `/` (so `a.b` is a name but `.//x` is an axis).
            if !ok {
                break;
            }
            if b == b'.' && (self.pos == start || self.input[self.pos..].starts_with(".//")) {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name or `*`"));
        }
        Ok(&self.input[start..self.pos])
    }

    fn parse_qualifier(&mut self) -> Result<Qualifier> {
        let mut terms = vec![self.parse_term()?];
        loop {
            let save = self.pos;
            self.skip_ws();
            if self.starts_with("and")
                && !self
                    .input
                    .as_bytes()
                    .get(self.pos + 3)
                    .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
            {
                self.bump(3);
                self.skip_ws();
                terms.push(self.parse_term()?);
            } else {
                self.pos = save;
                break;
            }
        }
        if terms.len() == 1 {
            Ok(terms.pop().expect("one term"))
        } else {
            Ok(Qualifier::And(terms))
        }
    }

    fn parse_term(&mut self) -> Result<Qualifier> {
        self.skip_ws();
        let path = self.parse_path()?;
        if path.absolute {
            return Err(self.err("absolute paths are not allowed inside qualifiers"));
        }
        let save = self.pos;
        self.skip_ws();
        let op = if self.starts_with("!=") {
            self.bump(2);
            Some(CmpOp::Ne)
        } else if self.starts_with("<=") {
            self.bump(2);
            Some(CmpOp::Le)
        } else if self.starts_with(">=") {
            self.bump(2);
            Some(CmpOp::Ge)
        } else if self.starts_with("=") {
            self.bump(1);
            Some(CmpOp::Eq)
        } else if self.starts_with("<") {
            self.bump(1);
            Some(CmpOp::Lt)
        } else if self.starts_with(">") {
            self.bump(1);
            Some(CmpOp::Gt)
        } else {
            None
        };
        match op {
            None => {
                self.pos = save;
                Ok(Qualifier::Exists(path))
            }
            Some(op) => {
                self.skip_ws();
                let value = self.parse_literal()?;
                Ok(Qualifier::Cmp(path, op, value))
            }
        }
    }

    fn parse_literal(&mut self) -> Result<String> {
        match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump(1);
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == q {
                        let s = self.input[start..self.pos].to_string();
                        self.bump(1);
                        return Ok(s);
                    }
                    self.pos += 1;
                }
                Err(self.err("unterminated string literal"))
            }
            Some(b) if b.is_ascii_digit() || b == b'-' => {
                let start = self.pos;
                if b == b'-' {
                    self.bump(1);
                }
                while let Some(b) = self.peek() {
                    if b.is_ascii_digit() || b == b'.' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let s = &self.input[start..self.pos];
                if s.parse::<f64>().is_err() {
                    return Err(self.err(format!("invalid numeric literal `{s}`")));
                }
                Ok(s.to_string())
            }
            _ => Err(self.err("expected a string or numeric literal")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) {
        let p = parse(src).unwrap();
        assert_eq!(p.to_string(), src, "display must round-trip");
        let again = parse(&p.to_string()).unwrap();
        assert_eq!(p, again, "reparse must be stable");
    }

    #[test]
    fn parses_paper_rules() {
        // Every resource expression of Table 1.
        roundtrip("//patient");
        roundtrip("//patient/name");
        roundtrip("//patient[treatment]");
        roundtrip("//patient[treatment]/name");
        roundtrip("//patient[.//experimental]");
        roundtrip("//regular");
        roundtrip("//regular[med = \"celecoxib\"]");
        roundtrip("//regular[bill > 1000]");
    }

    #[test]
    fn parses_absolute_child_paths() {
        let p = parse("/hospital/dept/patients").unwrap();
        assert!(p.absolute);
        assert_eq!(p.steps.len(), 3);
        assert!(p.steps.iter().all(|s| s.axis == Axis::Child));
        roundtrip("/hospital/dept/patients");
    }

    #[test]
    fn parses_mixed_axes_and_wildcards() {
        let p = parse("/a//b/*//c").unwrap();
        assert_eq!(p.steps[0].axis, Axis::Child);
        assert_eq!(p.steps[1].axis, Axis::Descendant);
        assert_eq!(p.steps[2].test, NodeTest::Wildcard);
        assert_eq!(p.steps[3].axis, Axis::Descendant);
        roundtrip("/a//b/*//c");
    }

    #[test]
    fn parses_conjunction_and_nesting() {
        let p = parse("//a[b and c/d]").unwrap();
        match &p.steps[0].predicates[0] {
            Qualifier::And(qs) => assert_eq!(qs.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
        roundtrip("//a[b and c/d]");
        roundtrip("//a[b[c]]");
        roundtrip("//a[b][c]");
    }

    #[test]
    fn parses_relative_predicate_paths() {
        let p = parse("//patient[.//experimental]").unwrap();
        match &p.steps[0].predicates[0] {
            Qualifier::Exists(rel) => {
                assert!(!rel.absolute);
                assert_eq!(rel.steps[0].axis, Axis::Descendant);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_all_comparison_operators() {
        for (src, op) in [
            ("//a[b = 1]", CmpOp::Eq),
            ("//a[b != 1]", CmpOp::Ne),
            ("//a[b < 1]", CmpOp::Lt),
            ("//a[b <= 1]", CmpOp::Le),
            ("//a[b > 1]", CmpOp::Gt),
            ("//a[b >= 1]", CmpOp::Ge),
        ] {
            let p = parse(src).unwrap();
            match &p.steps[0].predicates[0] {
                Qualifier::Cmp(_, got, v) => {
                    assert_eq!(*got, op);
                    assert_eq!(v, "1");
                }
                other => panic!("unexpected {other:?}"),
            }
            roundtrip(src);
        }
    }

    #[test]
    fn parses_self_comparison() {
        let p = parse("//bill[. > 1000]").unwrap();
        match &p.steps[0].predicates[0] {
            Qualifier::Cmp(rel, CmpOp::Gt, v) => {
                assert!(rel.is_self());
                assert_eq!(v, "1000");
            }
            other => panic!("unexpected {other:?}"),
        }
        roundtrip("//bill[. > 1000]");
    }

    #[test]
    fn negative_numbers_and_quotes() {
        roundtrip("//a[b = -3.5]");
        let p = parse("//a[b = 'single']").unwrap();
        assert_eq!(p.to_string(), "//a[b = \"single\"]");
    }

    #[test]
    fn name_with_and_prefix_is_not_conjunction() {
        // `android` must not be split into `and` + `roid`.
        let p = parse("//a[android]").unwrap();
        match &p.steps[0].predicates[0] {
            Qualifier::Exists(rel) => assert_eq!(rel.to_string(), "android"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_paths() {
        assert!(parse("").is_err());
        assert!(parse("//").is_err());
        assert!(parse("//a[").is_err());
        assert!(parse("//a[]").is_err());
        assert!(parse("//a]").is_err());
        assert!(parse("//a[b=]").is_err());
        assert!(parse("//a[b='x]").is_err());
        assert!(parse("//a[/b]").is_err(), "absolute path in qualifier");
        assert!(parse("//a b").is_err(), "garbage after path");
        assert!(parse("//a[b or c]").is_err(), "`or` is outside the fragment");
    }
}
