//! # xac-xpath
//!
//! The XPath machinery of the **xmlac** system, implementing the fragment
//! of §2.2 of *"Controlling Access to XML Documents over XML Native and
//! Relational Databases"* (Koromilas et al., SDM 2009):
//!
//! ```text
//! Paths       p ::= axis::ntst | p[q] | p/p
//! Qualifiers  q ::= p | q and q | p = d
//! Axes     axis ::= child | descendant
//! Node test ntst ::= l | *
//! ```
//!
//! (extended, like the paper's own rules, with the comparison operators
//! `!=`, `<`, `<=`, `>`, `>=` that appear in rule R8 of the motivating
//! example).
//!
//! The crate provides:
//!
//! * [`ast`] — the abstract syntax ([`Path`], [`Step`], [`Qualifier`]) with
//!   a round-tripping `Display` implementation in abbreviated syntax;
//! * [`parser`] — a hand-written recursive-descent parser;
//! * [`eval`] — set-semantics evaluation `[[p]](T)` over [`xac_xml::Document`]
//!   trees;
//! * [`pattern`] — the tree-pattern view of a path used by static analysis;
//! * [`containment`] — the canonical-homomorphism containment test of
//!   Miklau & Suciu (`p ⊑ q`), sound for the full fragment and exact on
//!   XP{/,//,[]}, plus equivalence and a sound disjointness test;
//! * [`expand`] — the §5.3 rule expansion: predicate hoisting plus the
//!   schema-guided rewrite of descendant axes inside predicates into
//!   finite sets of child paths;
//! * [`oracle`] — a hash-consing, memoizing façade over the containment
//!   tests, so static analysis runs each homomorphism check at most once
//!   per ordered path pair.
//!
//! ```
//! use xac_xpath::{parse, eval};
//! use xac_xml::Document;
//!
//! let doc = Document::parse_str("<a><b><c/></b><b/></a>").unwrap();
//! let p = parse("//b[c]").unwrap();
//! assert_eq!(eval(&doc, &p).len(), 1);
//!
//! let broad = parse("//b").unwrap();
//! assert!(p.contained_in(&broad));
//! ```

pub mod ast;
pub mod containment;
pub mod error;
pub mod eval;
pub mod expand;
pub mod oracle;
pub mod parser;
pub mod pattern;
pub mod specialize;

pub use ast::{Axis, CmpOp, NodeTest, Path, Qualifier, Step};
pub use containment::{contained_in, disjoint, equivalent};
pub use error::{Error, Result};
pub use eval::{eval, eval_from};
pub use expand::expand;
pub use oracle::{ContainmentOracle, OracleStats};
pub use parser::parse;
pub use pattern::TreePattern;
pub use specialize::{contained_in_with_schema, disjoint_with_schema, schema_variants};

impl Path {
    /// `self ⊑ other`: every tree maps `self`'s result set inside `other`'s.
    pub fn contained_in(&self, other: &Path) -> bool {
        containment::contained_in(self, other)
    }

    /// `self ≡ other`: containment in both directions.
    pub fn equivalent_to(&self, other: &Path) -> bool {
        containment::equivalent(self, other)
    }
}
