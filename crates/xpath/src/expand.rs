//! Rule expansion for re-annotation triggering (paper §5.3).
//!
//! When an update `u` (an XPath designating inserted or deleted nodes)
//! arrives, the **Trigger** algorithm must find every rule whose scope may
//! change. A rule's resource path mentions nodes beyond its output — its
//! predicates test for the existence (or value) of other nodes — so each
//! rule is first *expanded* into the set of linear paths to every node it
//! touches:
//!
//! ```text
//! //patient[treatment]        →  { //patient, //patient/treatment }
//! //patient[.//experimental]  →  { //patient,
//!                                  //patient/treatment,
//!                                  //patient/treatment/experimental }
//! ```
//!
//! The second example shows the schema-guided rewrite: a descendant axis
//! inside a predicate is replaced by the finite set of child-axis label
//! paths the (non-recursive) schema allows — without it, an update like
//! `//treatment` would fail to trigger the rule even though deleting
//! treatments removes the `experimental` descendants the rule tests for.
//!
//! Expansions are predicate-free by construction, and every *prefix* of an
//! expansion is also emitted. Prefix closure makes triggering robust for
//! subtree deletions (deleting `//treatment` must be seen to affect
//! `//patient/treatment/experimental` through its `//patient/treatment`
//! prefix) at the cost of occasionally re-annotating more than strictly
//! necessary — a sound over-approximation.

use crate::ast::{Axis, NodeTest, Path, Qualifier, Step};
use xac_xml::Schema;

/// Expand an absolute path into the set of predicate-free linear paths to
/// every node the path constrains. See the module docs.
pub fn expand(path: &Path, schema: Option<&Schema>) -> Vec<Path> {
    assert!(path.absolute, "expansion applies to absolute rule resources");
    let mut out: Vec<Path> = Vec::new();
    let mut prefix: Vec<Step> = Vec::new();
    for step in &path.steps {
        prefix.push(Step::new(step.axis, step.test.clone()));
        push_unique(&mut out, Path::absolute(prefix.clone()));
        let anchor = anchor_of(&step.test);
        for q in &step.predicates {
            expand_qualifier(&mut prefix, anchor, q, schema, &mut out);
        }
    }
    out
}

fn anchor_of(test: &NodeTest) -> Option<&str> {
    match test {
        NodeTest::Name(n) => Some(n),
        NodeTest::Wildcard => None,
    }
}

fn push_unique(out: &mut Vec<Path>, path: Path) {
    if !out.contains(&path) {
        out.push(path);
    }
}

fn expand_qualifier(
    prefix: &mut Vec<Step>,
    anchor: Option<&str>,
    q: &Qualifier,
    schema: Option<&Schema>,
    out: &mut Vec<Path>,
) {
    match q {
        Qualifier::Exists(rel) | Qualifier::Cmp(rel, _, _) => {
            expand_relative(prefix, anchor, &rel.steps, 0, schema, out);
        }
        Qualifier::And(qs) => {
            for q in qs {
                expand_qualifier(prefix, anchor, q, schema, out);
            }
        }
    }
}

fn expand_relative(
    prefix: &mut Vec<Step>,
    anchor: Option<&str>,
    steps: &[Step],
    i: usize,
    schema: Option<&Schema>,
    out: &mut Vec<Path>,
) {
    let Some(step) = steps.get(i) else {
        return;
    };
    match step.axis {
        Axis::Child => {
            prefix.push(Step::new(Axis::Child, step.test.clone()));
            push_unique(out, Path::absolute(prefix.clone()));
            let next_anchor = anchor_of(&step.test);
            for q in &step.predicates {
                expand_qualifier(prefix, next_anchor, q, schema, out);
            }
            expand_relative(prefix, next_anchor, steps, i + 1, schema, out);
            prefix.pop();
        }
        Axis::Descendant => {
            let rewrites = schema_paths(anchor, &step.test, schema);
            match rewrites {
                Some(label_paths) if !label_paths.is_empty() => {
                    for labels in label_paths {
                        let pushed = labels.len();
                        for label in &labels {
                            prefix.push(Step::child(label.clone()));
                            push_unique(out, Path::absolute(prefix.clone()));
                        }
                        let next_anchor = labels.last().map(|s| s.as_str());
                        for q in &step.predicates {
                            expand_qualifier(prefix, next_anchor, q, schema, out);
                        }
                        expand_relative(prefix, next_anchor, steps, i + 1, schema, out);
                        for _ in 0..pushed {
                            prefix.pop();
                        }
                    }
                }
                _ => {
                    // No schema, recursive schema, unknown anchor, or a
                    // wildcard test: keep the descendant step verbatim.
                    prefix.push(Step::new(Axis::Descendant, step.test.clone()));
                    push_unique(out, Path::absolute(prefix.clone()));
                    let next_anchor = anchor_of(&step.test);
                    for q in &step.predicates {
                        expand_qualifier(prefix, next_anchor, q, schema, out);
                    }
                    expand_relative(prefix, next_anchor, steps, i + 1, schema, out);
                    prefix.pop();
                }
            }
        }
    }
}

/// The schema-derived child-axis label paths from `anchor` down to nodes
/// matched by `test`. `None` when the rewrite is not applicable.
fn schema_paths(
    anchor: Option<&str>,
    test: &NodeTest,
    schema: Option<&Schema>,
) -> Option<Vec<Vec<String>>> {
    let anchor = anchor?;
    let schema = schema?;
    let NodeTest::Name(target) = test else {
        return None;
    };
    if !schema.contains(anchor) || !schema.contains(target) {
        return None;
    }
    schema.paths_between(anchor, target).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use xac_xml::{Particle, Schema};

    fn hospital_schema() -> Schema {
        use xac_xml::Occurs::*;
        Schema::builder("hospital")
            .sequence("hospital", vec![Particle::new("dept", Plus)])
            .sequence(
                "dept",
                vec![Particle::new("patients", One), Particle::new("staffinfo", One)],
            )
            .sequence("patients", vec![Particle::new("patient", Star)])
            .sequence("staffinfo", vec![Particle::new("staff", Star)])
            .sequence(
                "patient",
                vec![
                    Particle::new("psn", One),
                    Particle::new("name", One),
                    Particle::new("treatment", Optional),
                ],
            )
            .choice(
                "treatment",
                vec![
                    Particle::new("regular", Optional),
                    Particle::new("experimental", Optional),
                ],
            )
            .sequence("regular", vec![Particle::new("med", One), Particle::new("bill", One)])
            .sequence(
                "experimental",
                vec![Particle::new("test", One), Particle::new("bill", One)],
            )
            .choice("staff", vec![Particle::new("nurse", One), Particle::new("doctor", One)])
            .sequence(
                "nurse",
                vec![
                    Particle::new("sid", One),
                    Particle::new("name", One),
                    Particle::new("phone", One),
                ],
            )
            .sequence(
                "doctor",
                vec![
                    Particle::new("sid", One),
                    Particle::new("name", One),
                    Particle::new("phone", One),
                ],
            )
            .text(&["psn", "name", "med", "bill", "test", "sid", "phone"])
            .build()
            .unwrap()
    }

    fn strings(paths: &[Path]) -> Vec<String> {
        paths.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn plain_path_expands_to_prefixes() {
        let x = expand(&parse("//patient/name").unwrap(), None);
        assert_eq!(strings(&x), vec!["//patient", "//patient/name"]);
    }

    #[test]
    fn paper_example_r3() {
        // //patient[treatment] → //patient, //patient/treatment (Fig. 8 text).
        let x = expand(&parse("//patient[treatment]").unwrap(), None);
        assert_eq!(strings(&x), vec!["//patient", "//patient/treatment"]);
    }

    #[test]
    fn paper_example_r5_with_schema() {
        // //patient[.//experimental] → the descendant axis inside the
        // predicate is replaced using the schema (§5.3's second example).
        let s = hospital_schema();
        let x = expand(&parse("//patient[.//experimental]").unwrap(), Some(&s));
        assert_eq!(
            strings(&x),
            vec![
                "//patient",
                "//patient/treatment",
                "//patient/treatment/experimental",
            ]
        );
    }

    #[test]
    fn without_schema_descendant_kept_verbatim() {
        let x = expand(&parse("//patient[.//experimental]").unwrap(), None);
        assert_eq!(strings(&x), vec!["//patient", "//patient//experimental"]);
    }

    #[test]
    fn value_predicates_expand_structurally() {
        let x = expand(&parse("//regular[med = \"celecoxib\"]").unwrap(), None);
        assert_eq!(strings(&x), vec!["//regular", "//regular/med"]);
        let x = expand(&parse("//regular[bill > 1000]").unwrap(), None);
        assert_eq!(strings(&x), vec!["//regular", "//regular/bill"]);
    }

    #[test]
    fn conjunction_and_nesting() {
        let x = expand(&parse("//a[b and c/d]").unwrap(), None);
        assert_eq!(strings(&x), vec!["//a", "//a/b", "//a/c", "//a/c/d"]);
        let x = expand(&parse("//a[b[c]]").unwrap(), None);
        assert_eq!(strings(&x), vec!["//a", "//a/b", "//a/b/c"]);
    }

    #[test]
    fn multiple_schema_paths_fan_out() {
        // `bill` lives under both regular and experimental treatments.
        let s = hospital_schema();
        let x = expand(&parse("//patient[.//bill]").unwrap(), Some(&s));
        let got = strings(&x);
        assert!(got.contains(&"//patient/treatment/regular/bill".to_string()));
        assert!(got.contains(&"//patient/treatment/experimental/bill".to_string()));
        assert!(got.contains(&"//patient/treatment".to_string()), "prefixes included");
    }

    #[test]
    fn descendant_on_spine_not_rewritten() {
        let s = hospital_schema();
        let x = expand(&parse("//patient//bill").unwrap(), Some(&s));
        assert_eq!(strings(&x), vec!["//patient", "//patient//bill"]);
    }

    #[test]
    fn wildcard_anchor_blocks_schema_rewrite() {
        let s = hospital_schema();
        let x = expand(&parse("//*[.//bill]").unwrap(), Some(&s));
        assert_eq!(strings(&x), vec!["//*", "//*//bill"]);
    }

    #[test]
    fn unknown_labels_fall_back() {
        let s = hospital_schema();
        let x = expand(&parse("//martian[.//bill]").unwrap(), Some(&s));
        assert_eq!(strings(&x), vec!["//martian", "//martian//bill"]);
    }

    #[test]
    fn duplicates_are_merged() {
        let x = expand(&parse("//a[b and b]").unwrap(), None);
        assert_eq!(strings(&x), vec!["//a", "//a/b"]);
    }

    #[test]
    fn expansions_are_predicate_free() {
        let s = hospital_schema();
        for src in [
            "//patient[treatment]/name",
            "//patient[.//experimental]",
            "//regular[med = \"x\" and bill > 9]",
        ] {
            for p in expand(&parse(src).unwrap(), Some(&s)) {
                assert!(p.is_predicate_free(), "{p} from {src} has predicates");
            }
        }
    }
}
