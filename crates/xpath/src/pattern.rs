//! Tree-pattern view of a path expression.
//!
//! Static analysis (containment, disjointness) works on *tree patterns*:
//! rooted trees whose nodes carry a label (`Σ`, `*`, or the virtual root)
//! and optional value constraints, and whose edges are either `child` or
//! `descendant` edges. The *spine* is the root-to-output path; predicate
//! subtrees branch off it. This is the canonical representation of
//! Miklau & Suciu's XP(`/`, `//`, `*`, `\[\]`) fragment \[18\], extended with
//! value-comparison constraints.

use crate::ast::{Axis, CmpOp, Path, Qualifier};

/// Pattern node label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PLabel {
    /// The virtual node above the document root (shared origin of all
    /// absolute paths).
    Root,
    /// Wildcard `*` — any element.
    Wild,
    /// A specific element name.
    Name(String),
}

/// Pattern edge kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Must map to a parent/child pair.
    Child,
    /// Must map to an ancestor/descendant pair (distance ≥ 1).
    Descendant,
}

impl From<Axis> for EdgeKind {
    fn from(a: Axis) -> Self {
        match a {
            Axis::Child => EdgeKind::Child,
            Axis::Descendant => EdgeKind::Descendant,
        }
    }
}

/// A value constraint attached to a pattern node (`[p op d]` lands on the
/// node reached by `p`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// The comparison operator.
    pub op: CmpOp,
    /// The constant operand.
    pub value: String,
}

/// One node of a tree pattern.
#[derive(Debug, Clone)]
pub struct PNode {
    /// Node label.
    pub label: PLabel,
    /// Value constraints that must all hold at the matched element.
    pub constraints: Vec<Constraint>,
    /// Outgoing edges `(kind, child index)`.
    pub children: Vec<(EdgeKind, usize)>,
}

/// A tree pattern with a distinguished spine (root → output path).
#[derive(Debug, Clone)]
pub struct TreePattern {
    nodes: Vec<PNode>,
    /// Indices of the spine nodes; `spine[0]` is the virtual root and
    /// `spine[last]` the output node.
    spine: Vec<usize>,
}

impl TreePattern {
    /// Build the pattern of an absolute path.
    pub fn from_path(path: &Path) -> TreePattern {
        assert!(path.absolute, "tree patterns are built from absolute paths");
        let mut tp = TreePattern {
            nodes: vec![PNode {
                label: PLabel::Root,
                constraints: Vec::new(),
                children: Vec::new(),
            }],
            spine: vec![0],
        };
        let mut at = 0usize;
        for step in &path.steps {
            let label = match &step.test {
                crate::ast::NodeTest::Name(n) => PLabel::Name(n.clone()),
                crate::ast::NodeTest::Wildcard => PLabel::Wild,
            };
            let next = tp.push_node(at, step.axis.into(), label);
            for q in &step.predicates {
                tp.add_qualifier(next, q);
            }
            tp.spine.push(next);
            at = next;
        }
        tp
    }

    fn push_node(&mut self, parent: usize, kind: EdgeKind, label: PLabel) -> usize {
        let id = self.nodes.len();
        self.nodes.push(PNode { label, constraints: Vec::new(), children: Vec::new() });
        self.nodes[parent].children.push((kind, id));
        id
    }

    fn add_qualifier(&mut self, at: usize, q: &Qualifier) {
        match q {
            Qualifier::Exists(rel) => {
                self.add_relative_chain(at, rel);
            }
            Qualifier::Cmp(rel, op, d) => {
                let end = self.add_relative_chain(at, rel);
                self.nodes[end]
                    .constraints
                    .push(Constraint { op: *op, value: d.clone() });
            }
            Qualifier::And(qs) => {
                for q in qs {
                    self.add_qualifier(at, q);
                }
            }
        }
    }

    /// Add the chain of nodes for a relative path anchored at `at`,
    /// returning the final node (or `at` itself for the self path).
    fn add_relative_chain(&mut self, at: usize, rel: &Path) -> usize {
        assert!(!rel.absolute, "qualifier paths are relative");
        let mut cur = at;
        for step in &rel.steps {
            let label = match &step.test {
                crate::ast::NodeTest::Name(n) => PLabel::Name(n.clone()),
                crate::ast::NodeTest::Wildcard => PLabel::Wild,
            };
            cur = self.push_node(cur, step.axis.into(), label);
            let here = cur;
            for q in &step.predicates {
                self.add_qualifier(here, q);
            }
        }
        cur
    }

    /// Number of pattern nodes (including the virtual root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True only for a degenerate pattern (never produced by
    /// [`TreePattern::from_path`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node accessor.
    pub fn node(&self, i: usize) -> &PNode {
        &self.nodes[i]
    }

    /// The spine (root-to-output indices).
    pub fn spine(&self) -> &[usize] {
        &self.spine
    }

    /// The output node index.
    pub fn output(&self) -> usize {
        *self.spine.last().expect("spine is never empty")
    }

    /// Direct children reachable through a child edge.
    pub fn child_edges(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.nodes[i]
            .children
            .iter()
            .filter(|(k, _)| *k == EdgeKind::Child)
            .map(|(_, c)| *c)
    }

    /// Reachability matrix: `reach[u][v]` is true when `v` is reachable
    /// from `u` via one or more edges (of any kind).
    pub fn reachability(&self) -> Vec<Vec<bool>> {
        let n = self.nodes.len();
        let mut reach = vec![vec![false; n]; n];
        // Nodes are created parent-before-child, so a reverse sweep
        // propagates transitive closure in one pass.
        for u in (0..n).rev() {
            for &(_, c) in &self.nodes[u].children {
                reach[u][c] = true;
                let (child_row, u_row) = if c > u {
                    let (a, b) = reach.split_at_mut(c);
                    (&b[0], &mut a[u])
                } else {
                    unreachable!("children are created after parents")
                };
                for (slot, &reachable) in u_row.iter_mut().zip(child_row.iter()) {
                    *slot |= reachable;
                }
            }
        }
        reach
    }

    /// Whether the spine consists solely of child edges (the pattern then
    /// fixes its output's depth exactly).
    pub fn spine_child_only(&self) -> bool {
        self.spine_edges().all(|k| k == EdgeKind::Child)
    }

    /// Kinds of the spine edges, root-side first.
    pub fn spine_edges(&self) -> impl Iterator<Item = EdgeKind> + '_ {
        self.spine.windows(2).map(move |w| {
            self.nodes[w[0]]
                .children
                .iter()
                .find(|(_, c)| *c == w[1])
                .map(|(k, _)| *k)
                .expect("spine edge exists")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn pattern(src: &str) -> TreePattern {
        TreePattern::from_path(&parse(src).unwrap())
    }

    #[test]
    fn simple_spine() {
        let tp = pattern("//patient/name");
        assert_eq!(tp.len(), 3);
        assert_eq!(tp.spine().len(), 3);
        assert_eq!(tp.node(0).label, PLabel::Root);
        assert_eq!(tp.node(tp.output()).label, PLabel::Name("name".into()));
        let edges: Vec<EdgeKind> = tp.spine_edges().collect();
        assert_eq!(edges, vec![EdgeKind::Descendant, EdgeKind::Child]);
        assert!(!tp.spine_child_only());
    }

    #[test]
    fn predicates_branch_off_spine() {
        let tp = pattern("//patient[treatment]/name");
        assert_eq!(tp.len(), 4);
        assert_eq!(tp.spine().len(), 3);
        // The patient node has two children: the predicate chain and the
        // spine continuation.
        let patient = tp.spine()[1];
        assert_eq!(tp.node(patient).children.len(), 2);
    }

    #[test]
    fn constraints_attach_to_final_chain_node() {
        let tp = pattern("//regular[med = \"celecoxib\"]");
        let regular = tp.output();
        let (_, med) = tp.node(regular).children[0];
        assert_eq!(tp.node(med).label, PLabel::Name("med".into()));
        assert_eq!(tp.node(med).constraints.len(), 1);
        assert_eq!(tp.node(med).constraints[0].op, CmpOp::Eq);
        assert_eq!(tp.node(med).constraints[0].value, "celecoxib");
    }

    #[test]
    fn self_comparison_constrains_step_node() {
        let tp = pattern("//bill[. > 1000]");
        let bill = tp.output();
        assert_eq!(tp.node(bill).constraints.len(), 1);
        assert_eq!(tp.node(bill).children.len(), 0);
    }

    #[test]
    fn conjunction_makes_sibling_branches() {
        let tp = pattern("//a[b and c/d]");
        let a = tp.output();
        assert_eq!(tp.node(a).children.len(), 2);
    }

    #[test]
    fn reachability_closure() {
        let tp = pattern("//a/b[c]//d");
        let reach = tp.reachability();
        let root = 0;
        assert!(
            reach[root][1..tp.len()].iter().all(|&r| r),
            "root reaches everything"
        );
        assert!(!reach[tp.output()][root]);
    }

    #[test]
    fn child_only_spine_detection() {
        assert!(pattern("/a/b/c").spine_child_only());
        assert!(!pattern("/a//c").spine_child_only());
        assert!(pattern("/a[.//x]/b").spine_child_only(), "predicates don't affect the spine");
    }
}
