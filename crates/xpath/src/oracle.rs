//! Memoized containment oracle.
//!
//! Static analysis (redundancy elimination, dependency graphs, Trigger)
//! asks the same containment questions over and over: the optimizer's
//! pairwise loop is `O(n²)` queries over `n` rule paths, and every
//! update re-compares the same rule expansions. Each blind query pays
//! twice — [`TreePattern::from_path`] for both sides, then the
//! homomorphism search. The oracle hash-conses paths (keyed by their
//! round-tripping `Display` form) so each distinct path is lowered to a
//! tree pattern exactly once, and memoizes the boolean answer per
//! ordered pair, so the Miklau–Suciu test runs at most once per
//! `(p, q)`.
//!
//! Interior mutability is a `std::sync::Mutex` (the workspace is
//! dependency-free by design), letting callers share one oracle behind
//! `&self` across an analysis pass. Answers are bit-identical to
//! [`crate::contained_in`] / [`crate::contained_in_with_schema`] — the
//! oracle only caches, never approximates.

use crate::ast::Path;
use crate::containment::pattern_contained_in;
use crate::pattern::TreePattern;
use crate::specialize::contained_in_with_schema;
use std::collections::HashMap;
use std::sync::Mutex;
use xac_xml::Schema;

/// Interned path handle: index into the oracle's pattern arena.
type PathId = u32;

#[derive(Default)]
struct State {
    /// Canonical `Display` form → interned id.
    ids: HashMap<String, PathId>,
    /// Tree pattern per interned path, built once.
    patterns: Vec<TreePattern>,
    /// Memoized schema-blind answers per ordered pair.
    plain: HashMap<(PathId, PathId), bool>,
    /// Memoized schema-aware answers per ordered pair.
    schema_aware: HashMap<(PathId, PathId), bool>,
    hits: u64,
    misses: u64,
}

/// Cache counters, exposed for tests and perf reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleStats {
    /// Queries answered from the memo table.
    pub hits: u64,
    /// Queries that ran the homomorphism test.
    pub misses: u64,
    /// Distinct paths interned (= tree patterns built).
    pub distinct_paths: usize,
}

/// A shared, memoizing façade over the containment checker.
///
/// Construct one per analysis context ([`ContainmentOracle::new`] for
/// schema-blind use, [`ContainmentOracle::with_schema`] to also memoize
/// schema-aware queries) and pass it by reference wherever repeated
/// containment tests happen.
pub struct ContainmentOracle {
    schema: Option<Schema>,
    state: Mutex<State>,
}

impl Default for ContainmentOracle {
    fn default() -> ContainmentOracle {
        ContainmentOracle::new()
    }
}

impl ContainmentOracle {
    /// Oracle without schema knowledge: `contained_in_schema_aware`
    /// degrades to the blind test.
    pub fn new() -> ContainmentOracle {
        ContainmentOracle { schema: None, state: Mutex::new(State::default()) }
    }

    /// Oracle whose schema-aware queries specialize descendant steps
    /// through `schema` (see [`crate::contained_in_with_schema`]).
    pub fn with_schema(schema: Schema) -> ContainmentOracle {
        ContainmentOracle { schema: Some(schema), state: Mutex::new(State::default()) }
    }

    /// The schema this oracle specializes against, if any.
    pub fn schema(&self) -> Option<&Schema> {
        self.schema.as_ref()
    }

    fn intern(state: &mut State, p: &Path) -> PathId {
        let key = p.to_string();
        if let Some(&id) = state.ids.get(&key) {
            return id;
        }
        let id = state.patterns.len() as PathId;
        state.patterns.push(TreePattern::from_path(p));
        state.ids.insert(key, id);
        id
    }

    /// Recover the cache lock even when poisoned: the state is a pure
    /// memo table whose invariant survives any panic in `intern` (the
    /// pattern vector and id map are only ever *appended to*, and a
    /// stray pattern without an id entry is unreachable, not corrupt) —
    /// so a poisoned cache is still a valid cache.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Memoized `p ⊑ q` (schema-blind homomorphism test).
    pub fn contained_in(&self, p: &Path, q: &Path) -> bool {
        let mut s = self.lock_state();
        let pi = Self::intern(&mut s, p);
        let qi = Self::intern(&mut s, q);
        if let Some(&v) = s.plain.get(&(pi, qi)) {
            s.hits += 1;
            return v;
        }
        s.misses += 1;
        let v = pattern_contained_in(&s.patterns[pi as usize], &s.patterns[qi as usize]);
        s.plain.insert((pi, qi), v);
        v
    }

    /// Memoized `p ⊑ q` specialized through the held schema; identical
    /// to [`ContainmentOracle::contained_in`] when none was given.
    pub fn contained_in_schema_aware(&self, p: &Path, q: &Path) -> bool {
        let Some(schema) = &self.schema else {
            return self.contained_in(p, q);
        };
        let mut s = self.lock_state();
        let pi = Self::intern(&mut s, p);
        let qi = Self::intern(&mut s, q);
        if let Some(&v) = s.schema_aware.get(&(pi, qi)) {
            s.hits += 1;
            return v;
        }
        s.misses += 1;
        // Cheap path first: a blind yes is also a schema-aware yes, and
        // the blind answer may already be memoized.
        let blind = match s.plain.get(&(pi, qi)) {
            Some(&v) => v,
            None => {
                let v =
                    pattern_contained_in(&s.patterns[pi as usize], &s.patterns[qi as usize]);
                s.plain.insert((pi, qi), v);
                v
            }
        };
        let v = blind || contained_in_with_schema(p, q, schema);
        s.schema_aware.insert((pi, qi), v);
        v
    }

    /// Memoized equivalence: containment in both directions.
    pub fn equivalent(&self, p: &Path, q: &Path) -> bool {
        self.contained_in(p, q) && self.contained_in(q, p)
    }

    /// Current cache counters.
    pub fn stats(&self) -> OracleStats {
        let s = self.lock_state();
        OracleStats { hits: s.hits, misses: s.misses, distinct_paths: s.patterns.len() }
    }
}

impl std::fmt::Debug for ContainmentOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ContainmentOracle")
            .field("schema", &self.schema.as_ref().map(|s| s.root()))
            .field("stats", &stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn answers_match_fresh_calls() {
        let oracle = ContainmentOracle::new();
        let paths: Vec<Path> = [
            "//patient",
            "//patient[treatment]",
            "//patient/name",
            "//*",
            "/hospital//patient",
            "//patient[psn = \"1\"]",
        ]
        .iter()
        .map(|s| parse(s).unwrap())
        .collect();
        for p in &paths {
            for q in &paths {
                assert_eq!(
                    oracle.contained_in(p, q),
                    crate::contained_in(p, q),
                    "oracle diverged on {p} ⊑ {q}"
                );
            }
        }
    }

    #[test]
    fn second_query_hits_the_cache() {
        let oracle = ContainmentOracle::new();
        let p = parse("//patient[treatment]").unwrap();
        let q = parse("//patient").unwrap();
        assert!(oracle.contained_in(&p, &q));
        let after_first = oracle.stats();
        assert_eq!(after_first.misses, 1);
        assert_eq!(after_first.hits, 0);
        assert_eq!(after_first.distinct_paths, 2);
        assert!(oracle.contained_in(&p, &q));
        let after_second = oracle.stats();
        assert_eq!(after_second.misses, 1, "no recomputation");
        assert_eq!(after_second.hits, 1);
    }

    #[test]
    fn interning_is_by_canonical_form() {
        let oracle = ContainmentOracle::new();
        let p1 = parse("//patient").unwrap();
        let p2 = parse("  //patient ").unwrap_or_else(|_| parse("//patient").unwrap());
        oracle.contained_in(&p1, &p2);
        assert_eq!(oracle.stats().distinct_paths, 1, "same canonical path interned once");
    }

    #[test]
    fn ordered_pairs_are_cached_separately() {
        let oracle = ContainmentOracle::new();
        let p = parse("//patient[treatment]").unwrap();
        let q = parse("//patient").unwrap();
        assert!(oracle.contained_in(&p, &q));
        assert!(!oracle.contained_in(&q, &p), "containment is directional");
        assert_eq!(oracle.stats().misses, 2);
    }

    #[test]
    fn schema_aware_matches_fresh_calls() {
        use xac_xml::{Occurs::*, Particle, Schema};
        let schema = Schema::builder("r")
            .sequence("r", vec![Particle::new("a", Star)])
            .sequence("a", vec![Particle::new("b", Optional)])
            .sequence("b", vec![Particle::new("c", Optional)])
            .text(&["c"])
            .build()
            .unwrap();
        let oracle = ContainmentOracle::with_schema(schema.clone());
        let pairs = [
            ("//a[.//c]", "//a[b]"),
            ("//a[b]", "//a[.//c]"),
            ("//a", "//a"),
            ("//a/b", "//a"),
        ];
        for (ps, qs) in pairs {
            let p = parse(ps).unwrap();
            let q = parse(qs).unwrap();
            let fresh = crate::contained_in_with_schema(&p, &q, &schema);
            assert_eq!(oracle.contained_in_schema_aware(&p, &q), fresh, "{ps} ⊑ {qs}");
            // And again, from the cache.
            assert_eq!(oracle.contained_in_schema_aware(&p, &q), fresh, "{ps} ⊑ {qs} (cached)");
        }
        assert!(oracle.stats().hits >= 4);
    }

    #[test]
    fn equivalence_through_the_oracle() {
        let oracle = ContainmentOracle::new();
        let a = parse("//x[y and z]").unwrap();
        let b = parse("//x[z and y]").unwrap();
        assert!(oracle.equivalent(&a, &b));
        assert!(!oracle.equivalent(&a, &parse("//x[y]").unwrap()));
    }
}
