//! Memoized containment oracle.
//!
//! Static analysis (redundancy elimination, dependency graphs, Trigger)
//! asks the same containment questions over and over: the optimizer's
//! pairwise loop is `O(n²)` queries over `n` rule paths, and every
//! update re-compares the same rule expansions. Each blind query pays
//! twice — [`TreePattern::from_path`] for both sides, then the
//! homomorphism search. The oracle hash-conses paths (keyed by their
//! round-tripping `Display` form) so each distinct path is lowered to a
//! tree pattern exactly once, and memoizes the boolean answer per
//! ordered pair, so the Miklau–Suciu test runs at most once per
//! `(p, q)`.
//!
//! Interior mutability is a `std::sync::Mutex` (the workspace is
//! dependency-free by design), letting callers share one oracle behind
//! `&self` across an analysis pass. Answers are bit-identical to
//! [`crate::contained_in`] / [`crate::contained_in_with_schema`] — the
//! oracle only caches, never approximates.

use crate::ast::Path;
use crate::containment::pattern_contained_in;
use crate::pattern::TreePattern;
use crate::containment::disjoint as blind_disjoint;
use crate::specialize::{contained_in_with_schema, disjoint_with_schema};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, OnceLock};
use xac_obs::metrics::Counter;
use xac_xml::Schema;

/// Interned path handle: index into the oracle's pattern arena.
type PathId = u32;

/// Default bound on memoized (p, q) pairs across both memo tables.
/// Each entry is ~17 bytes of map payload, so the default caps the
/// memo around tens of megabytes — far above anything a policy-sized
/// workload produces, but a hard stop for adversarial path streams.
pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 20;

/// Process-wide oracle counters, aggregated across every oracle
/// instance and exported as `xac_oracle_*_total`.
fn global_hits() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_oracle_hits_total"))
}

fn global_misses() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_oracle_misses_total"))
}

fn global_evictions() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_oracle_evictions_total"))
}

#[derive(Default)]
struct State {
    /// Canonical `Display` form → interned id.
    ids: HashMap<String, PathId>,
    /// Tree pattern per interned path, built once.
    patterns: Vec<TreePattern>,
    /// Memoized schema-blind answers per ordered pair.
    plain: HashMap<(PathId, PathId), bool>,
    /// Memoized schema-aware answers per ordered pair.
    schema_aware: HashMap<(PathId, PathId), bool>,
    /// Memoized schema-aware disjointness answers per ordered pair.
    disjoint: HashMap<(PathId, PathId), bool>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl State {
    fn record_hit(&mut self) {
        self.hits += 1;
        global_hits().fetch_add(1, Ordering::Relaxed);
    }

    fn record_miss(&mut self) {
        self.misses += 1;
        global_misses().fetch_add(1, Ordering::Relaxed);
    }

    /// Enforce the pair-memo bound before an insert: at capacity, both
    /// memo tables are flushed wholesale (the memo is a pure cache —
    /// answers recompute identically, only slower). Interned patterns
    /// are kept: they are bounded by distinct paths, not query pairs.
    fn evict_if_full(&mut self, capacity: usize) {
        let filled = self.plain.len() + self.schema_aware.len() + self.disjoint.len();
        if filled >= capacity.max(1) {
            self.plain.clear();
            self.schema_aware.clear();
            self.disjoint.clear();
            self.evictions += filled as u64;
            global_evictions().fetch_add(filled as u64, Ordering::Relaxed);
        }
    }
}

/// Cache counters, exposed for tests and perf reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleStats {
    /// Queries answered from the memo table.
    pub hits: u64,
    /// Queries that ran the homomorphism test.
    pub misses: u64,
    /// Memo entries discarded to stay under the capacity bound.
    pub evictions: u64,
    /// Distinct paths interned (= tree patterns built).
    pub distinct_paths: usize,
}

impl OracleStats {
    /// Fraction of queries served from the memo (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Publish the counters as gauges into the global obs registry so a
    /// registry snapshot ([`xac_obs::prometheus_global`]) reports
    /// per-analysis cache traffic without a process restart:
    /// `<prefix>_hits`, `<prefix>_misses`, `<prefix>_evictions`,
    /// `<prefix>_distinct_paths` and `<prefix>_hit_rate_permille`
    /// (gauges are integer-valued, so the rate is scaled by 1000).
    ///
    /// Unlike the `xac_oracle_*_total` counters — which accumulate
    /// across every oracle for the whole process lifetime — these
    /// gauges are *set*, so pairing [`ContainmentOracle::reset_stats`]
    /// with a publish after each analysis yields per-run numbers.
    pub fn publish(&self, prefix: &str) {
        xac_obs::gauge(&format!("{prefix}_hits")).set(self.hits);
        xac_obs::gauge(&format!("{prefix}_misses")).set(self.misses);
        xac_obs::gauge(&format!("{prefix}_evictions")).set(self.evictions);
        xac_obs::gauge(&format!("{prefix}_distinct_paths")).set(self.distinct_paths as u64);
        xac_obs::gauge(&format!("{prefix}_hit_rate_permille"))
            .set((self.hit_rate() * 1000.0).round() as u64);
    }
}

/// A shared, memoizing façade over the containment checker.
///
/// Construct one per analysis context ([`ContainmentOracle::new`] for
/// schema-blind use, [`ContainmentOracle::with_schema`] to also memoize
/// schema-aware queries) and pass it by reference wherever repeated
/// containment tests happen.
pub struct ContainmentOracle {
    schema: Option<Schema>,
    memo_capacity: usize,
    state: Mutex<State>,
}

impl Default for ContainmentOracle {
    fn default() -> ContainmentOracle {
        ContainmentOracle::new()
    }
}

impl ContainmentOracle {
    /// Oracle without schema knowledge: `contained_in_schema_aware`
    /// degrades to the blind test.
    pub fn new() -> ContainmentOracle {
        ContainmentOracle {
            schema: None,
            memo_capacity: DEFAULT_MEMO_CAPACITY,
            state: Mutex::new(State::default()),
        }
    }

    /// Oracle whose schema-aware queries specialize descendant steps
    /// through `schema` (see [`crate::contained_in_with_schema`]).
    pub fn with_schema(schema: Schema) -> ContainmentOracle {
        ContainmentOracle {
            schema: Some(schema),
            memo_capacity: DEFAULT_MEMO_CAPACITY,
            state: Mutex::new(State::default()),
        }
    }

    /// Cap the pair-memo at `capacity` entries (minimum 1). At the cap
    /// the memo is flushed and the flush counted as evictions; answers
    /// are unchanged — this bounds memory, not correctness.
    pub fn with_memo_capacity(mut self, capacity: usize) -> ContainmentOracle {
        self.memo_capacity = capacity.max(1);
        self
    }

    /// The schema this oracle specializes against, if any.
    pub fn schema(&self) -> Option<&Schema> {
        self.schema.as_ref()
    }

    fn intern(state: &mut State, p: &Path) -> PathId {
        let key = p.to_string();
        if let Some(&id) = state.ids.get(&key) {
            return id;
        }
        let id = state.patterns.len() as PathId;
        state.patterns.push(TreePattern::from_path(p));
        state.ids.insert(key, id);
        id
    }

    /// Recover the cache lock even when poisoned: the state is a pure
    /// memo table whose invariant survives any panic in `intern` (the
    /// pattern vector and id map are only ever *appended to*, and a
    /// stray pattern without an id entry is unreachable, not corrupt) —
    /// so a poisoned cache is still a valid cache.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Memoized `p ⊑ q` (schema-blind homomorphism test).
    pub fn contained_in(&self, p: &Path, q: &Path) -> bool {
        let mut s = self.lock_state();
        let pi = Self::intern(&mut s, p);
        let qi = Self::intern(&mut s, q);
        if let Some(&v) = s.plain.get(&(pi, qi)) {
            s.record_hit();
            return v;
        }
        s.record_miss();
        let v = pattern_contained_in(&s.patterns[pi as usize], &s.patterns[qi as usize]);
        s.evict_if_full(self.memo_capacity);
        s.plain.insert((pi, qi), v);
        v
    }

    /// Memoized `p ⊑ q` specialized through the held schema; identical
    /// to [`ContainmentOracle::contained_in`] when none was given.
    pub fn contained_in_schema_aware(&self, p: &Path, q: &Path) -> bool {
        let Some(schema) = &self.schema else {
            return self.contained_in(p, q);
        };
        let mut s = self.lock_state();
        let pi = Self::intern(&mut s, p);
        let qi = Self::intern(&mut s, q);
        if let Some(&v) = s.schema_aware.get(&(pi, qi)) {
            s.record_hit();
            return v;
        }
        s.record_miss();
        // Cheap path first: a blind yes is also a schema-aware yes, and
        // the blind answer may already be memoized.
        let blind = match s.plain.get(&(pi, qi)) {
            Some(&v) => v,
            None => {
                let v =
                    pattern_contained_in(&s.patterns[pi as usize], &s.patterns[qi as usize]);
                s.evict_if_full(self.memo_capacity);
                s.plain.insert((pi, qi), v);
                v
            }
        };
        let v = blind || contained_in_with_schema(p, q, schema);
        s.evict_if_full(self.memo_capacity);
        s.schema_aware.insert((pi, qi), v);
        v
    }

    /// Memoized equivalence: containment in both directions.
    pub fn equivalent(&self, p: &Path, q: &Path) -> bool {
        self.contained_in(p, q) && self.contained_in(q, p)
    }

    /// Memoized schema-aware disjointness
    /// ([`crate::disjoint_with_schema`]); degrades to the schema-blind
    /// [`crate::disjoint`] when no schema was given. Disjointness is
    /// symmetric, so the pair is memoized under a canonical ordering.
    pub fn disjoint_schema_aware(&self, p: &Path, q: &Path) -> bool {
        let mut s = self.lock_state();
        let pi = Self::intern(&mut s, p);
        let qi = Self::intern(&mut s, q);
        let key = if pi <= qi { (pi, qi) } else { (qi, pi) };
        if let Some(&v) = s.disjoint.get(&key) {
            s.record_hit();
            return v;
        }
        s.record_miss();
        let v = match &self.schema {
            Some(schema) => disjoint_with_schema(p, q, schema),
            None => blind_disjoint(p, q),
        };
        s.evict_if_full(self.memo_capacity);
        s.disjoint.insert(key, v);
        v
    }

    /// Current cache counters.
    pub fn stats(&self) -> OracleStats {
        let s = self.lock_state();
        let stats = OracleStats {
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            distinct_paths: s.patterns.len(),
        };
        // The `evictions > 0 && capacity == 0` corner is unreachable:
        // construction clamps the capacity to at least 1, so a non-zero
        // eviction count always has a real bound behind it.
        debug_assert!(
            stats.evictions == 0 || self.memo_capacity >= 1,
            "evictions recorded without a memo bound"
        );
        stats
    }

    /// Zero the traffic counters (hits, misses, evictions) while keeping
    /// the interned patterns and memoized answers. Lets one shared
    /// oracle report per-analysis hit rates: reset, run the analysis,
    /// read [`ContainmentOracle::stats`] (and optionally
    /// [`OracleStats::publish`] the result into the obs registry). The
    /// process-wide `xac_oracle_*_total` counters are cumulative by
    /// design and are not reset.
    pub fn reset_stats(&self) {
        let mut s = self.lock_state();
        s.hits = 0;
        s.misses = 0;
        s.evictions = 0;
    }
}

impl std::fmt::Debug for ContainmentOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ContainmentOracle")
            .field("schema", &self.schema.as_ref().map(|s| s.root()))
            .field("stats", &stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn answers_match_fresh_calls() {
        let oracle = ContainmentOracle::new();
        let paths: Vec<Path> = [
            "//patient",
            "//patient[treatment]",
            "//patient/name",
            "//*",
            "/hospital//patient",
            "//patient[psn = \"1\"]",
        ]
        .iter()
        .map(|s| parse(s).unwrap())
        .collect();
        for p in &paths {
            for q in &paths {
                assert_eq!(
                    oracle.contained_in(p, q),
                    crate::contained_in(p, q),
                    "oracle diverged on {p} ⊑ {q}"
                );
            }
        }
    }

    #[test]
    fn second_query_hits_the_cache() {
        let oracle = ContainmentOracle::new();
        let p = parse("//patient[treatment]").unwrap();
        let q = parse("//patient").unwrap();
        assert!(oracle.contained_in(&p, &q));
        let after_first = oracle.stats();
        assert_eq!(after_first.misses, 1);
        assert_eq!(after_first.hits, 0);
        assert_eq!(after_first.distinct_paths, 2);
        assert!(oracle.contained_in(&p, &q));
        let after_second = oracle.stats();
        assert_eq!(after_second.misses, 1, "no recomputation");
        assert_eq!(after_second.hits, 1);
    }

    #[test]
    fn interning_is_by_canonical_form() {
        let oracle = ContainmentOracle::new();
        let p1 = parse("//patient").unwrap();
        let p2 = parse("  //patient ").unwrap_or_else(|_| parse("//patient").unwrap());
        oracle.contained_in(&p1, &p2);
        assert_eq!(oracle.stats().distinct_paths, 1, "same canonical path interned once");
    }

    #[test]
    fn ordered_pairs_are_cached_separately() {
        let oracle = ContainmentOracle::new();
        let p = parse("//patient[treatment]").unwrap();
        let q = parse("//patient").unwrap();
        assert!(oracle.contained_in(&p, &q));
        assert!(!oracle.contained_in(&q, &p), "containment is directional");
        assert_eq!(oracle.stats().misses, 2);
    }

    #[test]
    fn schema_aware_matches_fresh_calls() {
        use xac_xml::{Occurs::*, Particle, Schema};
        let schema = Schema::builder("r")
            .sequence("r", vec![Particle::new("a", Star)])
            .sequence("a", vec![Particle::new("b", Optional)])
            .sequence("b", vec![Particle::new("c", Optional)])
            .text(&["c"])
            .build()
            .unwrap();
        let oracle = ContainmentOracle::with_schema(schema.clone());
        let pairs = [
            ("//a[.//c]", "//a[b]"),
            ("//a[b]", "//a[.//c]"),
            ("//a", "//a"),
            ("//a/b", "//a"),
        ];
        for (ps, qs) in pairs {
            let p = parse(ps).unwrap();
            let q = parse(qs).unwrap();
            let fresh = crate::contained_in_with_schema(&p, &q, &schema);
            assert_eq!(oracle.contained_in_schema_aware(&p, &q), fresh, "{ps} ⊑ {qs}");
            // And again, from the cache.
            assert_eq!(oracle.contained_in_schema_aware(&p, &q), fresh, "{ps} ⊑ {qs} (cached)");
        }
        assert!(oracle.stats().hits >= 4);
    }

    #[test]
    fn bounded_memo_evicts_but_stays_correct() {
        let oracle = ContainmentOracle::new().with_memo_capacity(2);
        let paths: Vec<Path> = ["//a", "//a[b]", "//a/b", "//c", "//c[d]", "//*"]
            .iter()
            .map(|s| parse(s).unwrap())
            .collect();
        // Far more ordered pairs than the capacity of 2; every answer
        // must still match the fresh checker.
        for p in &paths {
            for q in &paths {
                assert_eq!(oracle.contained_in(p, q), crate::contained_in(p, q), "{p} ⊑ {q}");
            }
        }
        let stats = oracle.stats();
        assert!(stats.evictions > 0, "a capacity-2 memo must have evicted: {stats:?}");
        assert_eq!(stats.distinct_paths, paths.len(), "interning survives eviction");
        // And a re-query is still answered correctly post-eviction.
        assert!(oracle.contained_in(&paths[1], &paths[0]));
    }

    #[test]
    fn hit_rate_reflects_cache_traffic() {
        let oracle = ContainmentOracle::new();
        assert_eq!(oracle.stats().hit_rate(), 0.0, "idle oracle reports 0");
        let p = parse("//patient").unwrap();
        let q = parse("//*").unwrap();
        oracle.contained_in(&p, &q);
        oracle.contained_in(&p, &q);
        oracle.contained_in(&p, &q);
        let s = oracle.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_is_clamped_and_stays_correct() {
        // The `evictions > 0 && capacity == 0` corner: a requested
        // capacity of 0 is clamped to 1, so eviction bookkeeping always
        // has a real bound behind it and answers never change.
        let oracle = ContainmentOracle::new().with_memo_capacity(0);
        let paths: Vec<Path> = ["//a", "//a[b]", "//a/b", "//c"]
            .iter()
            .map(|s| parse(s).unwrap())
            .collect();
        for p in &paths {
            for q in &paths {
                assert_eq!(oracle.contained_in(p, q), crate::contained_in(p, q), "{p} ⊑ {q}");
            }
        }
        let stats = oracle.stats();
        assert!(stats.evictions > 0, "a capacity-1 memo must evict: {stats:?}");
        assert!(stats.hit_rate().is_finite());
    }

    #[test]
    fn reset_stats_clears_traffic_but_keeps_interning() {
        let oracle = ContainmentOracle::new();
        let p = parse("//patient[treatment]").unwrap();
        let q = parse("//patient").unwrap();
        oracle.contained_in(&p, &q);
        oracle.contained_in(&p, &q);
        assert_eq!(oracle.stats().hits, 1);
        oracle.reset_stats();
        let s = oracle.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (0, 0, 0));
        assert_eq!(s.distinct_paths, 2, "interned patterns survive the reset");
        // The memoized answer also survives: the next query is a hit.
        oracle.contained_in(&p, &q);
        assert_eq!(oracle.stats().hits, 1);
        assert_eq!(oracle.stats().misses, 0);
    }

    #[test]
    fn stats_publish_into_the_global_registry() {
        let oracle = ContainmentOracle::new();
        let p = parse("//patient").unwrap();
        oracle.contained_in(&p, &p);
        oracle.contained_in(&p, &p);
        oracle.stats().publish("test_oracle_publish");
        assert_eq!(xac_obs::gauge("test_oracle_publish_misses").get(), 1);
        assert_eq!(xac_obs::gauge("test_oracle_publish_hits").get(), 1);
        assert_eq!(xac_obs::gauge("test_oracle_publish_distinct_paths").get(), 1);
        assert_eq!(xac_obs::gauge("test_oracle_publish_hit_rate_permille").get(), 500);
        let snapshot = xac_obs::prometheus_global();
        assert!(
            snapshot.contains("test_oracle_publish_hits"),
            "published gauges appear in the registry snapshot"
        );
    }

    #[test]
    fn disjointness_through_the_oracle() {
        use xac_xml::{Occurs::*, Particle, Schema};
        let schema = Schema::builder("r")
            .sequence("r", vec![Particle::new("a", One), Particle::new("x", Star)])
            .text(&["a", "x"])
            .build()
            .unwrap();
        let oracle = ContainmentOracle::with_schema(schema.clone());
        let lo = parse("//r[a <= 10]").unwrap();
        let hi = parse("//r[a > 10]").unwrap();
        assert_eq!(
            oracle.disjoint_schema_aware(&lo, &hi),
            crate::disjoint_with_schema(&lo, &hi, &schema)
        );
        assert!(oracle.disjoint_schema_aware(&lo, &hi));
        // Symmetric memoization: the flipped query is a hit.
        let before = oracle.stats().hits;
        assert!(oracle.disjoint_schema_aware(&hi, &lo));
        assert_eq!(oracle.stats().hits, before + 1);
        // A schema-less oracle degrades to the blind test.
        let blind = ContainmentOracle::new();
        assert!(!blind.disjoint_schema_aware(&lo, &hi));
        assert!(blind.disjoint_schema_aware(&parse("//a").unwrap(), &parse("//b").unwrap()));
    }

    #[test]
    fn equivalence_through_the_oracle() {
        let oracle = ContainmentOracle::new();
        let a = parse("//x[y and z]").unwrap();
        let b = parse("//x[z and y]").unwrap();
        assert!(oracle.equivalent(&a, &b));
        assert!(!oracle.equivalent(&a, &parse("//x[y]").unwrap()));
    }
}
