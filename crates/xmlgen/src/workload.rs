//! Query and update workloads (paper §7.1–7.2).
//!
//! The response-time experiment runs "55 different queries (of the same
//! complexity as the coverage policy dataset)"; the re-annotation
//! experiment runs "the same 55 queries … as delete updates". This module
//! generates both: structurally varied paths drawn from the schema with a
//! seeded RNG.

use crate::rng::SplitMix64;
use std::collections::BTreeMap;
use xac_xml::Schema;
use xac_xpath::Path;

/// Parent map: element type → types that can contain it directly.
fn parent_map(schema: &Schema) -> BTreeMap<String, Vec<String>> {
    let mut parents: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for t in schema.reachable_types() {
        for c in schema.child_types(t) {
            parents.entry(c.to_string()).or_default().push(t.to_string());
        }
    }
    parents
}

/// Generate `n` read queries over the schema (forms: `//t`, `//t[c]`,
/// `//p/t`, `//t[c1 and c2]`).
pub fn query_workload(schema: &Schema, n: usize, seed: u64) -> Vec<Path> {
    generate(schema, n, seed, false)
}

/// Generate `n` delete updates: the same query shapes, but never targeting
/// the root or its direct children (deleting a whole document section
/// would leave nothing to measure).
pub fn delete_updates(schema: &Schema, n: usize, seed: u64) -> Vec<Path> {
    generate(schema, n, seed, true)
}

fn generate(schema: &Schema, n: usize, seed: u64, for_delete: bool) -> Vec<Path> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let parents = parent_map(schema);
    let root = schema.root().to_string();
    let sections: Vec<&str> = schema.child_types(&root);

    let mut candidates: Vec<String> = schema
        .reachable_types()
        .into_iter()
        .filter(|t| *t != root)
        .filter(|t| !for_delete || !sections.contains(t))
        .map(str::to_string)
        .collect();
    candidates.sort();
    assert!(!candidates.is_empty(), "schema has no usable element types");

    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let t = &candidates[rng.gen_range(0..candidates.len())];
        let children = schema.child_types(t);
        let form = rng.gen_range(0..4u8);
        let src = match form {
            1 if !children.is_empty() => {
                let c = children[rng.gen_range(0..children.len())];
                format!("//{t}[{c}]")
            }
            2 => {
                let ps = parents.get(t).map(Vec::as_slice).unwrap_or(&[]);
                if ps.is_empty() {
                    format!("//{t}")
                } else {
                    let p = &ps[rng.gen_range(0..ps.len())];
                    format!("//{p}/{t}")
                }
            }
            3 if children.len() >= 2 => {
                let a = children[rng.gen_range(0..children.len())];
                let b = children[rng.gen_range(0..children.len())];
                if a == b {
                    format!("//{t}[{a}]")
                } else {
                    format!("//{t}[{a} and {b}]")
                }
            }
            _ => format!("//{t}"),
        };
        out.push(xac_xpath::parse(&src).expect("generated paths parse"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hospital::hospital_schema;
    use crate::xmark::xmark_schema;

    #[test]
    fn generates_requested_count() {
        let qs = query_workload(&xmark_schema(), 55, 0);
        assert_eq!(qs.len(), 55);
        assert!(qs.iter().all(|p| p.absolute));
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = query_workload(&xmark_schema(), 10, 5);
        let b = query_workload(&xmark_schema(), 10, 5);
        assert_eq!(a, b);
        let c = query_workload(&xmark_schema(), 10, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn updates_avoid_root_and_sections() {
        let schema = xmark_schema();
        let updates = delete_updates(&schema, 100, 1);
        for u in &updates {
            let s = u.to_string();
            assert!(!s.contains("//site"), "root targeted: {s}");
            for section in ["//regions", "//categories", "//people", "//open_auctions", "//closed_auctions"] {
                assert!(
                    !s.starts_with(&section.to_string()) || s.len() > section.len() + 1,
                    "section deleted wholesale: {s}"
                );
            }
        }
    }

    #[test]
    fn query_forms_are_varied() {
        let qs = query_workload(&xmark_schema(), 60, 2);
        let with_pred = qs.iter().filter(|p| !p.is_predicate_free()).count();
        let multi_step = qs.iter().filter(|p| p.len() > 1).count();
        assert!(with_pred > 5, "predicates present ({with_pred})");
        assert!(multi_step > 5, "parent/child forms present ({multi_step})");
    }

    #[test]
    fn hospital_schema_workload_is_valid() {
        let qs = query_workload(&hospital_schema(), 20, 3);
        assert_eq!(qs.len(), 20);
        // Spot-check evaluability against a generated document.
        let doc = crate::hospital::hospital_document(2, 20, 0);
        for q in &qs {
            let _ = xac_xpath::eval(&doc, q);
        }
    }
}
