//! XMark-like auction-site documents (the paper's xmlgen substitute).
//!
//! The shape follows XMark's `site` document: six regions holding items,
//! categories, people with addresses and profiles, open auctions with
//! bidders, and closed auctions. Two deliberate deviations, both matching
//! the paper's own modifications and scale:
//!
//! * **no recursion** — XMark's `parlist`/`text` description markup is
//!   recursive; the paper "modified xmlgen's code … to eliminate all
//!   recursive paths" so shredding works, and descriptions here are flat
//!   text for the same reason;
//! * **scaled-down factor** — our factor `f` produces roughly one tenth of
//!   XMark's node counts at the same `f`, keeping the full factor sweep
//!   laptop-friendly while preserving the ratios *between* factors (which
//!   is what the experiments compare).

use crate::words::{person_name, phrase, pick, WORDS};
use crate::rng::SplitMix64;
use xac_xml::{Document, NodeId, Occurs::*, Particle, Schema};

/// The six region element names.
pub const REGIONS: &[&str] =
    &["africa", "asia", "australia", "europe", "namerica", "samerica"];

/// The non-recursive XMark-like schema.
pub fn xmark_schema() -> Schema {
    let mut b = Schema::builder("site").sequence(
        "site",
        vec![
            Particle::new("regions", One),
            Particle::new("categories", One),
            Particle::new("people", One),
            Particle::new("open_auctions", One),
            Particle::new("closed_auctions", One),
        ],
    );
    b = b.sequence(
        "regions",
        REGIONS.iter().map(|r| Particle::new(*r, One)).collect(),
    );
    for r in REGIONS {
        b = b.sequence(*r, vec![Particle::new("item", Star)]);
    }
    b = b
        .sequence(
            "item",
            vec![
                Particle::new("location", One),
                Particle::new("quantity", One),
                Particle::new("name", One),
                Particle::new("payment", One),
                Particle::new("description", One),
                Particle::new("shipping", One),
                Particle::new("incategory", Star),
                Particle::new("mailbox", Optional),
            ],
        )
        .sequence("mailbox", vec![Particle::new("mail", Star)])
        .sequence(
            "mail",
            vec![
                Particle::new("from", One),
                Particle::new("to", One),
                Particle::new("date", One),
                Particle::new("text", One),
            ],
        )
        .sequence("categories", vec![Particle::new("category", Star)])
        .sequence(
            "category",
            vec![Particle::new("name", One), Particle::new("description", One)],
        )
        .sequence("people", vec![Particle::new("person", Star)])
        .sequence(
            "person",
            vec![
                Particle::new("name", One),
                Particle::new("emailaddress", One),
                Particle::new("phone", Optional),
                Particle::new("address", Optional),
                Particle::new("creditcard", Optional),
                Particle::new("profile", Optional),
                Particle::new("watches", Optional),
            ],
        )
        .sequence(
            "address",
            vec![
                Particle::new("street", One),
                Particle::new("city", One),
                Particle::new("country", One),
                Particle::new("zipcode", One),
            ],
        )
        .sequence(
            "profile",
            vec![
                Particle::new("interest", Star),
                Particle::new("education", Optional),
                Particle::new("gender", Optional),
                Particle::new("business", One),
                Particle::new("age", Optional),
            ],
        )
        .sequence("watches", vec![Particle::new("watch", Star)])
        .sequence("open_auctions", vec![Particle::new("open_auction", Star)])
        .sequence(
            "open_auction",
            vec![
                Particle::new("initial", One),
                Particle::new("reserve", Optional),
                Particle::new("bidder", Star),
                Particle::new("current", One),
                Particle::new("itemref", One),
                Particle::new("seller", One),
                Particle::new("annotation", One),
                Particle::new("quantity", One),
                Particle::new("type", One),
            ],
        )
        .sequence(
            "bidder",
            vec![
                Particle::new("date", One),
                Particle::new("time", One),
                Particle::new("personref", One),
                Particle::new("increase", One),
            ],
        )
        .sequence(
            "annotation",
            vec![
                Particle::new("author", One),
                Particle::new("description", One),
                Particle::new("happiness", One),
            ],
        )
        .sequence("closed_auctions", vec![Particle::new("closed_auction", Star)])
        .sequence(
            "closed_auction",
            vec![
                Particle::new("seller", One),
                Particle::new("buyer", One),
                Particle::new("itemref", One),
                Particle::new("price", One),
                Particle::new("date", One),
                Particle::new("quantity", One),
                Particle::new("type", One),
                Particle::new("annotation", One),
            ],
        )
        .text(&[
            "location", "quantity", "name", "payment", "description", "shipping",
            "incategory", "from", "to", "date", "text", "street", "city", "country",
            "zipcode", "interest", "education", "gender", "business", "age", "watch",
            "emailaddress", "phone", "creditcard", "initial", "reserve", "current",
            "itemref", "seller", "personref", "increase", "time", "price", "buyer",
            "author", "happiness", "type",
        ]);
    b.build().expect("the XMark-like schema is well-formed")
}

/// Size/seed configuration for the generator.
#[derive(Debug, Clone, Copy)]
pub struct XmarkConfig {
    /// Scale factor (xmlgen's `-f`).
    pub factor: f64,
    /// RNG seed.
    pub seed: u64,
}

impl XmarkConfig {
    /// Configuration for a factor with the default seed.
    pub fn with_factor(factor: f64) -> XmarkConfig {
        XmarkConfig { factor, seed: 0xAC }
    }

    fn scaled(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.factor).round() as usize).max(min)
    }

    /// Total items across the six regions.
    pub fn items(&self) -> usize {
        self.scaled(2175, 6)
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.scaled(100, 2)
    }

    /// Number of people.
    pub fn people(&self) -> usize {
        self.scaled(2550, 3)
    }

    /// Number of open auctions.
    pub fn open_auctions(&self) -> usize {
        self.scaled(1200, 2)
    }

    /// Number of closed auctions.
    pub fn closed_auctions(&self) -> usize {
        self.scaled(975, 1)
    }
}

fn leaf(doc: &mut Document, parent: NodeId, name: &str, value: impl Into<String>) {
    let e = doc.add_element(parent, name);
    doc.add_text(e, value.into());
}

/// Generate an XMark-like document.
pub fn xmark_document(config: XmarkConfig) -> Document {
    let mut rng = SplitMix64::seed_from_u64(config.seed ^ config.factor.to_bits());
    let mut doc = Document::new("site");
    let site = doc.root();

    // Regions and items.
    let regions = doc.add_element(site, "regions");
    let n_items = config.items();
    let n_categories = config.categories();
    for (i, region_name) in REGIONS.iter().enumerate() {
        let region = doc.add_element(regions, *region_name);
        let share = n_items / REGIONS.len()
            + usize::from(i < n_items % REGIONS.len());
        for item_no in 0..share {
            let item = doc.add_element(region, "item");
            leaf(&mut doc, item, "location", pick(&mut rng, WORDS));
            leaf(&mut doc, item, "quantity", rng.gen_range(1..10).to_string());
            leaf(&mut doc, item, "name", phrase(&mut rng, 2));
            leaf(
                &mut doc,
                item,
                "payment",
                if rng.gen_bool(0.5) { "creditcard" } else { "money order" },
            );
            leaf(&mut doc, item, "description", phrase(&mut rng, 8));
            leaf(&mut doc, item, "shipping", "will ship internationally");
            for _ in 0..rng.gen_range(1..=3usize) {
                leaf(
                    &mut doc,
                    item,
                    "incategory",
                    format!("category{}", rng.gen_range(0..n_categories)),
                );
            }
            if item_no % 3 == 0 {
                let mailbox = doc.add_element(item, "mailbox");
                for _ in 0..rng.gen_range(0..3usize) {
                    let mail = doc.add_element(mailbox, "mail");
                    leaf(&mut doc, mail, "from", person_name(&mut rng));
                    leaf(&mut doc, mail, "to", person_name(&mut rng));
                    leaf(&mut doc, mail, "date", random_date(&mut rng));
                    leaf(&mut doc, mail, "text", phrase(&mut rng, 12));
                }
            }
        }
    }

    // Categories.
    let categories = doc.add_element(site, "categories");
    for _ in 0..n_categories {
        let cat = doc.add_element(categories, "category");
        leaf(&mut doc, cat, "name", phrase(&mut rng, 1));
        leaf(&mut doc, cat, "description", phrase(&mut rng, 6));
    }

    // People.
    let people = doc.add_element(site, "people");
    let n_people = config.people();
    for p in 0..n_people {
        let person = doc.add_element(people, "person");
        leaf(&mut doc, person, "name", person_name(&mut rng));
        leaf(&mut doc, person, "emailaddress", format!("person{p}@example.org"));
        if rng.gen_bool(0.5) {
            leaf(&mut doc, person, "phone", format!("+30 {:07}", rng.gen_range(0..10_000_000)));
        }
        if rng.gen_bool(0.5) {
            let address = doc.add_element(person, "address");
            leaf(&mut doc, address, "street", format!("{} st", pick(&mut rng, WORDS)));
            leaf(&mut doc, address, "city", pick(&mut rng, WORDS));
            leaf(&mut doc, address, "country", "greece");
            leaf(&mut doc, address, "zipcode", rng.gen_range(10000..99999).to_string());
        }
        if rng.gen_bool(0.3) {
            leaf(
                &mut doc,
                person,
                "creditcard",
                format!("{:04} {:04} {:04} {:04}", rng.gen_range(0..10000), rng.gen_range(0..10000), rng.gen_range(0..10000), rng.gen_range(0..10000)),
            );
        }
        if rng.gen_bool(0.7) {
            let profile = doc.add_element(person, "profile");
            for _ in 0..rng.gen_range(0..3usize) {
                leaf(&mut doc, profile, "interest", format!("category{}", rng.gen_range(0..n_categories)));
            }
            if rng.gen_bool(0.4) {
                leaf(&mut doc, profile, "education", "graduate school");
            }
            if rng.gen_bool(0.6) {
                leaf(&mut doc, profile, "gender", if rng.gen_bool(0.5) { "male" } else { "female" });
            }
            leaf(&mut doc, profile, "business", if rng.gen_bool(0.2) { "yes" } else { "no" });
            if rng.gen_bool(0.5) {
                leaf(&mut doc, profile, "age", rng.gen_range(18..90).to_string());
            }
        }
        if rng.gen_bool(0.3) {
            let watches = doc.add_element(person, "watches");
            for _ in 0..rng.gen_range(1..4usize) {
                leaf(
                    &mut doc,
                    watches,
                    "watch",
                    format!("open_auction{}", rng.gen_range(0..config.open_auctions())),
                );
            }
        }
    }

    // Open auctions.
    let open_auctions = doc.add_element(site, "open_auctions");
    for _ in 0..config.open_auctions() {
        let auction = doc.add_element(open_auctions, "open_auction");
        let initial: i64 = rng.gen_range(1..200);
        leaf(&mut doc, auction, "initial", initial.to_string());
        if rng.gen_bool(0.4) {
            leaf(&mut doc, auction, "reserve", (initial * 2).to_string());
        }
        let bidders = rng.gen_range(0..4usize);
        let mut current = initial;
        for _ in 0..bidders {
            let bidder = doc.add_element(auction, "bidder");
            leaf(&mut doc, bidder, "date", random_date(&mut rng));
            leaf(&mut doc, bidder, "time", format!("{:02}:{:02}:00", rng.gen_range(0..24), rng.gen_range(0..60)));
            leaf(&mut doc, bidder, "personref", format!("person{}", rng.gen_range(0..n_people)));
            let inc: i64 = rng.gen_range(1..30);
            current += inc;
            leaf(&mut doc, bidder, "increase", inc.to_string());
        }
        leaf(&mut doc, auction, "current", current.to_string());
        leaf(&mut doc, auction, "itemref", format!("item{}", rng.gen_range(0..n_items)));
        leaf(&mut doc, auction, "seller", format!("person{}", rng.gen_range(0..n_people)));
        add_annotation(&mut doc, auction, &mut rng);
        leaf(&mut doc, auction, "quantity", rng.gen_range(1..5).to_string());
        leaf(&mut doc, auction, "type", if rng.gen_bool(0.5) { "Regular" } else { "Featured" });
    }

    // Closed auctions.
    let closed_auctions = doc.add_element(site, "closed_auctions");
    for _ in 0..config.closed_auctions() {
        let auction = doc.add_element(closed_auctions, "closed_auction");
        leaf(&mut doc, auction, "seller", format!("person{}", rng.gen_range(0..n_people)));
        leaf(&mut doc, auction, "buyer", format!("person{}", rng.gen_range(0..n_people)));
        leaf(&mut doc, auction, "itemref", format!("item{}", rng.gen_range(0..n_items)));
        leaf(&mut doc, auction, "price", rng.gen_range(5..2000).to_string());
        leaf(&mut doc, auction, "date", random_date(&mut rng));
        leaf(&mut doc, auction, "quantity", rng.gen_range(1..5).to_string());
        leaf(&mut doc, auction, "type", if rng.gen_bool(0.5) { "Regular" } else { "Featured" });
        add_annotation(&mut doc, auction, &mut rng);
    }

    doc
}

fn add_annotation(doc: &mut Document, parent: NodeId, rng: &mut SplitMix64) {
    let annotation = doc.add_element(parent, "annotation");
    leaf(doc, annotation, "author", person_name(rng));
    leaf(doc, annotation, "description", phrase(rng, 10));
    leaf(doc, annotation, "happiness", rng.gen_range(1..10).to_string());
}

fn random_date(rng: &mut SplitMix64) -> String {
    format!(
        "{:02}/{:02}/{}",
        rng.gen_range(1..13),
        rng.gen_range(1..29),
        rng.gen_range(1998..2009)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_is_non_recursive_and_complete() {
        let s = xmark_schema();
        assert!(!s.is_recursive());
        assert_eq!(s.root(), "site");
        assert!(s.reachable_types().len() > 40);
    }

    #[test]
    fn small_document_validates() {
        let doc = xmark_document(XmarkConfig::with_factor(0.001));
        xmark_schema().validate(&doc).unwrap();
    }

    #[test]
    fn factor_scales_size_roughly_linearly() {
        let small = xmark_document(XmarkConfig::with_factor(0.01)).element_count();
        let large = xmark_document(XmarkConfig::with_factor(0.1)).element_count();
        let ratio = large as f64 / small as f64;
        assert!((5.0..20.0).contains(&ratio), "ratio {ratio} for 10x factor");
    }

    #[test]
    fn deterministic_per_seed_and_factor() {
        let a = xmark_document(XmarkConfig { factor: 0.001, seed: 1 });
        let b = xmark_document(XmarkConfig { factor: 0.001, seed: 1 });
        assert_eq!(a.to_xml(), b.to_xml());
        let c = xmark_document(XmarkConfig { factor: 0.001, seed: 2 });
        assert_ne!(a.to_xml(), c.to_xml());
    }

    #[test]
    fn tiny_factor_still_produces_all_sections() {
        let doc = xmark_document(XmarkConfig::with_factor(0.0001));
        for section in ["regions", "categories", "people", "open_auctions", "closed_auctions"] {
            assert_eq!(
                xac_xpath::eval(&doc, &xac_xpath::parse(&format!("//{section}")).unwrap()).len(),
                1,
                "{section} missing"
            );
        }
        assert!(doc.element_count() > 50);
    }

    #[test]
    fn interesting_query_targets_exist() {
        let doc = xmark_document(XmarkConfig::with_factor(0.01));
        for q in ["//item", "//person[address]", "//open_auction[bidder]", "//annotation"] {
            assert!(
                !xac_xpath::eval(&doc, &xac_xpath::parse(q).unwrap()).is_empty(),
                "{q} matched nothing"
            );
        }
    }
}
