//! # xac-xmlgen
//!
//! Deterministic workload generation for the **xmlac** experiments:
//!
//! * [`xmark`] — an XMark-like auction-site document generator. The paper
//!   generated its documents with xmlgen from the XMark project \[21\],
//!   *modified to eliminate all recursive paths* so that ShreX-style
//!   shredding works; this module reproduces that shape (site → regions /
//!   categories / people / open and closed auctions, with the recursive
//!   `parlist` description replaced by flat text) with a scale factor `f`
//!   controlling document size exactly like xmlgen's `-f`;
//! * [`hospital`] — the motivating example of §1.1: the Figure 1 schema,
//!   the Figure 2 document, and a generator for arbitrarily large hospital
//!   documents;
//! * [`coverage`] — the *coverage policy dataset*: policies crafted to
//!   annotate a chosen fraction of a document's nodes (§7.1), plus the
//!   actual-coverage measurement the paper performs after annotation;
//! * [`workload`] — the 55-query response-time workload and the delete
//!   updates driving the re-annotation experiment (§7.2).
//!
//! All generators are seeded and fully deterministic, driven by the
//! in-repo [`rng::SplitMix64`] stream (no external crates), so the same
//! seed always reproduces the same document bytes.

pub mod coverage;
pub mod hospital;
pub mod rng;
pub mod words;
pub mod workload;
pub mod xmark;

pub use coverage::{actual_coverage, coverage_policy, coverage_policy_dataset};
pub use hospital::{figure2_document, hospital_document, hospital_schema};
pub use rng::SplitMix64;
pub use workload::{delete_updates, query_workload};
pub use xmark::{xmark_document, xmark_schema, XmarkConfig};
