//! Small word pools for deterministic text generation (xmlgen fills its
//! documents with Shakespeare vocabulary; a compact pool keeps the same
//! flavour without shipping a corpus).

use crate::rng::SplitMix64;

/// Vocabulary for names, descriptions and free text.
pub const WORDS: &[&str] = &[
    "amber", "anchor", "atlas", "aurora", "basil", "beacon", "birch", "breeze", "cedar",
    "cinder", "cobalt", "coral", "crimson", "delta", "drift", "ember", "fable", "falcon",
    "fern", "flint", "gale", "garnet", "glade", "harbor", "hazel", "heron", "indigo",
    "ivory", "jasper", "juniper", "keystone", "lagoon", "larch", "lark", "lumen", "maple",
    "marble", "meadow", "mica", "mistral", "nectar", "north", "oak", "ochre", "onyx",
    "opal", "orchard", "osprey", "pearl", "pine", "quartz", "quill", "raven", "reef",
    "ridge", "river", "saffron", "sage", "sierra", "slate", "sparrow", "spruce", "summit",
    "thistle", "tide", "topaz", "tundra", "umber", "vale", "violet", "walnut", "willow",
    "wren", "zephyr",
];

/// First names for people and patients.
pub const FIRST_NAMES: &[&str] = &[
    "alice", "bruno", "carla", "denis", "elena", "felix", "greta", "hassan", "irene",
    "jonas", "katia", "lucas", "maria", "nils", "olga", "pavel", "quinn", "rosa",
    "stefan", "tanya", "umar", "vera", "wanda", "xenia", "yannis", "zoe",
];

/// Last names for people and patients.
pub const LAST_NAMES: &[&str] = &[
    "adler", "baker", "costa", "dietrich", "evans", "fischer", "garcia", "hansen",
    "ivanov", "jensen", "keller", "lehmann", "meyer", "novak", "olsen", "petrov",
    "quist", "rossi", "schmidt", "tanaka", "ullman", "vogel", "weber", "xu", "young",
    "zimmer",
];

/// Draw one entry from a pool.
pub fn pick<'a>(rng: &mut SplitMix64, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

/// A `first last` person name.
pub fn person_name(rng: &mut SplitMix64) -> String {
    format!("{} {}", pick(rng, FIRST_NAMES), pick(rng, LAST_NAMES))
}

/// A short free-text phrase of `n` words.
pub fn phrase(rng: &mut SplitMix64, n: usize) -> String {
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(pick(rng, WORDS));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        assert_eq!(person_name(&mut a), person_name(&mut b));
        assert_eq!(phrase(&mut a, 5), phrase(&mut b, 5));
    }

    #[test]
    fn phrase_word_count() {
        let mut rng = SplitMix64::seed_from_u64(1);
        assert_eq!(phrase(&mut rng, 4).split(' ').count(), 4);
        assert_eq!(phrase(&mut rng, 1).split(' ').count(), 1);
        assert!(phrase(&mut rng, 0).is_empty());
    }
}
