//! The coverage policy dataset (paper §7.1).
//!
//! The paper "manually designed policies with variable coverage … to force
//! the system to annotate increasingly larger portions of the data", then
//! measured the *actual* coverage after each annotation. This module
//! generates such policies deterministically: positive rules `//type` are
//! added from the most frequent element type downward until the target
//! fraction of nodes is granted, and a narrow negative rule is mixed in so
//! the annotation query exercises its `EXCEPT` branch (as the hospital
//! policy does).

use crate::words::pick;
use crate::rng::SplitMix64;
use std::collections::BTreeMap;
use xac_policy::{accessible_nodes, ConflictResolution, DefaultSemantics, Policy, Rule};
use xac_xml::Document;

/// Fraction of element nodes accessible under `policy` — the paper's
/// post-annotation coverage measurement.
pub fn actual_coverage(doc: &Document, policy: &Policy) -> f64 {
    let total = doc.element_count();
    if total == 0 {
        return 0.0;
    }
    accessible_nodes(doc, policy).len() as f64 / total as f64
}

/// Element counts per name, most frequent first (name breaks ties so the
/// order is deterministic).
fn names_by_frequency(doc: &Document) -> Vec<(String, usize)> {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for n in doc.all_elements() {
        *counts.entry(doc.name(n).expect("element")).or_default() += 1;
    }
    let mut out: Vec<(String, usize)> =
        counts.into_iter().map(|(n, c)| (n.to_string(), c)).collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Build one coverage policy for a target fraction (deny default, deny
/// overrides — the combination "that occurs most often in practice").
///
/// The achieved coverage lands close to, and at least at, `target`
/// (modulo the negative rule's small bite); measure it exactly with
/// [`actual_coverage`].
pub fn coverage_policy(doc: &Document, target: f64, seed: u64) -> Policy {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let freq = names_by_frequency(doc);
    let total: usize = doc.element_count();
    let mut rules: Vec<Rule> = Vec::new();
    let mut granted = 0usize;
    let mut rule_no = 0usize;

    for (name, count) in &freq {
        if granted as f64 / total as f64 >= target {
            break;
        }
        rule_no += 1;
        rules.push(
            Rule::parse(format!("C{rule_no}"), &format!("//{name}"), xac_policy::Effect::Allow)
                .expect("generated resource parses"),
        );
        granted += count;
    }

    // One narrow negative rule: deny instances of the most frequent type
    // that has element children — mirrors R3's shape. The child is chosen
    // pseudo-randomly among element children observed in the document,
    // keeping the dataset varied across seeds.
    for (name, _) in &freq {
        let child_names: Vec<&str> = doc
            .all_elements()
            .filter(|&n| doc.name(n) == Some(name.as_str()))
            .flat_map(|n| doc.child_elements(n))
            .filter_map(|c| doc.name(c))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        if !child_names.is_empty() {
            let child = pick(&mut rng, &child_names);
            rule_no += 1;
            rules.push(
                Rule::parse(
                    format!("C{rule_no}"),
                    &format!("//{name}[{child}]"),
                    xac_policy::Effect::Deny,
                )
                .expect("generated resource parses"),
            );
            break;
        }
    }

    Policy::new(DefaultSemantics::Deny, ConflictResolution::DenyOverrides, rules)
        .expect("generated ids are unique")
}

/// The coverage dataset: one policy per target level (paper Figure 11
/// sweeps roughly 25–70%).
pub fn coverage_policy_dataset(doc: &Document, targets: &[f64], seed: u64) -> Vec<(f64, Policy)> {
    targets
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, coverage_policy(doc, t, seed.wrapping_add(i as u64))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xmark::{xmark_document, XmarkConfig};

    #[test]
    fn coverage_increases_with_target() {
        let doc = xmark_document(XmarkConfig::with_factor(0.01));
        let levels = [0.25, 0.4, 0.55, 0.7];
        let dataset = coverage_policy_dataset(&doc, &levels, 9);
        let mut last = 0.0;
        for (target, policy) in &dataset {
            let actual = actual_coverage(&doc, policy);
            assert!(
                actual >= target - 0.12,
                "target {target} got only {actual:.3}"
            );
            assert!(actual + 1e-9 >= last, "coverage must not decrease");
            last = actual;
        }
    }

    #[test]
    fn policies_have_a_negative_rule() {
        let doc = xmark_document(XmarkConfig::with_factor(0.001));
        let p = coverage_policy(&doc, 0.4, 3);
        assert!(p.negatives().count() >= 1);
        assert!(p.positives().count() >= 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let doc = xmark_document(XmarkConfig::with_factor(0.001));
        let a = coverage_policy(&doc, 0.5, 11);
        let b = coverage_policy(&doc, 0.5, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_and_full_targets() {
        let doc = xmark_document(XmarkConfig::with_factor(0.001));
        let none = coverage_policy(&doc, 0.0, 1);
        // Target 0: no positive rules needed (the deny rule may remain).
        assert_eq!(none.positives().count(), 0);
        let all = coverage_policy(&doc, 1.0, 1);
        let cov = actual_coverage(&doc, &all);
        assert!(cov > 0.9, "near-total coverage, got {cov:.3}");
    }

    #[test]
    fn empty_document_coverage() {
        let doc = Document::parse_str("<a/>").unwrap();
        let p = coverage_policy(&doc, 0.5, 0);
        let c = actual_coverage(&doc, &p);
        assert!((0.0..=1.0).contains(&c));
    }
}
