//! Self-contained deterministic PRNG for the workload generators.
//!
//! The generators only need reproducibility — the same seed must always
//! produce the same document — not cryptographic quality, so a splitmix64
//! stream (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number
//! Generators*, OOPSLA 2014) is plenty: one 64-bit state word, full
//! period, and it passes BigCrush. Keeping it in-repo keeps the workspace
//! free of external crates, which is what makes the offline build work.
//!
//! Range sampling uses simple modulo reduction. The bias is at most
//! `span / 2^64`, far below anything a test-data generator can observe,
//! and in exchange the mapping from stream to value stays trivially
//! auditable.

use std::ops::{Range, RangeInclusive};

/// A seeded splitmix64 generator.
///
/// Mirrors the small slice of the `rand` API the generators use
/// (`seed_from_u64`, `gen_range`, `gen_bool`) so the generator code reads
/// the same as before the crate went dependency-free.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Construct from a 64-bit seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from a half-open or inclusive integer range.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 uniform mantissa bits, the standard u64 → f64 construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Integer ranges that [`SplitMix64::gen_range`] can sample from.
///
/// Implemented once, generically, for `Range<T>`/`RangeInclusive<T>` over
/// every [`UniformInt`] — a single blanket impl per range shape is what
/// lets `rng.gen_range(1..10)` infer `i32` through the default integer
/// fallback, exactly as `rand`'s equivalent trait does.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut SplitMix64) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut SplitMix64) -> T {
        let (start, end) = (self.start.widen(), self.end.widen());
        assert!(start < end, "gen_range on empty range");
        let span = (end - start) as u128;
        let offset = (rng.next_u64() as u128 % span) as i128;
        T::narrow(start + offset)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut SplitMix64) -> T {
        let (s, e) = self.into_inner();
        let (start, end) = (s.widen(), e.widen());
        assert!(start <= end, "gen_range on empty range");
        let span = (end - start) as u128 + 1;
        let offset = (rng.next_u64() as u128 % span) as i128;
        T::narrow(start + offset)
    }
}

/// Primitive integers usable with [`SampleRange`], widened through `i128`
/// so one sampling routine covers signed and unsigned types alike.
pub trait UniformInt: Copy {
    /// Widen to `i128` losslessly.
    fn widen(self) -> i128;
    /// Narrow back from `i128` (the value is known to be in range).
    fn narrow(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl UniformInt for $t {
            fn widen(self) -> i128 {
                self as i128
            }
            fn narrow(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_vector() {
        // Reference values from the canonical splitmix64 with state = 0:
        // the first three outputs published with the algorithm.
        let mut rng = SplitMix64::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=4);
            assert!(w <= 4);
            let x: i64 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&x));
        }
    }

    #[test]
    fn single_value_ranges() {
        let mut rng = SplitMix64::seed_from_u64(1);
        assert_eq!(rng.gen_range(5..6), 5);
        assert_eq!(rng.gen_range(5..=5), 5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits} hits for p=0.3");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }
}
