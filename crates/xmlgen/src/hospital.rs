//! The paper's motivating example (§1.1): the Figure 1 hospital schema,
//! the Figure 2 document, and a seeded generator for larger hospital
//! documents.

use crate::words::{person_name, pick, WORDS};
use crate::rng::SplitMix64;
use xac_xml::{Document, Occurs::*, Particle, Schema};

/// The hospital XML DTD of Figure 1, as a schema graph.
pub fn hospital_schema() -> Schema {
    Schema::builder("hospital")
        .sequence("hospital", vec![Particle::new("dept", Plus)])
        .sequence(
            "dept",
            vec![Particle::new("patients", One), Particle::new("staffinfo", One)],
        )
        .sequence("patients", vec![Particle::new("patient", Star)])
        .sequence("staffinfo", vec![Particle::new("staff", Star)])
        .sequence(
            "patient",
            vec![
                Particle::new("psn", One),
                Particle::new("name", One),
                Particle::new("treatment", Optional),
            ],
        )
        .choice(
            "treatment",
            vec![
                Particle::new("regular", Optional),
                Particle::new("experimental", Optional),
            ],
        )
        .sequence("regular", vec![Particle::new("med", One), Particle::new("bill", One)])
        .sequence(
            "experimental",
            vec![Particle::new("test", One), Particle::new("bill", One)],
        )
        .choice("staff", vec![Particle::new("nurse", One), Particle::new("doctor", One)])
        .sequence(
            "nurse",
            vec![
                Particle::new("sid", One),
                Particle::new("name", One),
                Particle::new("phone", One),
            ],
        )
        .sequence(
            "doctor",
            vec![
                Particle::new("sid", One),
                Particle::new("name", One),
                Particle::new("phone", One),
            ],
        )
        .text(&["psn", "name", "med", "bill", "test", "sid", "phone"])
        .build()
        .expect("the Figure 1 schema is well-formed")
}

/// The partial hospital instance of Figure 2 (three patients: one regular
/// treatment, one experimental, one without).
pub fn figure2_document() -> Document {
    Document::parse_str(
        "<hospital><dept><patients>\
         <patient><psn>033</psn><name>john doe</name>\
         <treatment><regular><med>enoxaparin</med><bill>700</bill></regular></treatment>\
         </patient>\
         <patient><psn>042</psn><name>jane doe</name>\
         <treatment><experimental><test>regression hypnosis</test><bill>1600</bill></experimental></treatment>\
         </patient>\
         <patient><psn>099</psn><name>joy smith</name></patient>\
         </patients><staffinfo/></dept></hospital>",
    )
    .expect("the Figure 2 document is well-formed")
}

/// Medication names used by the generator — `celecoxib` is included so
/// that rule R7 of the paper's policy has matches in generated data.
pub const MEDICATIONS: &[&str] = &[
    "celecoxib", "enoxaparin", "amoxicillin", "lisinopril", "metformin", "ibuprofen",
    "omeprazole", "sertraline",
];

/// Seeded generator for hospital documents conforming to Figure 1.
///
/// About a third of the patients have no treatment, and treatments split
/// evenly between regular and experimental (with occasional unspecified
/// ones, which the choice model permits), so the paper's rules R1/R3/R5
/// partition patients non-trivially.
pub fn hospital_document(depts: usize, patients_per_dept: usize, seed: u64) -> Document {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut doc = Document::new("hospital");
    let root = doc.root();
    let mut psn = 1u64;
    let mut sid = 1u64;
    for _ in 0..depts.max(1) {
        let dept = doc.add_element(root, "dept");
        let patients = doc.add_element(dept, "patients");
        for _ in 0..patients_per_dept {
            let patient = doc.add_element(patients, "patient");
            let e = doc.add_element(patient, "psn");
            doc.add_text(e, format!("{psn:05}"));
            psn += 1;
            let e = doc.add_element(patient, "name");
            doc.add_text(e, person_name(&mut rng));
            match rng.gen_range(0..9) {
                0..=2 => {} // no treatment
                3 => {
                    // unspecified treatment (empty element)
                    doc.add_element(patient, "treatment");
                }
                4..=6 => {
                    let t = doc.add_element(patient, "treatment");
                    let r = doc.add_element(t, "regular");
                    let m = doc.add_element(r, "med");
                    doc.add_text(m, pick(&mut rng, MEDICATIONS));
                    let b = doc.add_element(r, "bill");
                    doc.add_text(b, rng.gen_range(50..3000).to_string());
                }
                _ => {
                    let t = doc.add_element(patient, "treatment");
                    let x = doc.add_element(t, "experimental");
                    let te = doc.add_element(x, "test");
                    doc.add_text(te, format!("{} {}", pick(&mut rng, WORDS), "trial"));
                    let b = doc.add_element(x, "bill");
                    doc.add_text(b, rng.gen_range(500..5000).to_string());
                }
            }
        }
        let staffinfo = doc.add_element(dept, "staffinfo");
        let staff_count = (patients_per_dept / 4).max(1);
        for _ in 0..staff_count {
            let staff = doc.add_element(staffinfo, "staff");
            let kind = if rng.gen_bool(0.6) { "nurse" } else { "doctor" };
            let member = doc.add_element(staff, kind);
            let e = doc.add_element(member, "sid");
            doc.add_text(e, format!("{sid:04}"));
            sid += 1;
            let e = doc.add_element(member, "name");
            doc.add_text(e, person_name(&mut rng));
            let e = doc.add_element(member, "phone");
            doc.add_text(e, format!("555-{:04}", rng.gen_range(0..10000)));
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_validates_against_figure1() {
        hospital_schema().validate(&figure2_document()).unwrap();
    }

    #[test]
    fn generated_documents_validate() {
        let schema = hospital_schema();
        for seed in [0, 1, 42] {
            let doc = hospital_document(3, 25, seed);
            schema.validate(&doc).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = hospital_document(2, 10, 7);
        let b = hospital_document(2, 10, 7);
        assert_eq!(a.to_xml(), b.to_xml());
        let c = hospital_document(2, 10, 8);
        assert_ne!(a.to_xml(), c.to_xml(), "different seeds differ");
    }

    #[test]
    fn treatment_mix_is_nontrivial() {
        let doc = hospital_document(2, 200, 3);
        let patients = xac_xpath::eval(&doc, &xac_xpath::parse("//patient").unwrap()).len();
        let with_treatment =
            xac_xpath::eval(&doc, &xac_xpath::parse("//patient[treatment]").unwrap()).len();
        let experimental =
            xac_xpath::eval(&doc, &xac_xpath::parse("//patient[.//experimental]").unwrap()).len();
        assert_eq!(patients, 400);
        assert!(with_treatment > 100 && with_treatment < 350, "{with_treatment}");
        assert!(experimental > 30, "{experimental}");
        assert!(experimental < with_treatment);
    }

    #[test]
    fn scales_with_parameters() {
        let small = hospital_document(1, 5, 0).element_count();
        let large = hospital_document(4, 50, 0).element_count();
        assert!(large > small * 10);
    }
}
