//! Seeded fault plans: random-but-replayable failure interleavings.
//!
//! [`FaultPlan`](xac_core::FaultPlan)s are explicit data; this module
//! generates them from the in-repo [`SplitMix64`] stream so a single
//! `u64` seed names a whole failure scenario. The same seed always
//! expands to the same specs (the generator draws nothing else), which
//! is what makes `serve-bench --fault-plan seed:42` replayable byte for
//! byte across runs and machines.

use xac_core::{FaultAction, FaultPlan, FaultPoint, FaultSpec, Result};
use xac_xmlgen::SplitMix64;

/// Fault points a seeded plan draws from. `before_restore` is excluded
/// on purpose: arming it turns every rollback into a quarantine, which
/// would make most seeds terminate the run after the first fault —
/// quarantine scenarios are driven by explicit plans instead.
const SEEDED_POINTS: [FaultPoint; 9] = [
    FaultPoint::BeforeAnnotate,
    FaultPoint::BeforeDelete,
    FaultPoint::AfterDelete,
    FaultPoint::BeforeInsert,
    FaultPoint::AfterInsert,
    FaultPoint::BeforeReannotate,
    FaultPoint::MidReannotate,
    FaultPoint::AfterReannotate,
    FaultPoint::BeforeSnapshot,
];

/// Expand a seed into `faults` one-shot specs over [`SEEDED_POINTS`],
/// each skipping one qualifying arrival per prior spec at the same
/// point (so repeated draws of one point fire at successive arrivals,
/// not all at the first). Startup-time arrivals are spared: points the
/// engine hits while constructing (`before_annotate`,
/// `before_snapshot`) get one extra skip.
pub fn seeded_fault_plan(seed: u64, faults: usize) -> FaultPlan {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut plan = FaultPlan::new();
    let mut drawn_at: std::collections::BTreeMap<&'static str, u32> =
        std::collections::BTreeMap::new();
    for _ in 0..faults {
        let point = SEEDED_POINTS[rng.gen_range(0..SEEDED_POINTS.len())];
        let action = if rng.gen_bool(0.25) { FaultAction::Panic } else { FaultAction::Error };
        let prior = drawn_at.entry(point.name()).or_insert(0);
        let startup_skip = match point {
            FaultPoint::BeforeAnnotate | FaultPoint::BeforeSnapshot => 1,
            _ => 0,
        };
        let mut spec = FaultSpec::once(point, action).skip(*prior + startup_skip);
        if point == FaultPoint::MidReannotate {
            spec = spec.after_sign_writes(rng.gen_range(1..8usize));
        }
        *prior += 1;
        plan = plan.with(spec);
    }
    plan
}

/// Parse a `--fault-plan` argument: either `seed:<u64>[x<count>]`
/// (expanded through [`seeded_fault_plan`]; default count 3) or an
/// explicit [`FaultPlan::parse`] spec string.
pub fn fault_plan_from_arg(arg: &str) -> Result<FaultPlan> {
    if let Some(rest) = arg.strip_prefix("seed:") {
        let (seed_text, count) = match rest.split_once('x') {
            Some((s, n)) => (
                s,
                n.parse::<usize>().map_err(|_| {
                    xac_core::Error::System(format!("bad fault count in `{arg}`"))
                })?,
            ),
            None => (rest, 3),
        };
        let seed = seed_text.parse::<u64>().map_err(|_| {
            xac_core::Error::System(format!("bad fault seed in `{arg}`"))
        })?;
        Ok(seeded_fault_plan(seed, count))
    } else {
        FaultPlan::parse(arg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        for seed in [0u64, 1, 42, 0xdead_beef] {
            assert_eq!(seeded_fault_plan(seed, 5), seeded_fault_plan(seed, 5));
        }
        assert_ne!(seeded_fault_plan(1, 5), seeded_fault_plan(2, 5));
    }

    #[test]
    fn seeded_plans_never_arm_before_restore() {
        for seed in 0..64u64 {
            let plan = seeded_fault_plan(seed, 8);
            assert_eq!(plan.specs().len(), 8);
            assert!(plan
                .specs()
                .iter()
                .all(|s| s.point != xac_core::FaultPoint::BeforeRestore));
        }
    }

    #[test]
    fn arg_parsing_accepts_seeds_and_explicit_specs() {
        assert_eq!(fault_plan_from_arg("seed:42").unwrap(), seeded_fault_plan(42, 3));
        assert_eq!(fault_plan_from_arg("seed:42x7").unwrap(), seeded_fault_plan(42, 7));
        assert!(fault_plan_from_arg("seed:many").is_err());
        assert!(fault_plan_from_arg("seed:1xfew").is_err());
        let explicit = fault_plan_from_arg("after_delete:panic").unwrap();
        assert_eq!(explicit.specs().len(), 1);
        assert!(fault_plan_from_arg("bogus_point").is_err());
    }
}
