//! The durability layer: crash-consistent guarded updates over
//! `xac-store` (DESIGN.md §4i).
//!
//! A [`Durability`] pairs one write-ahead [`Wal`] with one
//! [`SignPageStore`] and composes them into the commit protocol the
//! engine runs inside each guarded transaction:
//!
//! 1. truncate any dead tail left by an earlier failure
//!    ([`Wal::abort_to_last_commit`] — cleanup is lazy, so the on-disk
//!    state at a crash instant *is* the crash state);
//! 2. append the structural operation record, then one
//!    `SignSet`/`SignClear` record per sign-map difference;
//! 3. append the `Commit` boundary and fsync — **the durability
//!    point**;
//! 4. write the same differences into the slotted pages and flush the
//!    dirty ones — O(dirty pages), the durable checkpoint that replaces
//!    the full-image clone of the non-durable engine.
//!
//! Failures before step 3 fail the transaction (the engine's
//! degradation ladder rolls the backend back by replaying the log);
//! failures after step 3 are *absorbed* — the commit is durable and
//! recovery repairs the pages from the log. The four storage fault
//! points ([`FaultPoint::STORAGE`]) land exactly on those seams:
//! `wal_mid_record` and `wal_before_commit` pre-commit,
//! `page_torn_write` and `checkpoint_mid_flush` post-commit.
//!
//! The very first annotation is logged as the log's first transaction
//! (`Meta` + the full sign map + `Commit`), so recovery never re-runs
//! annotation: it reloads the document, replays the structural
//! operations in order, folds the sign records into one map, and
//! applies it wholesale via [`Backend::apply_sign_state`].

use std::collections::BTreeMap;
use std::path::PathBuf;
use xac_core::{
    injected_panic_message, Backend, Error, FaultAction, FaultPlan, FaultPoint, Result, System,
};
use xac_store::{PageStore, PagerStats, SignPageStore, StoreError, Wal, WalRecord, WalStats};

/// Where and how the engine persists (CLI: `--data-dir`, `--wal`).
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the log and page files (created if absent).
    pub data_dir: PathBuf,
    /// Fsync on every commit (`--wal sync`, the default) or leave
    /// durability to the OS (`--wal nosync`).
    pub sync: bool,
    /// Buffer-pool capacity of the page store, in pages.
    pub pool_pages: usize,
}

impl DurabilityConfig {
    /// A config with the default knobs (`sync`, 64-page pool).
    pub fn new(data_dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig { data_dir: data_dir.into(), sync: true, pool_pages: 64 }
    }

    /// The write-ahead log file.
    pub fn wal_path(&self) -> PathBuf {
        self.data_dir.join("xmlac.wal")
    }

    /// The slotted-page sign-store file.
    pub fn pages_path(&self) -> PathBuf {
        self.data_dir.join("signs.pages")
    }
}

/// Wrap an `xac-store` failure as the core's structured storage error.
pub(crate) fn storage_error(e: StoreError) -> Error {
    Error::Storage { source_kind: e.kind.name().to_string(), context: e.context }
}

/// True when the log at `config.wal_path()` holds at least one
/// committed transaction — the boot-vs-recover decision. Opening the
/// log also truncates any torn tail, so a crash during the very first
/// (initial-annotation) transaction correctly reads as "no history"
/// and boots fresh.
pub(crate) fn has_committed_history(config: &DurabilityConfig) -> Result<bool> {
    if !config.wal_path().exists() {
        return Ok(false);
    }
    let (_, records) = Wal::open(&config.wal_path()).map_err(storage_error)?;
    Ok(!records.is_empty())
}

/// Partition a fault plan into (storage specs, everything else) — the
/// storage points are fired by [`Durability`] around its own WAL/page
/// writes, the rest arm the usual
/// [`FaultingBackend`](xac_core::FaultingBackend) decorator. Same shape
/// as the net layer's client/server plan split.
pub fn split_storage_plan(plan: &FaultPlan) -> (FaultPlan, FaultPlan) {
    let mut storage = FaultPlan::new();
    let mut rest = FaultPlan::new();
    for spec in plan.specs() {
        if spec.point.is_storage() {
            storage.push(spec.clone());
        } else {
            rest.push(spec.clone());
        }
    }
    (storage, rest)
}

/// A replayable structural operation, mirroring the WAL's `Delete` /
/// `Insert` records. Paths travel as their XPath spellings (the
/// [`Display`](std::fmt::Display) of a parsed path re-parses to an
/// equivalent path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoggedOp {
    /// A guarded delete of every node the path designates.
    Delete {
        /// XPath spelling of the delete path.
        path: String,
    },
    /// A guarded insert under every node the parent path designates.
    Insert {
        /// XPath spelling of the parent path.
        parent: String,
        /// Element name inserted.
        name: String,
        /// Optional text content.
        text: Option<String>,
    },
}

impl LoggedOp {
    fn to_record(&self) -> WalRecord {
        match self {
            LoggedOp::Delete { path } => WalRecord::Delete { path: path.clone() },
            LoggedOp::Insert { parent, name, text } => WalRecord::Insert {
                parent: parent.clone(),
                name: name.clone(),
                text: text.clone(),
            },
        }
    }

    /// Re-apply this operation to a freshly loaded backend. Replay is
    /// deterministic: both stores assign ids sequentially, so the same
    /// operation sequence over the same document reproduces the same
    /// id space the sign records refer to.
    fn replay(&self, b: &mut dyn Backend) -> Result<()> {
        match self {
            LoggedOp::Delete { path } => {
                b.delete(&xac_xpath::parse(path)?)?;
            }
            LoggedOp::Insert { parent, name, text } => {
                b.insert(&xac_xpath::parse(parent)?, name, text.as_deref())?;
            }
        }
        Ok(())
    }
}

/// The sign-map difference one transaction commits, precomputed by the
/// caller so the logging/flushing cost measured by the benchmarks is
/// the storage cost alone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SignDiff {
    /// Ids whose sign is new or changed.
    pub set: Vec<(i64, char)>,
    /// Ids no longer present (their element was removed).
    pub clear: Vec<i64>,
}

impl SignDiff {
    /// The difference taking `old` to `new`.
    pub fn between(old: &BTreeMap<i64, char>, new: &BTreeMap<i64, char>) -> SignDiff {
        let mut diff = SignDiff::default();
        for (&id, &sign) in new {
            if old.get(&id) != Some(&sign) {
                diff.set.push((id, sign));
            }
        }
        for &id in old.keys() {
            if !new.contains_key(&id) {
                diff.clear.push(id);
            }
        }
        diff
    }

    /// Number of entries the diff touches.
    pub fn len(&self) -> usize {
        self.set.len() + self.clear.len()
    }

    /// True when the transaction changed no signs.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty() && self.clear.is_empty()
    }
}

/// What a reopen found and repaired; surfaced by
/// [`ServeEngine::recovery`](crate::ServeEngine::recovery) and printed
/// by the CLI on restart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Backend tag from the log's `Meta` record.
    pub backend: String,
    /// Annotate-mode tag from the log's `Meta` record.
    pub mode: String,
    /// Structural operations replayed.
    pub ops_replayed: usize,
    /// Entries in the recovered sign map.
    pub sign_entries: usize,
    /// Epoch of the last committed transaction.
    pub last_epoch: u64,
    /// Torn/uncommitted bytes truncated from the log tail.
    pub wal_truncated_bytes: u64,
    /// Pages that failed their checksum and were rebuilt from the log.
    pub torn_pages_repaired: usize,
    /// Page entries changed while reconciling pages to the log's map.
    pub page_entries_repaired: usize,
}

/// One WAL + one page store + the in-memory mirrors recovery and
/// rollback rebuild from. Owned by the engine behind a mutex; every
/// method runs under the writer lock's serialization.
pub struct Durability {
    wal: Wal,
    store: SignPageStore,
    /// Sign map as of the last committed transaction.
    committed_signs: BTreeMap<i64, char>,
    /// Every committed structural operation, in commit order.
    ops: Vec<LoggedOp>,
    /// Epoch of the last committed transaction.
    last_epoch: u64,
    /// Armed storage fault points (see [`FaultPoint::STORAGE`]).
    plan: FaultPlan,
    sync: bool,
}

impl Durability {
    /// Fresh boot: the backend was just loaded and fully annotated;
    /// log that state as the first transaction (`Meta` + the full sign
    /// map + `Commit`) and materialize it onto pages. Errors if the
    /// log already holds committed transactions — that state must go
    /// through [`Durability::recover`] instead.
    pub fn fresh(
        config: &DurabilityConfig,
        plan: FaultPlan,
        backend: &str,
        mode: &str,
        signs: &BTreeMap<i64, char>,
        epoch: u64,
    ) -> Result<Durability> {
        let (mut wal, records) = Wal::open(&config.wal_path()).map_err(storage_error)?;
        if !records.is_empty() {
            return Err(Error::Storage {
                source_kind: "corrupt".to_string(),
                context: format!(
                    "refusing to overwrite populated wal {} ({} committed records); \
                     recover it or remove the data dir",
                    config.wal_path().display(),
                    records.len()
                ),
            });
        }
        wal.append(&WalRecord::Meta { backend: backend.to_string(), mode: mode.to_string() })
            .map_err(storage_error)?;
        for (&id, &sign) in signs {
            wal.append(&WalRecord::SignSet { id, sign }).map_err(storage_error)?;
        }
        wal.commit(epoch, config.sync).map_err(storage_error)?;
        let mut store =
            SignPageStore::open(&config.pages_path(), config.pool_pages).map_err(storage_error)?;
        store.reconcile(signs).map_err(storage_error)?;
        store.flush().map_err(storage_error)?;
        Ok(Durability {
            wal,
            store,
            committed_signs: signs.clone(),
            ops: Vec::new(),
            last_epoch: epoch,
            plan,
            sync: config.sync,
        })
    }

    /// Reopen after a crash (or clean shutdown — same path): fold the
    /// committed records, check the `Meta` backend tag against the
    /// backend being recovered, reload the document, replay the
    /// structural operations, apply the folded sign map wholesale, and
    /// repair the pages to it.
    pub fn recover(
        config: &DurabilityConfig,
        plan: FaultPlan,
        system: &System,
        b: &mut dyn Backend,
    ) -> Result<(Durability, RecoveryReport)> {
        let (wal, records) = Wal::open(&config.wal_path()).map_err(storage_error)?;
        let wal_truncated_bytes = wal.stats().truncated_bytes;
        let mut meta: Option<(String, String)> = None;
        let mut signs = BTreeMap::new();
        let mut ops = Vec::new();
        let mut last_epoch = 0u64;
        for record in records {
            match record {
                WalRecord::Meta { backend, mode } => {
                    meta.get_or_insert((backend, mode));
                }
                WalRecord::Delete { path } => ops.push(LoggedOp::Delete { path }),
                WalRecord::Insert { parent, name, text } => {
                    ops.push(LoggedOp::Insert { parent, name, text })
                }
                WalRecord::SignSet { id, sign } => {
                    signs.insert(id, sign);
                }
                WalRecord::SignClear { id } => {
                    signs.remove(&id);
                }
                WalRecord::Commit { epoch } => last_epoch = epoch,
            }
        }
        let Some((backend_tag, mode_tag)) = meta else {
            return Err(Error::Storage {
                source_kind: "corrupt".to_string(),
                context: format!(
                    "wal {} holds no Meta record; cannot recover",
                    config.wal_path().display()
                ),
            });
        };
        if backend_tag != b.name() {
            return Err(Error::Storage {
                source_kind: "corrupt".to_string(),
                context: format!(
                    "wal written by backend `{backend_tag}` cannot recover backend `{}`",
                    b.name()
                ),
            });
        }
        system.load(b)?;
        for op in &ops {
            op.replay(b)?;
        }
        b.apply_sign_state(&signs, last_epoch)?;
        let mut store =
            SignPageStore::open(&config.pages_path(), config.pool_pages).map_err(storage_error)?;
        let torn_pages_repaired = store.torn_pages().len();
        let page_entries_repaired = store.reconcile(&signs).map_err(storage_error)?;
        store.flush().map_err(storage_error)?;
        let report = RecoveryReport {
            backend: backend_tag,
            mode: mode_tag,
            ops_replayed: ops.len(),
            sign_entries: signs.len(),
            last_epoch,
            wal_truncated_bytes,
            torn_pages_repaired,
            page_entries_repaired,
        };
        Ok((
            Durability {
                wal,
                store,
                committed_signs: signs,
                ops,
                last_epoch,
                plan,
                sync: config.sync,
            },
            report,
        ))
    }

    /// Fire a pre-commit storage fault: error or panic, exactly like
    /// [`FaultingBackend`](xac_core::FaultingBackend)'s points, so the
    /// engine's ladder handles both the same way.
    fn fail(point: FaultPoint, action: FaultAction) -> Result<()> {
        xac_obs::instant(&format!("fault:{}", point.name()));
        match action {
            FaultAction::Error => Err(Error::FaultInjected { point: point.name().to_string() }),
            FaultAction::Panic => panic!("{}", injected_panic_message(point)),
        }
    }

    /// Commit one guarded transaction: the protocol in the [module
    /// docs](self). `new_signs` is the backend's post-update
    /// [`Backend::sign_state`]; `epoch` its post-update epoch. On an
    /// `Ok(diff)` the transaction is durable (even if a post-commit
    /// fault was absorbed); on `Err` it is not, and the caller must
    /// roll the backend back ([`Durability::rebuild_backend`]).
    pub fn log_txn(
        &mut self,
        op: &LoggedOp,
        new_signs: &BTreeMap<i64, char>,
        epoch: u64,
    ) -> Result<SignDiff> {
        // Lazy cleanup: a previous transaction that failed pre-commit
        // left its records as a dead tail. Dropping it here (not at
        // failure time) keeps the on-disk state at a crash instant
        // identical to what the crash left.
        self.wal.abort_to_last_commit().map_err(storage_error)?;
        let record = op.to_record();
        if let Some(action) = self.plan.fire_at(FaultPoint::WalMidRecord) {
            // Crash mid-append: half a frame, then the failure.
            self.wal.append_torn(&record).map_err(storage_error)?;
            Durability::fail(FaultPoint::WalMidRecord, action)?;
        }
        self.wal.append(&record).map_err(storage_error)?;
        let diff = SignDiff::between(&self.committed_signs, new_signs);
        for &(id, sign) in &diff.set {
            self.wal.append(&WalRecord::SignSet { id, sign }).map_err(storage_error)?;
        }
        for &id in &diff.clear {
            self.wal.append(&WalRecord::SignClear { id }).map_err(storage_error)?;
        }
        if let Some(action) = self.plan.fire_at(FaultPoint::WalBeforeCommit) {
            // Every record written, no commit boundary: a reopen must
            // treat the whole transaction as an implicit abort.
            Durability::fail(FaultPoint::WalBeforeCommit, action)?;
        }
        {
            // The durability point itself — the commit record + fsync —
            // gets its own span so a trace shows how much of a guarded
            // update was spent waiting on stable storage.
            let _span = xac_obs::span("wal.commit");
            self.wal.commit(epoch, self.sync).map_err(storage_error)?;
        }
        // -- durability point: everything below is write-behind --
        self.committed_signs = new_signs.clone();
        self.ops.push(op.clone());
        self.last_epoch = epoch;
        for &(id, sign) in &diff.set {
            self.store.put_sign(id, sign).map_err(storage_error)?;
        }
        for &id in &diff.clear {
            self.store.clear_sign(id).map_err(storage_error)?;
        }
        // Post-commit faults are absorbed (the action is ignored, like
        // the net layer's client points): the commit is durable and the
        // pages are repaired from the log on reopen.
        if self.plan.fire_at(FaultPoint::PageTornWrite).is_some() {
            xac_obs::instant("fault:page_torn_write");
            self.store.tear_first_dirty_page().map_err(storage_error)?;
            return Ok(diff);
        }
        if self.plan.fire_at(FaultPoint::CheckpointMidFlush).is_some() {
            xac_obs::instant("fault:checkpoint_mid_flush");
            self.store.flush_capped(1).map_err(storage_error)?;
            return Ok(diff);
        }
        self.store.flush().map_err(storage_error)?;
        Ok(diff)
    }

    /// The rollback rung, durable edition: truncate the dead log tail,
    /// then rebuild the backend from the log's mirrors — reload the
    /// document, replay every committed operation, apply the committed
    /// sign map — and repair the pages. Replaces the non-durable
    /// engine's clone-image [`Backend::restore`].
    pub fn rebuild_backend(&mut self, system: &System, b: &mut dyn Backend) -> Result<()> {
        self.wal.abort_to_last_commit().map_err(storage_error)?;
        system.load(b)?;
        for op in &self.ops {
            op.replay(b)?;
        }
        b.apply_sign_state(&self.committed_signs, self.last_epoch)?;
        self.store.reconcile(&self.committed_signs).map_err(storage_error)?;
        self.store.flush().map_err(storage_error)?;
        Ok(())
    }

    /// Sign map as of the last committed transaction.
    pub fn committed_signs(&self) -> &BTreeMap<i64, char> {
        &self.committed_signs
    }

    /// Epoch of the last committed transaction.
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Committed structural operations, in commit order.
    pub fn ops(&self) -> &[LoggedOp] {
        &self.ops
    }

    /// The log's counters.
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// The page store's buffer-pool counters.
    pub fn pager_stats(&self) -> PagerStats {
        self.store.pager_stats()
    }

    /// The durable page image's sign map (for audits; the pages lag the
    /// log only between a commit and its flush).
    pub fn page_sign_state(&self) -> BTreeMap<i64, char> {
        self.store.sign_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_diff_between_maps() {
        let old: BTreeMap<i64, char> = [(1, '+'), (2, '-'), (3, '+')].into();
        let new: BTreeMap<i64, char> = [(1, '+'), (2, '+'), (4, '-')].into();
        let diff = SignDiff::between(&old, &new);
        assert_eq!(diff.set, vec![(2, '+'), (4, '-')]);
        assert_eq!(diff.clear, vec![3]);
        assert_eq!(diff.len(), 3);
        assert!(SignDiff::between(&new, &new).is_empty());
    }

    #[test]
    fn storage_plan_split_partitions_by_point() {
        let plan = FaultPlan::parse(
            "wal_before_commit:panic,after_delete,page_torn_write,net_slow_client",
        )
        .unwrap();
        let (storage, rest) = split_storage_plan(&plan);
        assert_eq!(storage.specs().len(), 2);
        assert!(storage.specs().iter().all(|s| s.point.is_storage()));
        assert_eq!(rest.specs().len(), 2);
        assert!(rest.specs().iter().all(|s| !s.point.is_storage()));
    }
}
