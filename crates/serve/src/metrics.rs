//! Per-request observability for the serving engine, built on the
//! `xac-obs` primitives.
//!
//! Everything here is lock-free: counters and histogram buckets are
//! plain relaxed atomics (see [`xac_obs::metrics`]), updated on the
//! request path and read by [`Metrics::snapshot`] without stopping
//! traffic. Relaxed ordering is sufficient because each counter is
//! independent — a snapshot is a statistically consistent view, not a
//! transactional one — while the accounting identity
//! `allowed + denied + errors == issued` holds exactly once traffic has
//! quiesced (each request increments exactly one outcome counter before
//! returning).
//!
//! The instruments stay *engine-local* rather than going through the
//! global `xac_obs` registry: each [`crate::ServeEngine`] owns its
//! `Metrics`, so the accounting identity holds per engine no matter how
//! many engines share the process. [`MetricsSnapshot::to_prometheus`]
//! exports a snapshot in the shared exposition format.

use std::time::Duration;
use xac_obs::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// A fixed-bucket log₂ latency histogram over microseconds. A thin
/// facade over [`xac_obs::Histogram`] keeping the µs-denominated
/// recording API.
#[derive(Default)]
pub struct LatencyHistogram {
    inner: Histogram,
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, d: Duration) {
        self.inner.observe(d.as_micros() as u64);
    }

    fn freeze(&self) -> LatencySummary {
        let s = self.inner.snapshot();
        LatencySummary { count: s.count, total_us: s.total, buckets: s.buckets }
    }
}

/// Immutable histogram state inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed latencies, in microseconds.
    pub total_us: u64,
    /// Log₂ bucket counts; bucket `i` holds latencies in
    /// `[2^(i-1), 2^i)` µs.
    pub buckets: Vec<u64>,
}

impl LatencySummary {
    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }

    /// The q-quantile (`0.0 ..= 1.0`) in microseconds, estimated with
    /// sub-bucket linear interpolation
    /// ([`HistogramSnapshot::quantile`]), rounded to the nearest
    /// microsecond; 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.to_histogram_snapshot().quantile(q).round() as u64
    }

    fn to_histogram_snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            total: self.total_us,
            buckets: self.buckets.clone(),
            exemplars: vec![],
        }
    }
}

/// Live engine counters. One instance per [`crate::ServeEngine`];
/// updated from any thread, summarized by [`Metrics::snapshot`].
#[derive(Default)]
pub struct Metrics {
    pub(crate) reads_allowed: Counter,
    pub(crate) reads_denied: Counter,
    pub(crate) read_errors: Counter,
    pub(crate) updates_applied: Counter,
    pub(crate) updates_denied: Counter,
    pub(crate) update_errors: Counter,
    pub(crate) full_fallbacks: Counter,
    pub(crate) faults_injected: Counter,
    pub(crate) rollbacks: Counter,
    pub(crate) quarantines: Counter,
    pub(crate) rejected_while_quarantined: Counter,
    pub(crate) sign_writes: Counter,
    pub(crate) epochs_published: Counter,
    pub(crate) current_epoch: Gauge,
    pub(crate) read_latency: LatencyHistogram,
    pub(crate) update_latency: LatencyHistogram,
}

impl Metrics {
    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            reads_allowed: self.reads_allowed.get(),
            reads_denied: self.reads_denied.get(),
            read_errors: self.read_errors.get(),
            updates_applied: self.updates_applied.get(),
            updates_denied: self.updates_denied.get(),
            update_errors: self.update_errors.get(),
            full_fallbacks: self.full_fallbacks.get(),
            faults_injected: self.faults_injected.get(),
            rollbacks: self.rollbacks.get(),
            quarantines: self.quarantines.get(),
            rejected_while_quarantined: self.rejected_while_quarantined.get(),
            sign_writes: self.sign_writes.get(),
            epochs_published: self.epochs_published.get(),
            current_epoch: self.current_epoch.get(),
            read_latency: self.read_latency.freeze(),
            update_latency: self.update_latency.freeze(),
        }
    }
}

/// Frozen engine counters, safe to ship across threads, print, or
/// serialize. Produced by [`crate::ServeEngine::metrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Read requests answered `Granted`.
    pub reads_allowed: u64,
    /// Read requests answered `Denied`.
    pub reads_denied: u64,
    /// Read requests that failed (e.g. malformed XPath).
    pub read_errors: u64,
    /// Guarded updates that ran (write access granted).
    pub updates_applied: u64,
    /// Guarded updates refused by the write-access check.
    pub updates_denied: u64,
    /// Guarded updates that errored.
    pub update_errors: u64,
    /// Partial re-annotations that fell back to full re-annotation.
    pub full_fallbacks: u64,
    /// Injected faults observed by the engine (errors returned or
    /// panics caught that carried a fault-injection payload). Zero in
    /// production configurations.
    pub faults_injected: u64,
    /// Updates rolled back by restoring the last-good checkpoint (the
    /// ladder rung past full re-annotation).
    pub rollbacks: u64,
    /// Times the engine entered read-only quarantine (at most 1 today —
    /// quarantine is terminal).
    pub quarantines: u64,
    /// Guarded updates rejected because the engine was quarantined.
    pub rejected_while_quarantined: u64,
    /// Total sign writes performed by applied updates.
    pub sign_writes: u64,
    /// Snapshots published since the engine started (including the
    /// initial one).
    pub epochs_published: u64,
    /// Epoch of the currently published snapshot.
    pub current_epoch: u64,
    /// Read-path latencies.
    pub read_latency: LatencySummary,
    /// Update-path latencies (lock wait included — that *is* the
    /// serialization cost being observed).
    pub update_latency: LatencySummary,
}

impl MetricsSnapshot {
    /// Total read requests issued (every one lands in exactly one
    /// outcome counter).
    pub fn reads_issued(&self) -> u64 {
        self.reads_allowed + self.reads_denied + self.read_errors
    }

    /// Total guarded updates issued: every guarded call lands in
    /// exactly one of applied / denied / errors /
    /// rejected-while-quarantined.
    pub fn updates_issued(&self) -> u64 {
        self.updates_applied
            + self.updates_denied
            + self.update_errors
            + self.rejected_while_quarantined
    }

    /// Render a compact human-readable report.
    pub fn render(&self) -> String {
        format!(
            "reads: {} ({} allowed, {} denied, {} errors) \
             mean {:.1}µs p50 ~{}µs p99 ~{}µs p999 ~{}µs\n\
             updates: {} ({} applied, {} denied, {} errors, {} full-reannotation fallbacks) \
             mean {:.1}µs\n\
             recovery: {} faults injected, {} rollbacks, {} quarantines, \
             {} rejected while quarantined\n\
             epoch {} ({} published), {} sign writes",
            self.reads_issued(),
            self.reads_allowed,
            self.reads_denied,
            self.read_errors,
            self.read_latency.mean_us(),
            self.read_latency.quantile_us(0.5),
            self.read_latency.quantile_us(0.99),
            self.read_latency.quantile_us(0.999),
            self.updates_issued(),
            self.updates_applied,
            self.updates_denied,
            self.update_errors,
            self.full_fallbacks,
            self.update_latency.mean_us(),
            self.faults_injected,
            self.rollbacks,
            self.quarantines,
            self.rejected_while_quarantined,
            self.current_epoch,
            self.epochs_published,
            self.sign_writes,
        )
    }

    /// Render the snapshot in Prometheus text exposition format, every
    /// sample labeled with the serving backend.
    pub fn to_prometheus(&self, backend: &str) -> String {
        use std::fmt::Write as _;
        use xac_obs::export::{write_counter, write_gauge, write_histogram};
        use xac_obs::sample_key;

        let mut out = String::new();
        let b = [("backend", backend)];
        let with_outcome = |family: &str, outcome: &str| {
            sample_key(family, &[("backend", backend), ("outcome", outcome)])
        };

        let _ = writeln!(out, "# TYPE xac_serve_reads_total counter");
        write_counter(&mut out, &with_outcome("xac_serve_reads_total", "allowed"), self.reads_allowed);
        write_counter(&mut out, &with_outcome("xac_serve_reads_total", "denied"), self.reads_denied);
        write_counter(&mut out, &with_outcome("xac_serve_reads_total", "error"), self.read_errors);

        let _ = writeln!(out, "# TYPE xac_serve_updates_total counter");
        write_counter(&mut out, &with_outcome("xac_serve_updates_total", "applied"), self.updates_applied);
        write_counter(&mut out, &with_outcome("xac_serve_updates_total", "denied"), self.updates_denied);
        write_counter(&mut out, &with_outcome("xac_serve_updates_total", "error"), self.update_errors);
        write_counter(
            &mut out,
            &with_outcome("xac_serve_updates_total", "rejected_while_quarantined"),
            self.rejected_while_quarantined,
        );

        for (family, value) in [
            ("xac_serve_full_fallbacks_total", self.full_fallbacks),
            ("xac_serve_faults_injected_total", self.faults_injected),
            ("xac_serve_rollbacks_total", self.rollbacks),
            ("xac_serve_quarantines_total", self.quarantines),
            ("xac_serve_sign_writes_total", self.sign_writes),
            ("xac_serve_epochs_published_total", self.epochs_published),
        ] {
            let _ = writeln!(out, "# TYPE {family} counter");
            write_counter(&mut out, &sample_key(family, &b), value);
        }

        let _ = writeln!(out, "# TYPE xac_serve_current_epoch gauge");
        write_gauge(&mut out, &sample_key("xac_serve_current_epoch", &b), self.current_epoch);

        let _ = writeln!(out, "# TYPE xac_serve_read_latency_us histogram");
        write_histogram(
            &mut out,
            &sample_key("xac_serve_read_latency_us", &b),
            &self.read_latency.to_histogram_snapshot(),
        );
        let _ = writeln!(out, "# TYPE xac_serve_update_latency_us histogram");
        write_histogram(
            &mut out,
            &sample_key("xac_serve_update_latency_us", &b),
            &self.update_latency.to_histogram_snapshot(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for us in [0u64, 1, 3, 8, 100, 1000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.freeze();
        assert_eq!(s.count, 6);
        assert_eq!(s.total_us, 1112);
        assert_eq!(s.buckets.iter().sum::<u64>(), 6);
        // 0µs lands in bucket 0 (the `< 1µs` bucket).
        assert_eq!(s.buckets[0], 1);
        // Interpolated quantiles: q=0 pins the histogram's minimum
        // (bucket 0 holds only the value 0), q=1 its bucket ceiling.
        assert_eq!(s.quantile_us(0.0), 0);
        assert!(s.quantile_us(1.0) >= 1000);
        assert!(s.quantile_us(0.999) >= s.quantile_us(0.5));
        assert!(s.mean_us() > 100.0);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = LatencyHistogram::default().freeze();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_us(), 0.0);
        assert_eq!(s.quantile_us(0.99), 0);
    }

    #[test]
    fn snapshot_accounting_identity() {
        let m = Metrics::default();
        m.reads_allowed.fetch_add(3, Ordering::Relaxed);
        m.reads_denied.fetch_add(2, Ordering::Relaxed);
        m.read_errors.fetch_add(1, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.reads_issued(), 6);
        assert_eq!(s.updates_issued(), 0);
        assert!(s.render().contains("6 "));
    }

    #[test]
    fn prometheus_export_validates_and_carries_outcomes() {
        let m = Metrics::default();
        m.reads_allowed.add(5);
        m.updates_applied.add(2);
        m.current_epoch.set(3);
        m.read_latency.record(Duration::from_micros(42));
        let text = m.snapshot().to_prometheus("native/xml");
        xac_obs::validate_prometheus(&text).expect("exposition must validate");
        assert!(text.contains("xac_serve_reads_total{backend=\"native/xml\",outcome=\"allowed\"} 5"));
        assert!(text.contains("xac_serve_current_epoch{backend=\"native/xml\"} 3"));
        assert!(text.contains("xac_serve_read_latency_us_count{backend=\"native/xml\"} 1"));
        assert!(text.contains("le=\"+Inf\""));
    }
}
