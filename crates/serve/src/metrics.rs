//! Per-request observability for the serving engine.
//!
//! Everything here is lock-free: counters and histogram buckets are
//! plain relaxed atomics, updated on the request path and read by
//! [`Metrics::snapshot`] without stopping traffic. Relaxed ordering is
//! sufficient because each counter is independent — a snapshot is a
//! statistically consistent view, not a transactional one — while the
//! accounting identity `allowed + denied + errors == issued` holds
//! exactly once traffic has quiesced (each request increments exactly
//! one outcome counter before returning).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` counts requests
/// with `latency_us` in `[2^(i-1), 2^i)` (bucket 0 is `< 1 µs`), so 40
/// buckets cover past 15 minutes — far beyond any request we serve.
const BUCKETS: usize = 40;

/// A fixed-bucket log₂ latency histogram over microseconds.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    total_us: AtomicU64,
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros() as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn freeze(&self) -> LatencySummary {
        let buckets: Vec<u64> =
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        LatencySummary {
            count: self.count.load(Ordering::Relaxed),
            total_us: self.total_us.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Immutable histogram state inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed latencies, in microseconds.
    pub total_us: u64,
    /// Log₂ bucket counts; bucket `i` holds latencies in
    /// `[2^(i-1), 2^i)` µs.
    pub buckets: Vec<u64>,
}

impl LatencySummary {
    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }

    /// Upper bound (µs) of the bucket containing the q-quantile
    /// (`0.0 ..= 1.0`), or 0 when empty. Bucket resolution makes this an
    /// upper estimate within a factor of two — enough for the serving
    /// dashboards the paper's workload motivates.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return 1u64 << i;
            }
        }
        1u64 << (self.buckets.len() - 1)
    }
}

/// Live engine counters. One instance per [`crate::ServeEngine`];
/// updated from any thread, summarized by [`Metrics::snapshot`].
#[derive(Default)]
pub struct Metrics {
    pub(crate) reads_allowed: AtomicU64,
    pub(crate) reads_denied: AtomicU64,
    pub(crate) read_errors: AtomicU64,
    pub(crate) updates_applied: AtomicU64,
    pub(crate) updates_denied: AtomicU64,
    pub(crate) update_errors: AtomicU64,
    pub(crate) full_fallbacks: AtomicU64,
    pub(crate) faults_injected: AtomicU64,
    pub(crate) rollbacks: AtomicU64,
    pub(crate) quarantines: AtomicU64,
    pub(crate) rejected_while_quarantined: AtomicU64,
    pub(crate) sign_writes: AtomicU64,
    pub(crate) epochs_published: AtomicU64,
    pub(crate) current_epoch: AtomicU64,
    pub(crate) read_latency: LatencyHistogram,
    pub(crate) update_latency: LatencyHistogram,
}

impl Metrics {
    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            reads_allowed: self.reads_allowed.load(Ordering::Relaxed),
            reads_denied: self.reads_denied.load(Ordering::Relaxed),
            read_errors: self.read_errors.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            updates_denied: self.updates_denied.load(Ordering::Relaxed),
            update_errors: self.update_errors.load(Ordering::Relaxed),
            full_fallbacks: self.full_fallbacks.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            rejected_while_quarantined: self
                .rejected_while_quarantined
                .load(Ordering::Relaxed),
            sign_writes: self.sign_writes.load(Ordering::Relaxed),
            epochs_published: self.epochs_published.load(Ordering::Relaxed),
            current_epoch: self.current_epoch.load(Ordering::Relaxed),
            read_latency: self.read_latency.freeze(),
            update_latency: self.update_latency.freeze(),
        }
    }
}

/// Frozen engine counters, safe to ship across threads, print, or
/// serialize. Produced by [`crate::ServeEngine::metrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Read requests answered `Granted`.
    pub reads_allowed: u64,
    /// Read requests answered `Denied`.
    pub reads_denied: u64,
    /// Read requests that failed (e.g. malformed XPath).
    pub read_errors: u64,
    /// Guarded updates that ran (write access granted).
    pub updates_applied: u64,
    /// Guarded updates refused by the write-access check.
    pub updates_denied: u64,
    /// Guarded updates that errored.
    pub update_errors: u64,
    /// Partial re-annotations that fell back to full re-annotation.
    pub full_fallbacks: u64,
    /// Injected faults observed by the engine (errors returned or
    /// panics caught that carried a fault-injection payload). Zero in
    /// production configurations.
    pub faults_injected: u64,
    /// Updates rolled back by restoring the last-good checkpoint (the
    /// ladder rung past full re-annotation).
    pub rollbacks: u64,
    /// Times the engine entered read-only quarantine (at most 1 today —
    /// quarantine is terminal).
    pub quarantines: u64,
    /// Guarded updates rejected because the engine was quarantined.
    pub rejected_while_quarantined: u64,
    /// Total sign writes performed by applied updates.
    pub sign_writes: u64,
    /// Snapshots published since the engine started (including the
    /// initial one).
    pub epochs_published: u64,
    /// Epoch of the currently published snapshot.
    pub current_epoch: u64,
    /// Read-path latencies.
    pub read_latency: LatencySummary,
    /// Update-path latencies (lock wait included — that *is* the
    /// serialization cost being observed).
    pub update_latency: LatencySummary,
}

impl MetricsSnapshot {
    /// Total read requests issued (every one lands in exactly one
    /// outcome counter).
    pub fn reads_issued(&self) -> u64 {
        self.reads_allowed + self.reads_denied + self.read_errors
    }

    /// Total guarded updates issued: every guarded call lands in
    /// exactly one of applied / denied / errors /
    /// rejected-while-quarantined.
    pub fn updates_issued(&self) -> u64 {
        self.updates_applied
            + self.updates_denied
            + self.update_errors
            + self.rejected_while_quarantined
    }

    /// Render a compact human-readable report.
    pub fn render(&self) -> String {
        format!(
            "reads: {} ({} allowed, {} denied, {} errors) \
             mean {:.1}µs p50 ≤{}µs p99 ≤{}µs\n\
             updates: {} ({} applied, {} denied, {} errors, {} full-reannotation fallbacks) \
             mean {:.1}µs\n\
             recovery: {} faults injected, {} rollbacks, {} quarantines, \
             {} rejected while quarantined\n\
             epoch {} ({} published), {} sign writes",
            self.reads_issued(),
            self.reads_allowed,
            self.reads_denied,
            self.read_errors,
            self.read_latency.mean_us(),
            self.read_latency.quantile_us(0.5),
            self.read_latency.quantile_us(0.99),
            self.updates_issued(),
            self.updates_applied,
            self.updates_denied,
            self.update_errors,
            self.full_fallbacks,
            self.update_latency.mean_us(),
            self.faults_injected,
            self.rollbacks,
            self.quarantines,
            self.rejected_while_quarantined,
            self.current_epoch,
            self.epochs_published,
            self.sign_writes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for us in [0u64, 1, 3, 8, 100, 1000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.freeze();
        assert_eq!(s.count, 6);
        assert_eq!(s.total_us, 1112);
        assert_eq!(s.buckets.iter().sum::<u64>(), 6);
        // 0µs lands in bucket 0 (the `< 1µs` bucket).
        assert_eq!(s.buckets[0], 1);
        assert!(s.quantile_us(0.0) >= 1);
        assert!(s.quantile_us(1.0) >= 1000);
        assert!(s.mean_us() > 100.0);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = LatencyHistogram::default().freeze();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_us(), 0.0);
        assert_eq!(s.quantile_us(0.99), 0);
    }

    #[test]
    fn snapshot_accounting_identity() {
        let m = Metrics::default();
        m.reads_allowed.fetch_add(3, Ordering::Relaxed);
        m.reads_denied.fetch_add(2, Ordering::Relaxed);
        m.read_errors.fetch_add(1, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.reads_issued(), 6);
        assert_eq!(s.updates_issued(), 0);
        assert!(s.render().contains("6 "));
    }
}
