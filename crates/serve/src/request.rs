//! The unified request/response surface of the serving engine.
//!
//! Every way of asking the engine something — the typed in-process
//! methods, the `xmlac` CLI, and the `xac-net` wire protocol — reduces
//! to one [`Request`] handed to [`ServeEngine::serve`], which answers
//! with one [`Response`]. The wire layer is a pure codec over these two
//! enums: it never re-implements dispatch, access checks, or metrics
//! accounting, so an answer over a socket is byte-identical to the same
//! request served in process (the loopback differential suite holds
//! this on all three backends).
//!
//! [`Role`] is the requester identity the network handshake carries:
//! admission is decided per (role, request-kind) by [`Role::allows`],
//! applied by [`ServeEngine::serve_as`] before dispatch — in process
//! and over the wire alike, so a denied-role answer is the same bytes
//! on both paths.
//!
//! [`ServeEngine::serve`]: crate::ServeEngine::serve
//! [`ServeEngine::serve_as`]: crate::ServeEngine::serve_as

use xac_core::Error;

/// The requester identity carried by the network auth handshake (and by
/// [`crate::ServeEngine::serve_as`] in process). Ordered by privilege.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Role {
    /// May issue reads (`Query`, `Status`).
    Reader,
    /// Everything a reader may, plus guarded updates.
    Writer,
    /// Everything a writer may, plus engine metrics.
    Admin,
}

impl Role {
    /// All roles, least privileged first.
    pub const ALL: [Role; 3] = [Role::Reader, Role::Writer, Role::Admin];

    /// The accepted spellings, in [`Role::ALL`] order.
    pub const VALID_NAMES: [&'static str; 3] = ["reader", "writer", "admin"];

    /// The canonical spelling (handshake wire form and CLI `--role`).
    pub fn name(self) -> &'static str {
        match self {
            Role::Reader => "reader",
            Role::Writer => "writer",
            Role::Admin => "admin",
        }
    }

    /// Parse a spelling. Unknown names get the shared
    /// [`Error::UnknownName`] shape (`unknown role `x` (valid roles:
    /// …)`), same as `BackendKind` and `AnnotateMode`.
    pub fn parse(input: &str) -> Result<Role, Error> {
        Role::ALL
            .into_iter()
            .find(|r| r.name() == input)
            .ok_or_else(|| Error::UnknownName {
                what: "role",
                input: input.to_string(),
                valid: Role::VALID_NAMES.join(", "),
            })
    }

    /// Whether this role may issue `req` at all. Deny decisions made
    /// here never reach the engine: the request is answered with a
    /// [`ResponseError`] of kind [`ErrorKind::RoleDenied`] and no
    /// engine counter moves.
    pub fn allows(self, req: &Request) -> bool {
        match req {
            Request::Query { .. } | Request::Status => true,
            Request::Delete { .. } | Request::Insert { .. } => self >= Role::Writer,
            Request::Metrics
            | Request::Scrape
            | Request::Tail { .. }
            | Request::Analyze { .. } => self >= Role::Admin,
        }
    }
}

impl std::fmt::Display for Role {
    /// The canonical spelling; round-trips through [`Role::parse`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Role {
    type Err = Error;

    fn from_str(s: &str) -> Result<Role, Error> {
        Role::parse(s)
    }
}

/// One request to the serving engine. Paths travel as source text (the
/// wire form); the engine parses them, so a malformed path is answered
/// with a typed [`ErrorKind::Parse`] error rather than failing the
/// transport.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Request {
    /// All-or-nothing read (§4): granted iff every selected node is
    /// accessible at the published snapshot.
    Query {
        /// XPath source text.
        query: String,
    },
    /// Access-controlled delete (§8).
    Delete {
        /// XPath source text designating the nodes to delete.
        path: String,
    },
    /// Access-controlled insert (§8).
    Insert {
        /// XPath source text designating the parent nodes.
        parent: String,
        /// Element name to insert.
        name: String,
        /// Optional text content.
        text: Option<String>,
    },
    /// Engine status: backend, epoch, accessible count, quarantine.
    Status,
    /// The engine's metrics report (admin only).
    Metrics,
    /// Prometheus text exposition of the engine's metrics plus the
    /// process-global registry — the telemetry plane's pull endpoint,
    /// served over the wire (admin only).
    Scrape,
    /// The most recent `n` flight-recorder records (admin only).
    Tail {
        /// How many records to return (capped by the ring's capacity).
        n: u32,
    },
    /// Static analysis of the engine's live policy (admin only): the
    /// XA001–XA005 lint passes, optionally followed by verified repair
    /// synthesis. The engine's own policy is never mutated — repairs
    /// are advisory, returned as a unified diff.
    Analyze {
        /// Treat warnings as gating when computing the exit code.
        deny_warnings: bool,
        /// Also run the repair synthesizer.
        fix: bool,
    },
}

impl Request {
    /// Convenience constructor for a read.
    pub fn query(q: impl Into<String>) -> Request {
        Request::Query { query: q.into() }
    }

    /// Convenience constructor for a guarded delete.
    pub fn delete(path: impl Into<String>) -> Request {
        Request::Delete { path: path.into() }
    }

    /// Convenience constructor for a guarded insert.
    pub fn insert(
        parent: impl Into<String>,
        name: impl Into<String>,
        text: Option<String>,
    ) -> Request {
        Request::Insert { parent: parent.into(), name: name.into(), text }
    }

    /// Convenience constructor for a flight-recorder tail.
    pub fn tail(n: u32) -> Request {
        Request::Tail { n }
    }

    /// Short verb for logs and tables.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Query { .. } => "query",
            Request::Delete { .. } => "delete",
            Request::Insert { .. } => "insert",
            Request::Status => "status",
            Request::Metrics => "metrics",
            Request::Scrape => "scrape",
            Request::Tail { .. } => "tail",
            Request::Analyze { .. } => "analyze",
        }
    }
}

/// What went wrong, as a closed vocabulary shared by the in-process
/// path and the wire's typed error frames. The CLI maps kinds to exit
/// codes (quarantined 3, fault-injected 4, role-denied 7, the rest 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorKind {
    /// The request carried a malformed XPath.
    Parse,
    /// The session's role may not issue this request kind.
    RoleDenied,
    /// The per-role token bucket was empty (wire layer only).
    RateLimited,
    /// The engine is in read-only quarantine.
    Quarantined,
    /// An injected fault surfaced without being absorbed.
    FaultInjected,
    /// Transport-level violation (bad frame, handshake failure). Only
    /// produced by the wire layer.
    Protocol,
    /// The server is draining for shutdown.
    Shutdown,
    /// Anything else.
    Internal,
}

impl ErrorKind {
    /// Every kind, in wire-code order.
    pub const ALL: [ErrorKind; 8] = [
        ErrorKind::Parse,
        ErrorKind::RoleDenied,
        ErrorKind::RateLimited,
        ErrorKind::Quarantined,
        ErrorKind::FaultInjected,
        ErrorKind::Protocol,
        ErrorKind::Shutdown,
        ErrorKind::Internal,
    ];

    /// Stable one-byte wire code.
    pub fn code(self) -> u8 {
        match self {
            ErrorKind::Parse => 1,
            ErrorKind::RoleDenied => 2,
            ErrorKind::RateLimited => 3,
            ErrorKind::Quarantined => 4,
            ErrorKind::FaultInjected => 5,
            ErrorKind::Protocol => 6,
            ErrorKind::Shutdown => 7,
            ErrorKind::Internal => 8,
        }
    }

    /// Inverse of [`ErrorKind::code`].
    pub fn from_code(code: u8) -> Option<ErrorKind> {
        ErrorKind::ALL.into_iter().find(|k| k.code() == code)
    }

    /// The canonical spelling.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::RoleDenied => "role_denied",
            ErrorKind::RateLimited => "rate_limited",
            ErrorKind::Quarantined => "quarantined",
            ErrorKind::FaultInjected => "fault_injected",
            ErrorKind::Protocol => "protocol",
            ErrorKind::Shutdown => "shutdown",
            ErrorKind::Internal => "internal",
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One answer from the serving engine. Every [`Request`] produces
/// exactly one `Response`; failures are data (`Response::Error`), never
/// transport errors, so the wire layer can stay a codec.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Response {
    /// Answer to a [`Request::Query`].
    Decision {
        /// All-or-nothing outcome.
        granted: bool,
        /// Nodes the query selected (regardless of outcome).
        nodes: u64,
        /// Epoch of the snapshot that answered.
        epoch: u64,
    },
    /// Answer to a guarded [`Request::Delete`] / [`Request::Insert`].
    Update {
        /// False when the write-access check refused the update.
        applied: bool,
        /// Elements removed (deletes).
        removed: u64,
        /// Elements inserted (inserts).
        inserted: u64,
        /// Sign writes the re-annotation performed.
        sign_writes: u64,
        /// Nodes the refused guard decision selected; 0 when applied.
        denied_nodes: u64,
        /// Epoch after the update (unchanged when denied).
        epoch: u64,
    },
    /// Answer to a [`Request::Status`].
    Status {
        /// The engine's backend name, e.g. `native/xml`.
        backend: String,
        /// Published epoch.
        epoch: u64,
        /// Accessible-node count at that epoch.
        accessible: u64,
        /// True once the engine is read-only.
        quarantined: bool,
    },
    /// Answer to a [`Request::Metrics`].
    Metrics {
        /// The engine's rendered metrics report
        /// ([`crate::MetricsSnapshot::render`]).
        rendered: String,
    },
    /// Answer to a [`Request::Scrape`]: the engine's metrics plus the
    /// process-global registry in Prometheus text exposition format.
    Scrape {
        /// The exposition text (validates under
        /// [`xac_obs::validate_prometheus`]).
        exposition: String,
    },
    /// Answer to a [`Request::Tail`]: recent flight records, oldest
    /// first.
    Tail {
        /// The records.
        records: Vec<xac_obs::FlightRecord>,
    },
    /// Answer to a [`Request::Analyze`].
    Analysis {
        /// The `analyze` exit-code contract for the live policy (0
        /// clean, 5 errors, 6 warnings under `deny_warnings`).
        exit_code: u8,
        /// The diagnostic report, JSON-rendered.
        report_json: String,
        /// Verified repairs the synthesizer accepted (0 without `fix`).
        repairs: u32,
        /// Unified diff of the advisory repairs, when `fix` found any.
        diff: Option<String>,
    },
    /// The request failed; `kind` is the closed classification.
    Error {
        /// What went wrong.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Build the typed error answer for an engine [`Error`].
    pub fn from_error(e: &Error) -> Response {
        let kind = match e {
            Error::XPath(_) => ErrorKind::Parse,
            Error::Quarantined { .. } => ErrorKind::Quarantined,
            Error::FaultInjected { .. } => ErrorKind::FaultInjected,
            _ => ErrorKind::Internal,
        };
        Response::Error { kind, message: e.to_string() }
    }

    /// True when the response reports a failure.
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error { .. })
    }

    /// The error kind, when the response is one.
    pub fn error_kind(&self) -> Option<ErrorKind> {
        match self {
            Response::Error { kind, .. } => Some(*kind),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_parsing_round_trips_and_reports_valid_names() {
        for role in Role::ALL {
            assert_eq!(Role::parse(role.name()).unwrap(), role);
            assert_eq!(role.to_string().parse::<Role>().unwrap(), role);
        }
        let err = Role::parse("root").unwrap_err();
        assert_eq!(
            err.to_string(),
            "system error: unknown role `root` (valid roles: reader, writer, admin)"
        );
    }

    #[test]
    fn role_admission_matrix() {
        let query = Request::query("//a");
        let delete = Request::delete("//a");
        let insert = Request::insert("//a", "b", None);
        let status = Request::Status;
        let metrics = Request::Metrics;
        for role in Role::ALL {
            assert!(role.allows(&query));
            assert!(role.allows(&status));
        }
        assert!(!Role::Reader.allows(&delete));
        assert!(!Role::Reader.allows(&insert));
        assert!(Role::Writer.allows(&delete));
        assert!(Role::Writer.allows(&insert));
        assert!(!Role::Reader.allows(&metrics));
        assert!(!Role::Writer.allows(&metrics));
        assert!(Role::Admin.allows(&metrics));
        // The telemetry plane and the policy linter are admin-gated
        // like `Metrics`.
        for req in [
            Request::Scrape,
            Request::tail(8),
            Request::Analyze { deny_warnings: true, fix: true },
        ] {
            assert!(!Role::Reader.allows(&req), "{}", req.verb());
            assert!(!Role::Writer.allows(&req), "{}", req.verb());
            assert!(Role::Admin.allows(&req), "{}", req.verb());
        }
        assert_eq!(Request::Scrape.verb(), "scrape");
        assert_eq!(Request::tail(8).verb(), "tail");
    }

    #[test]
    fn error_kind_codes_round_trip() {
        for kind in ErrorKind::ALL {
            assert_eq!(ErrorKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(ErrorKind::from_code(0), None);
        assert_eq!(ErrorKind::from_code(255), None);
    }

    #[test]
    fn engine_errors_map_to_typed_kinds() {
        let parse = Error::XPath("bad".into());
        assert_eq!(Response::from_error(&parse).error_kind(), Some(ErrorKind::Parse));
        let q = Error::Quarantined { last_good_epoch: 3, cause: "x".into() };
        assert_eq!(Response::from_error(&q).error_kind(), Some(ErrorKind::Quarantined));
        let fi = Error::FaultInjected { point: "after_delete".into() };
        assert_eq!(Response::from_error(&fi).error_kind(), Some(ErrorKind::FaultInjected));
        let sys = Error::System("x".into());
        assert_eq!(Response::from_error(&sys).error_kind(), Some(ErrorKind::Internal));
        assert!(Response::from_error(&sys).is_error());
    }
}
