//! `xmlac` — command-line front end to the access-control system.
//!
//! ```text
//! xmlac check       --schema h.dtd --doc d.xml
//! xmlac optimize    --policy p.pol [--schema h.dtd]
//! xmlac shred       --schema h.dtd --doc d.xml [--out d.sql]
//! xmlac annotate    --schema h.dtd --policy p.pol --doc d.xml [--backend native|row|column]
//! xmlac query       --schema h.dtd --policy p.pol --doc d.xml --query "//patient" [...]
//! xmlac update      --schema h.dtd --policy p.pol --doc d.xml --delete "//treatment" [--query "//patient"]
//! xmlac serve-bench --schema h.dtd --policy p.pol --doc d.xml --query "//patient/name" \
//!                   [--readers 4] [--reads 200] [--delete XPATH] [--fault-plan SPEC|seed:N[xK]]
//! xmlac analyze     --policy p.pol [--schema h.dtd] [--doc d.xml] \
//!                   [--format text|json] [--deny warn] [--audit-updates N]
//! ```
//!
//! Schemas are DTD files (the Figure 1 subset), policies use the
//! `xac-policy` text format, documents are plain XML.
//!
//! Exit codes: 0 success, 2 usage or system error, 3 the serving engine
//! ended in read-only quarantine, 4 an injected fault surfaced without
//! being absorbed by the degradation ladder, 5 `analyze` found errors,
//! 6 `analyze --deny warn` found warnings.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;
use xac_core::{AnnotateMode, Backend, System};
use xac_policy::Policy;
use xac_serve::{BackendKind, ServeEngine};
use xac_xml::{parse_dtd, Document, Schema};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("xmlac: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}

/// A CLI failure with the exit code it maps to. Plain `String` errors
/// (usage, I/O, parse) convert at code 2; structured core errors keep
/// their classification so scripts can branch on quarantine (3) vs an
/// unabsorbed injected fault (4).
struct CliError {
    message: String,
    code: u8,
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError { message, code: 2 }
    }
}

impl From<xac_core::Error> for CliError {
    fn from(e: xac_core::Error) -> Self {
        let code = match &e {
            xac_core::Error::Quarantined { .. } => 3,
            xac_core::Error::FaultInjected { .. } => 4,
            _ => 2,
        };
        CliError { message: e.to_string(), code }
    }
}

type CliResult<T> = Result<T, CliError>;

struct Args {
    command: String,
    options: BTreeMap<String, String>,
    /// `--query` may repeat.
    queries: Vec<String>,
    /// Bare (non-flag) tokens. Only the `obs` command takes them (its
    /// verb); everywhere else they are rejected with the historical
    /// usage error.
    positionals: Vec<String>,
}

fn parse_args() -> CliResult<Args> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut options = BTreeMap::new();
    let mut queries = Vec::new();
    let mut positionals = Vec::new();
    while let Some(flag) = argv.next() {
        let Some(key) = flag.strip_prefix("--") else {
            positionals.push(flag);
            continue;
        };
        let key = key.to_string();
        let value = argv
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        if key == "query" {
            queries.push(value);
        } else {
            options.insert(key, value);
        }
    }
    Ok(Args { command, options, queries, positionals })
}

fn usage() -> String {
    "usage: xmlac <check|optimize|shred|annotate|query|update|view|audit|analyze|serve-bench|obs|vm> \
     [--schema F] [--policy F] [--doc F] [--backend native|row|column] \
     [--annotate-mode paper|batched|compiled] \
     [--query XPATH]... [--delete XPATH] [--insert PARENT:NAME[:TEXT]] \
     [--mode prune|promote] [--readers N] [--reads N] [--out F] \
     [--fault-plan SPEC|seed:N[xK]] \
     [--trace-out F] [--metrics-out F]\n\
     analyze --policy F [--schema F] [--doc F] [--format text|json] \
     [--deny warn] [--audit-updates N] [--out F]\n\
     obs dump  --schema F --policy F --doc F [--query XPATH]... [--delete XPATH] \
     [--out F] [--trace-out F]\n\
     obs check [--metrics F] [--trace F]\n\
     vm dump   --policy F --schema F [--out F]"
        .to_string()
}

impl Args {
    fn required(&self, key: &str) -> CliResult<&str> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing --{key}\n{}", usage()).into())
    }

    fn schema(&self) -> CliResult<Schema> {
        let path = self.required("schema")?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read schema `{path}`: {e}"))?;
        parse_dtd(&text).map_err(|e| format!("schema `{path}`: {e}").into())
    }

    fn policy(&self) -> CliResult<Policy> {
        let path = self.required("policy")?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read policy `{path}`: {e}"))?;
        Policy::parse(&text).map_err(|e| format!("policy `{path}`: {e}").into())
    }

    fn doc(&self) -> CliResult<Document> {
        let path = self.required("doc")?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read document `{path}`: {e}"))?;
        Document::parse_str(&text).map_err(|e| format!("document `{path}`: {e}").into())
    }

    fn annotate_mode(&self) -> CliResult<AnnotateMode> {
        match self.options.get("annotate-mode") {
            None => Ok(AnnotateMode::default()),
            // The structured core error lists the valid modes.
            Some(value) => AnnotateMode::parse(value).map_err(CliError::from),
        }
    }

    fn backend_kind(&self) -> CliResult<BackendKind> {
        let spelling = self.options.get("backend").map(String::as_str).unwrap_or("native");
        BackendKind::parse(spelling).map_err(CliError::from)
    }

    fn backend(&self) -> CliResult<Box<dyn Backend + Send>> {
        Ok(self.backend_kind()?.make(self.annotate_mode()?))
    }

    fn count(&self, key: &str, default: usize) -> CliResult<usize> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} needs a positive integer, found `{v}`").into()),
        }
    }

    fn build_system(&self) -> CliResult<System> {
        System::builder(self.schema()?, self.policy()?, self.doc()?)
            .annotate_mode(self.annotate_mode()?)
            .build()
            .map_err(CliError::from)
    }
}

fn run() -> CliResult<()> {
    let args = parse_args()?;
    if args.command != "obs" && args.command != "vm" {
        if let Some(stray) = args.positionals.first() {
            return Err(format!("expected a --flag, found `{stray}`").into());
        }
    }
    match args.command.as_str() {
        "check" => check(&args),
        "optimize" => optimize(&args),
        "shred" => shred(&args),
        "annotate" => annotate(&args),
        "query" => query(&args),
        "update" => update(&args),
        "view" => view(&args),
        "audit" => audit(&args),
        "analyze" => analyze(&args),
        "serve-bench" => serve_bench(&args),
        "obs" => obs(&args),
        "vm" => vm(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage()).into()),
    }
}

fn check(args: &Args) -> CliResult<()> {
    let schema = args.schema()?;
    let doc = args.doc()?;
    schema.validate(&doc).map_err(|e| e.to_string())?;
    println!(
        "ok: {} elements, {} nodes, height {}, conforms to schema rooted at <{}>",
        doc.element_count(),
        doc.len(),
        doc.height(),
        schema.root()
    );
    Ok(())
}

fn optimize(args: &Args) -> CliResult<()> {
    let policy = args.policy()?;
    let report = match args.schema() {
        Ok(schema) => xac_core::optimizer::optimize_with_schema(&policy, &schema),
        Err(_) => xac_core::optimizer::optimize(&policy),
    };
    if report.removed.is_empty() {
        eprintln!("# no redundant rules");
    } else {
        eprintln!("# removed: {}", report.removed.join(", "));
    }
    print!("{}", report.optimized.to_text());
    Ok(())
}

fn shred(args: &Args) -> CliResult<()> {
    let schema = args.schema()?;
    let doc = args.doc()?;
    let mapping = xac_shrex::Mapping::derive(&schema).map_err(|e| e.to_string())?;
    let sql = xac_shrex::shred_to_sql(&doc, &mapping, '-').map_err(|e| e.to_string())?;
    let output = format!("{}{}", mapping.ddl(), sql);
    match args.options.get("out") {
        Some(path) => {
            std::fs::write(path, &output).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {} bytes to {path}", output.len());
        }
        None => print!("{output}"),
    }
    Ok(())
}

fn build_system(args: &Args) -> CliResult<(System, Box<dyn Backend + Send>)> {
    let system = args.build_system()?;
    let mut backend = args.backend()?;
    system.load(backend.as_mut()).map_err(|e| e.to_string())?;
    system.annotate(backend.as_mut()).map_err(|e| e.to_string())?;
    Ok((system, backend))
}

fn annotate(args: &Args) -> CliResult<()> {
    let (system, mut backend) = build_system(args)?;
    let accessible = backend.accessible_count().map_err(|e| e.to_string())?;
    let total = system.prepared().doc.element_count();
    println!(
        "annotated on {}: {accessible}/{total} nodes accessible ({:.1}%), policy `{}` rules after optimization: {}",
        backend.name(),
        100.0 * accessible as f64 / total as f64,
        system.original_policy().len(),
        system.policy().len(),
    );
    Ok(())
}

fn query(args: &Args) -> CliResult<()> {
    if args.queries.is_empty() {
        return Err(format!("query needs at least one --query\n{}", usage()).into());
    }
    let (system, mut backend) = build_system(args)?;
    let mut denied = 0;
    for q in &args.queries {
        let d = system.request(backend.as_mut(), q).map_err(|e| e.to_string())?;
        println!(
            "{:<7} {} ({} nodes)",
            if d.granted() { "GRANTED" } else { "DENIED" },
            q,
            d.node_count()
        );
        if !d.granted() {
            denied += 1;
        }
    }
    if denied > 0 {
        eprintln!("# {denied}/{} requests denied", args.queries.len());
    }
    Ok(())
}

fn update(args: &Args) -> CliResult<()> {
    let (system, mut backend) = build_system(args)?;
    if let Some(expr) = args.options.get("delete") {
        let path = xac_xpath::parse(expr).map_err(|e| e.to_string())?;
        let outcome = system
            .apply_update(backend.as_mut(), &path)
            .map_err(|e| e.to_string())?;
        println!(
            "deleted {} elements; triggered rules {:?}; {} sign writes",
            outcome.removed_elements,
            outcome.plan.triggered_ids(),
            outcome.sign_writes
        );
    }
    if let Some(spec) = args.options.get("insert") {
        let mut parts = spec.splitn(3, ':');
        let parent = parts.next().filter(|s| !s.is_empty()).ok_or(
            "--insert takes PARENT_XPATH:NAME[:TEXT]".to_string(),
        )?;
        let name = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or("--insert takes PARENT_XPATH:NAME[:TEXT]".to_string())?;
        let text = parts.next();
        let path = xac_xpath::parse(parent).map_err(|e| e.to_string())?;
        let outcome = system
            .apply_insert(backend.as_mut(), &path, name, text)
            .map_err(|e| e.to_string())?;
        println!(
            "inserted {} <{name}> elements; triggered rules {:?}; {} sign writes",
            outcome.inserted_elements,
            outcome.plan.triggered_ids(),
            outcome.sign_writes
        );
    }
    if !args.options.contains_key("delete") && !args.options.contains_key("insert") {
        return Err(format!("update needs --delete and/or --insert\n{}", usage()).into());
    }
    for q in &args.queries {
        let d = system.request(backend.as_mut(), q).map_err(|e| e.to_string())?;
        println!(
            "{:<7} {} ({} nodes)",
            if d.granted() { "GRANTED" } else { "DENIED" },
            q,
            d.node_count()
        );
    }
    Ok(())
}

fn view(args: &Args) -> CliResult<()> {
    let system = args.build_system()?;
    let mode = match args.options.get("mode").map(String::as_str).unwrap_or("prune") {
        "prune" => xac_core::ViewMode::Prune,
        "promote" => xac_core::ViewMode::Promote,
        other => return Err(format!("unknown view mode `{other}` (prune|promote)").into()),
    };
    let view = system.security_view(mode);
    let xml = view.to_pretty_xml();
    match args.options.get("out") {
        Some(path) => {
            std::fs::write(path, &xml).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!(
                "wrote security view ({} of {} elements) to {path}",
                view.element_count(),
                system.prepared().doc.element_count()
            );
        }
        None => print!("{xml}"),
    }
    Ok(())
}

fn audit(args: &Args) -> CliResult<()> {
    let schema = args.schema()?;
    let policy = args.policy()?;
    let doc = args.doc()?;
    schema.validate(&doc).map_err(|e| e.to_string())?;
    let report = xac_policy::analyze(&doc, &policy);
    println!("{:<6} {:<6} {:>8} {:>10}", "rule", "effect", "scope", "exclusive");
    for r in &report.rules {
        println!("{:<6} {:<6} {:>8} {:>10}", r.id, r.effect.to_string(), r.scope, r.exclusive);
    }
    println!(
        "nodes: {} total, {} accessible ({:.1}%), {} conflicted, {} defaulted",
        report.total_nodes,
        report.accessible,
        100.0 * report.coverage(),
        report.conflicted,
        report.defaulted
    );
    if !report.dead_rules().is_empty() {
        println!("dead on this document: {}", report.dead_rules().join(", "));
    }
    Ok(())
}

/// Static policy verification (`xac-analyze`).
///
/// Runs the D1–D5 diagnostic passes over `--policy`, schema-aware when
/// `--schema` is given, and additionally replays the dynamic
/// trigger-soundness audit against `--doc` on all three backends when a
/// document is supplied. Exit code 0 when clean, 5 when any error-level
/// diagnostic is present, 6 when `--deny warn` is set and warnings
/// remain.
fn analyze(args: &Args) -> CliResult<()> {
    let policy_path = args.required("policy")?.to_string();
    let source = std::fs::read_to_string(&policy_path)
        .map_err(|e| format!("cannot read policy `{policy_path}`: {e}"))?;
    let policy = Policy::parse(&source)
        .map_err(|e| format!("policy `{policy_path}`: {e}"))?;
    let schema = match args.options.get("schema") {
        Some(_) => Some(args.schema()?),
        None => None,
    };
    let deny_warnings = match args.options.get("deny").map(String::as_str) {
        None => false,
        Some("warn") | Some("warnings") => true,
        Some(other) => return Err(format!("--deny takes `warn`, found `{other}`").into()),
    };
    let format = args.options.get("format").map(String::as_str).unwrap_or("text");
    if format != "text" && format != "json" {
        return Err(format!("--format takes text|json, found `{format}`").into());
    }
    let mut analyzer = xac_analyze::Analyzer::new(&policy)
        .with_source(&source)
        .named(&policy_path, args.options.get("schema").cloned());
    if let Some(s) = &schema {
        analyzer = analyzer.with_schema(s);
    }
    if args.options.contains_key("audit-updates") {
        analyzer = analyzer.audit_updates(args.count("audit-updates", 16)?);
    }
    let report = match args.options.get("doc") {
        Some(_) => {
            if schema.is_none() {
                return Err("analyze --doc needs --schema (the dynamic audit \
                            replays updates through the full system)"
                    .to_string()
                    .into());
            }
            analyzer.run_with_document(&args.doc()?)
        }
        None => analyzer.run(),
    };
    let rendered = match format {
        "json" => report.to_json(),
        _ => report.to_text(),
    };
    match args.options.get("out") {
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote report to {path}");
        }
        None => print!("{rendered}"),
    }
    match report.exit_code(deny_warnings) {
        0 => Ok(()),
        code => Err(CliError {
            message: format!(
                "policy `{policy_path}`: {} error(s), {} warning(s){}",
                report.count(xac_analyze::Severity::Error),
                report.count(xac_analyze::Severity::Warning),
                if code == 6 { " (denied by --deny warn)" } else { "" }
            ),
            code,
        }),
    }
}

/// Observability front end.
///
/// `obs dump` builds the system, runs the given queries (and an
/// optional `--delete` through the re-annotation path) with tracing on,
/// then prints the global metrics registry — oracle hit/miss counters,
/// backend write totals, per-span aggregates — in Prometheus text
/// exposition to stdout or `--out`. `--trace-out` additionally writes
/// the Chrome trace-event JSON of the run.
///
/// `obs check` validates artifacts produced by `obs dump` or
/// `serve-bench`: `--metrics F` must parse as Prometheus exposition
/// (every line `name{labels} value` or `# TYPE`/`# HELP`), `--trace F`
/// must be well-formed JSON. Invalid files exit 2.
fn obs(args: &Args) -> CliResult<()> {
    let verb = args.positionals.first().map(String::as_str).unwrap_or("dump");
    match verb {
        "dump" => obs_dump(args),
        "check" => obs_check(args),
        other => Err(format!("unknown obs verb `{other}` (dump|check)\n{}", usage()).into()),
    }
}

fn obs_dump(args: &Args) -> CliResult<()> {
    xac_obs::trace::set_enabled(true);
    let (system, mut backend) = build_system(args)?;
    for q in &args.queries {
        system.request(backend.as_mut(), q).map_err(|e| e.to_string())?;
    }
    if let Some(expr) = args.options.get("delete") {
        let path = xac_xpath::parse(expr).map_err(|e| e.to_string())?;
        system
            .apply_update(backend.as_mut(), &path)
            .map_err(|e| e.to_string())?;
    }
    xac_obs::trace::set_enabled(false);
    if let Some(path) = args.options.get("trace-out") {
        let json = xac_obs::chrome_trace(&xac_obs::take_events());
        std::fs::write(path, &json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote trace to {path}");
    }
    let text = xac_obs::prometheus_global();
    match args.options.get("out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote metrics to {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn obs_check(args: &Args) -> CliResult<()> {
    if !args.options.contains_key("metrics") && !args.options.contains_key("trace") {
        return Err(format!("obs check needs --metrics and/or --trace\n{}", usage()).into());
    }
    if let Some(path) = args.options.get("metrics") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read metrics `{path}`: {e}"))?;
        xac_obs::validate_prometheus(&text)
            .map_err(|e| format!("metrics `{path}` invalid: {e}"))?;
        println!("metrics ok: {path} ({} lines)", text.lines().count());
    }
    if let Some(path) = args.options.get("trace") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read trace `{path}`: {e}"))?;
        xac_obs::validate_json(&text).map_err(|e| format!("trace `{path}` invalid: {e}"))?;
        println!("trace ok: {path} ({} bytes)", text.len());
    }
    Ok(())
}

fn vm(args: &Args) -> CliResult<()> {
    let verb = args.positionals.first().map(String::as_str).unwrap_or("dump");
    match verb {
        "dump" => vm_dump(args),
        other => Err(format!("unknown vm verb `{other}` (dump)\n{}", usage()).into()),
    }
}

/// Disassemble the bytecode program the compiled annotate mode runs for
/// this (policy, schema) pair — the same optimized annotation query the
/// backends execute, grouped per element type.
fn vm_dump(args: &Args) -> CliResult<()> {
    let policy = args.policy()?;
    let schema = args.schema()?;
    let optimized = xac_core::optimizer::optimize(&policy).optimized;
    let query = xac_policy::AnnotationQuery::from_policy(&optimized);
    let program = xac_vmc::compile_query(&query, Some(&schema))
        .map_err(|e| format!("annotation query is outside the compilable fragment: {e}"))?;
    let listing = xac_vmc::disassemble(&program, Some(&schema));
    match args.options.get("out") {
        Some(path) => {
            std::fs::write(path, &listing)
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote listing to {path}");
        }
        None => print!("{listing}"),
    }
    Ok(())
}

/// Drive the serving engine: N reader threads issue the given queries
/// against published snapshots while this thread applies guarded
/// updates, then report the engine's metrics. `--fault-plan` arms an
/// injection plan (an explicit spec string or `seed:N[xK]`); a writer
/// error is reported but the run continues so the metrics always print,
/// and the exit code classifies the final state: 3 if the engine ended
/// quarantined, 4 if an injected fault surfaced out of the ladder.
fn serve_bench(args: &Args) -> CliResult<()> {
    if args.queries.is_empty() {
        return Err(format!("serve-bench needs at least one --query\n{}", usage()).into());
    }
    // Tracing goes on before the system is built so the annotate /
    // re-annotate phase spans of engine construction are captured too.
    let tracing = args.options.contains_key("trace-out");
    if tracing {
        xac_obs::trace::set_enabled(true);
    }
    let system = Arc::new(args.build_system()?);
    let kind = args.backend_kind()?;
    let plan = match args.options.get("fault-plan") {
        Some(spec) => xac_serve::faults::fault_plan_from_arg(spec)
            .map_err(|e| format!("--fault-plan `{spec}`: {e}"))?,
        None => xac_core::FaultPlan::new(),
    };
    if !plan.is_exhausted() {
        // Injected panics are caught and classified by the engine; the
        // default hook's report + backtrace would only bury the real
        // output. Organic panics still report normally.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if xac_core::injected_panic_point(info.payload()).is_none() {
                default_hook(info);
            }
        }));
    }
    let engine = Arc::new(ServeEngine::for_kind_with_faults(system, kind, plan)?);
    let readers = args.count("readers", 4)?;
    let reads = args.count("reads", 200)?;
    let paths: Vec<xac_xpath::Path> = args
        .queries
        .iter()
        .map(|q| xac_xpath::parse(q).map_err(|e| format!("--query `{q}`: {e}").into()))
        .collect::<CliResult<_>>()?;
    let delete = match args.options.get("delete") {
        Some(expr) => Some(xac_xpath::parse(expr).map_err(|e| e.to_string())?),
        None => None,
    };
    let mut writer_error: Option<xac_core::Error> = None;
    std::thread::scope(|scope| {
        for _ in 0..readers {
            let engine = Arc::clone(&engine);
            let paths = &paths;
            scope.spawn(move || {
                for i in 0..reads {
                    engine.query(&paths[i % paths.len()]);
                }
            });
        }
        if let Some(update) = &delete {
            match engine.guarded_delete(update) {
                Ok(g) => println!(
                    "writer: guarded delete {} at epoch {}",
                    if g.applied() { "applied" } else { "denied" },
                    engine.epoch()
                ),
                Err(e) => {
                    eprintln!("writer: guarded delete failed: {e}");
                    writer_error = Some(e);
                }
            }
        }
    });
    println!(
        "served {} readers × {} reads on {}",
        readers,
        reads,
        engine.backend_name()
    );
    println!("{}", engine.metrics().render());
    // Telemetry artifacts are written before the exit-code
    // classification below so they exist even for runs that end
    // quarantined or with an unabsorbed fault.
    if tracing {
        xac_obs::trace::set_enabled(false);
    }
    if let Some(path) = args.options.get("trace-out") {
        let json = xac_obs::chrome_trace(&xac_obs::take_events());
        std::fs::write(path, &json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote trace to {path}");
    }
    if let Some(path) = args.options.get("metrics-out") {
        let mut text = engine.metrics().to_prometheus(engine.backend_name());
        text.push_str(&xac_obs::prometheus_global());
        std::fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote metrics to {path}");
    }
    if let Some(cause) = engine.quarantine_cause() {
        return Err(CliError {
            message: format!(
                "engine quarantined (read-only at epoch {}): {cause}",
                engine.epoch()
            ),
            code: 3,
        });
    }
    match writer_error {
        // A rolled-back write: the engine recovered, but the operation
        // was lost — classify it (FaultInjected -> 4) for the caller.
        Some(e) => Err(e.into()),
        None => Ok(()),
    }
}
