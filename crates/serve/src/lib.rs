//! # xac-serve
//!
//! A concurrent serving layer over the **xmlac** access-control system
//! ([`xac_core`]): the deployment shape the paper's evaluation implies
//! but never builds — one annotated store answering many requesters at
//! once while guarded updates re-annotate it.
//!
//! The design splits traffic by mutability:
//!
//! * **Reads** are served from an epoch-stamped, immutable
//!   [`AccessSnapshot`](xac_core::AccessSnapshot) published behind an
//!   `Arc`. A read clones the `Arc` (the only locked instant) and
//!   evaluates entirely against frozen state, so throughput scales with
//!   reader threads and a slow re-annotation never blocks a read.
//! * **Guarded writes** serialize behind a writer lock: access check,
//!   update, partial re-annotation (Trigger, §5.3), then publication of
//!   a new snapshot epoch. Readers switch epochs atomically — no read
//!   ever observes a half-re-annotated store.
//! * **Observability**: every request lands in exactly one outcome
//!   counter and one latency-histogram bucket; [`ServeEngine::metrics`]
//!   freezes them into a [`MetricsSnapshot`].
//! * **One entry point**: every consumer — typed in-process callers,
//!   the CLI, and the `xac-net` wire dispatcher — reduces to a
//!   [`Request`] answered by [`ServeEngine::serve`] with a [`Response`]
//!   (role-gated via [`ServeEngine::serve_as`]), so the network layer
//!   is a pure codec over one audited semantics.
//!
//! ```
//! use std::sync::Arc;
//! use xac_serve::{BackendKind, Request, Response, ServeEngine};
//! use xac_policy::policy::hospital_policy;
//!
//! let schema = xac_core::hospital_schema_for_docs();
//! let doc = xac_xml::Document::parse_str(
//!     "<hospital><dept><patients>\
//!      <patient><psn>1</psn><name>a</name></patient>\
//!      </patients><staffinfo/></dept></hospital>").unwrap();
//! let system = xac_core::System::builder(schema, hospital_policy(), doc)
//!     .build().unwrap();
//! let engine = ServeEngine::for_kind(Arc::new(system), BackendKind::Native).unwrap();
//! match engine.serve(&Request::query("//patient/name")) {
//!     Response::Decision { granted, .. } => assert!(granted),
//!     other => panic!("unexpected response: {other:?}"),
//! }
//! assert_eq!(engine.metrics().reads_issued(), 1);
//! ```

pub mod durable;
pub mod engine;
pub mod faults;
pub mod metrics;
pub mod request;

pub use durable::{
    split_storage_plan, Durability, DurabilityConfig, LoggedOp, RecoveryReport, SignDiff,
};
pub use engine::{BackendKind, ServeCluster, ServeEngine};
pub use faults::seeded_fault_plan;
pub use metrics::{LatencyHistogram, LatencySummary, Metrics, MetricsSnapshot};
pub use request::{ErrorKind, Request, Response, Role};
