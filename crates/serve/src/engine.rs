//! The concurrent serving engine.
//!
//! One [`ServeEngine`] fronts one [`System`] and one annotated
//! [`Backend`] and serves any number of requester threads at once:
//!
//! * **Reads** (`query`, `accessible_count`) never touch the backend.
//!   They clone the currently published [`AccessSnapshot`] (an `Arc`
//!   swap under a momentarily-held lock) and evaluate against that
//!   immutable state — a re-annotation in progress never blocks or
//!   tears a read.
//! * **Writes** (guarded delete/insert, the §8 access-controlled
//!   updates) serialize behind the writer lock. An applied update runs
//!   the paper's partial re-annotation and then *publishes* a fresh
//!   snapshot with the backend's new epoch; a denied update publishes
//!   nothing, so readers cannot observe intermediate sign states —
//!   each epoch is all-or-nothing with respect to each re-annotation.
//! * **Transactions & degradation** (see DESIGN.md §4d): the guarded
//!   critical section runs under `catch_unwind` with a *last-good
//!   checkpoint* always equal to the published snapshot. Failures walk
//!   an escalating ladder — partial re-annotation → full re-annotation
//!   (`full_fallbacks`) → restore the last-good checkpoint
//!   (`rollbacks`) → read-only **quarantine** (`quarantines`): the
//!   engine keeps serving the last published snapshot and rejects
//!   writes with [`Error::Quarantined`]. Lock poisoning is recovered,
//!   never `expect`ed: a poisoned writer lock restores from the
//!   checkpoint, a poisoned snapshot lock is taken over as-is (the
//!   protected value is a complete `Arc` at every instant).

use crate::durable::{
    split_storage_plan, Durability, DurabilityConfig, LoggedOp, RecoveryReport,
};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::request::{ErrorKind, Request, Response, Role};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, LockResult, Mutex, MutexGuard, RwLock};
use std::time::Instant;
use xac_core::{
    injected_panic_point, reannotator, requester, AccessSnapshot, AnnotateMode, Backend,
    Checkpoint, Decision, Error, FaultPlan, FaultingBackend, GuardedUpdate, NativeXmlBackend,
    RelationalBackend, Result, System, UpdateOutcome,
};
use xac_xpath::Path;

/// Recover a possibly-poisoned lock whose protected state is consistent
/// at every observable instant (plain value swaps — no multi-step
/// mutation happens under these locks).
fn unpoison<T>(result: LockResult<T>) -> T {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The storage kinds an engine can front, mirroring the paper's three
/// systems. Parsed from CLI spellings; constructs configured backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Native XML store (the MonetDB/XQuery stand-in).
    Native,
    /// Relational row store (the PostgreSQL stand-in).
    Row,
    /// Relational column store (the MonetDB/SQL stand-in).
    Column,
}

impl BackendKind {
    /// All kinds, in the paper's presentation order.
    pub const ALL: [BackendKind; 3] = [BackendKind::Native, BackendKind::Column, BackendKind::Row];

    /// The accepted spellings, in [`BackendKind::parse`] order.
    pub const VALID_NAMES: [&'static str; 3] = ["native", "row", "column"];

    /// Parse a CLI spelling (`native`, `row`, `column`). Unknown names
    /// get the shared [`Error::UnknownName`](xac_core::Error::UnknownName)
    /// shape, same as `Role` and `AnnotateMode`.
    pub fn parse(input: &str) -> Result<BackendKind> {
        match input {
            "native" => Ok(BackendKind::Native),
            "row" => Ok(BackendKind::Row),
            "column" => Ok(BackendKind::Column),
            other => Err(xac_core::Error::UnknownName {
                what: "backend",
                input: other.to_string(),
                valid: BackendKind::VALID_NAMES.join(", "),
            }),
        }
    }

    /// The CLI spelling.
    pub fn cli_name(self) -> &'static str {
        match self {
            BackendKind::Native => "native",
            BackendKind::Row => "row",
            BackendKind::Column => "column",
        }
    }

    /// Construct an empty backend of this kind, relational ones in the
    /// given annotation write mode.
    pub fn make(self, mode: AnnotateMode) -> Box<dyn Backend + Send> {
        match self {
            BackendKind::Native => Box::new(NativeXmlBackend::with_mode(mode)),
            BackendKind::Row => {
                Box::new(RelationalBackend::with_mode(xac_reldb::StorageKind::Row, mode))
            }
            BackendKind::Column => {
                Box::new(RelationalBackend::with_mode(xac_reldb::StorageKind::Column, mode))
            }
        }
    }
}

impl std::fmt::Display for BackendKind {
    /// The CLI spelling; round-trips through [`BackendKind::parse`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.cli_name())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = xac_core::Error;

    fn from_str(s: &str) -> Result<BackendKind> {
        BackendKind::parse(s)
    }
}

/// A delete or insert, normalized so the guarded write path is one code
/// path (same access check, same plan, same fallback).
enum UpdateOp<'a> {
    Delete(&'a Path),
    Insert { parent: &'a Path, name: &'a str, text: Option<&'a str> },
}

/// What the faultable part of a guarded transaction produced: either a
/// denial (nothing to publish) or everything commit needs, staged while
/// still inside `catch_unwind`.
enum TxnOutcome {
    Denied(GuardedUpdate),
    Ready {
        outcome: UpdateOutcome,
        /// Boxed: a checkpoint holds a full store image, dwarfing the
        /// denied variant. `None` on durable engines — their last-good
        /// state lives in the WAL, so no clone image is staged and the
        /// per-transaction checkpoint cost is the durability layer's
        /// O(dirty pages) flush instead of an O(document) copy.
        checkpoint: Option<Box<Checkpoint>>,
        snapshot: Arc<AccessSnapshot>,
    },
}

/// The concurrent serving engine. See the [module docs](self).
pub struct ServeEngine {
    system: Arc<System>,
    /// The live backend; every guarded update owns it exclusively for
    /// the update + re-annotation + publication critical section.
    writer: Mutex<Box<dyn Backend + Send>>,
    /// The published snapshot. Readers hold the lock only long enough
    /// to clone the `Arc`; the writer only long enough to swap it —
    /// never during re-annotation.
    published: RwLock<Arc<AccessSnapshot>>,
    /// Checkpoint of the backend state behind the published snapshot —
    /// swapped together with `published`, so it always describes the
    /// same state readers are being served. The rollback rung restores
    /// it when an update fails past repair.
    last_good: Mutex<Checkpoint>,
    /// `Some(cause)` once the ladder is exhausted: the engine is
    /// read-only and every guarded update is rejected.
    quarantine: Mutex<Option<String>>,
    /// The WAL + page store when the engine persists (`--data-dir`).
    /// Mutated only under the writer lock's serialization; the mutex
    /// satisfies `Sync` for the read paths that sample its counters.
    durability: Option<Mutex<Durability>>,
    /// What reopen found, when this engine came up via recovery.
    recovery: Option<RecoveryReport>,
    metrics: Metrics,
    backend_name: &'static str,
}

impl ServeEngine {
    /// Stand up an engine: load the system's prepared document into the
    /// backend, annotate it fully (the paper's startup cost), publish
    /// the first snapshot and capture the first last-good checkpoint.
    ///
    /// First publication is idempotent: a transient `snapshot()`
    /// failure is retried once, and the publication counters move
    /// exactly once, after a snapshot actually exists — counting per
    /// *attempt* used to double-count the initial epoch.
    pub fn new(system: Arc<System>, mut backend: Box<dyn Backend + Send>) -> Result<ServeEngine> {
        system.load(backend.as_mut())?;
        system.annotate(backend.as_mut())?;
        ServeEngine::finish(system, backend, None, None)
    }

    /// Shared tail of every constructor: the backend is loaded and
    /// annotated (freshly or via WAL recovery); publish the first
    /// snapshot and capture the first last-good checkpoint.
    fn finish(
        system: Arc<System>,
        mut backend: Box<dyn Backend + Send>,
        durability: Option<Durability>,
        recovery: Option<RecoveryReport>,
    ) -> Result<ServeEngine> {
        use std::sync::atomic::Ordering::Relaxed;
        let metrics = Metrics::default();
        let mut snapshot = None;
        let mut last_err = None;
        for _attempt in 0..2 {
            match backend.snapshot() {
                Ok(s) => {
                    snapshot = Some(Arc::new(s));
                    break;
                }
                Err(e) => {
                    if matches!(e, Error::FaultInjected { .. }) {
                        metrics.faults_injected.fetch_add(1, Relaxed);
                    }
                    last_err = Some(e);
                }
            }
        }
        let Some(snapshot) = snapshot else {
            return Err(last_err.expect("no snapshot implies a recorded error"));
        };
        let last_good = backend.checkpoint()?;
        let backend_name = backend.name();
        metrics.current_epoch.store(snapshot.epoch(), Relaxed);
        metrics.epochs_published.fetch_add(1, Relaxed);
        Ok(ServeEngine {
            system,
            writer: Mutex::new(backend),
            published: RwLock::new(snapshot),
            last_good: Mutex::new(last_good),
            quarantine: Mutex::new(None),
            durability: durability.map(Mutex::new),
            recovery,
            metrics,
            backend_name,
        })
    }

    /// Convenience: build an engine for a [`BackendKind`], honouring the
    /// system's configured [`AnnotateMode`].
    pub fn for_kind(system: Arc<System>, kind: BackendKind) -> Result<ServeEngine> {
        let mode = system.annotate_mode();
        ServeEngine::new(system, kind.make(mode))
    }

    /// Build a **durable** engine persisting under
    /// `config.data_dir` (DESIGN.md §4i). An empty data dir boots
    /// fresh — load, annotate, log the initial state as the WAL's
    /// first transaction; a populated one *recovers* — replay the log,
    /// repair the pages, and come up serving the last committed state
    /// without re-running annotation ([`ServeEngine::recovery`]
    /// reports what was found).
    pub fn durable(
        system: Arc<System>,
        kind: BackendKind,
        config: &DurabilityConfig,
    ) -> Result<ServeEngine> {
        ServeEngine::durable_with_faults(system, kind, config, FaultPlan::new())
    }

    /// [`ServeEngine::durable`] with a fault plan: specs at the storage
    /// points ([`xac_core::FaultPoint::STORAGE`]) arm the durability
    /// layer's crash seams, the rest wrap the backend in a
    /// [`FaultingBackend`] as usual.
    pub fn durable_with_faults(
        system: Arc<System>,
        kind: BackendKind,
        config: &DurabilityConfig,
        plan: FaultPlan,
    ) -> Result<ServeEngine> {
        std::fs::create_dir_all(&config.data_dir).map_err(|e| Error::Storage {
            source_kind: "io".to_string(),
            context: format!("create data dir {}: {e}", config.data_dir.display()),
        })?;
        let (storage_plan, backend_plan) = split_storage_plan(&plan);
        let mode = system.annotate_mode();
        let mut backend: Box<dyn Backend + Send> = if backend_plan.specs().is_empty() {
            kind.make(mode)
        } else {
            Box::new(FaultingBackend::new(kind.make(mode), backend_plan))
        };
        if crate::durable::has_committed_history(config)? {
            let (dur, report) =
                Durability::recover(config, storage_plan, &system, backend.as_mut())?;
            ServeEngine::finish(system, backend, Some(dur), Some(report))
        } else {
            system.load(backend.as_mut())?;
            system.annotate(backend.as_mut())?;
            let signs = backend.sign_state()?;
            let epoch = backend.epoch();
            let dur = Durability::fresh(
                config,
                storage_plan,
                backend.name(),
                mode.name(),
                &signs,
                epoch,
            )?;
            ServeEngine::finish(system, backend, Some(dur), None)
        }
    }

    /// Build an engine whose backend is wrapped in a
    /// [`FaultingBackend`] armed with `plan` — the deterministic
    /// fault-injection deployment used by the recovery tests, the
    /// `fault-recovery` benchmark and `serve-bench --fault-plan`.
    pub fn for_kind_with_faults(
        system: Arc<System>,
        kind: BackendKind,
        plan: FaultPlan,
    ) -> Result<ServeEngine> {
        let mode = system.annotate_mode();
        let faulting = FaultingBackend::new(kind.make(mode), plan);
        ServeEngine::new(system, Box::new(faulting))
    }

    /// The system this engine serves.
    pub fn system(&self) -> &Arc<System> {
        &self.system
    }

    /// Name of the fronted backend.
    pub fn backend_name(&self) -> &'static str {
        self.backend_name
    }

    /// The currently published snapshot. Requests answered against it
    /// stay consistent with each other even if the engine publishes a
    /// newer epoch meanwhile. Served even under quarantine — the whole
    /// point of the last rung is that reads outlive write failures.
    pub fn snapshot(&self) -> Arc<AccessSnapshot> {
        unpoison(self.published.read()).clone()
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Accessible-node count at the published epoch.
    pub fn accessible_count(&self) -> usize {
        self.snapshot().accessible_count()
    }

    /// True once the engine has entered read-only quarantine.
    pub fn quarantined(&self) -> bool {
        unpoison(self.quarantine.lock()).is_some()
    }

    /// Why the engine is quarantined, if it is.
    pub fn quarantine_cause(&self) -> Option<String> {
        unpoison(self.quarantine.lock()).clone()
    }

    /// Frozen copy of the engine's request counters and latency
    /// histograms.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// True when the engine persists through a WAL + page store.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// What reopen found and repaired, when this engine came up by
    /// recovering an existing data dir; `None` on fresh boots and
    /// non-durable engines.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The durability layer's WAL and buffer-pool counters, when the
    /// engine is durable.
    pub fn storage_stats(&self) -> Option<(xac_store::WalStats, xac_store::PagerStats)> {
        let dur = unpoison(self.durability.as_ref()?.lock());
        Some((dur.wal_stats(), dur.pager_stats()))
    }

    /// Run a closure over the durability layer (audits, tests). `None`
    /// on non-durable engines. Serializes with guarded updates only
    /// for the duration of the closure.
    pub fn with_durability<R>(&self, f: impl FnOnce(&mut Durability) -> R) -> Option<R> {
        let mut dur = unpoison(self.durability.as_ref()?.lock());
        Some(f(&mut dur))
    }

    /// Serve one [`Request`] — **the unified entry point**. Every
    /// consumer goes through here (or through the typed shims below,
    /// which share the same audited internals): the `xmlac` CLI, the
    /// `xac-net` wire dispatcher, benchmarks and tests. Dispatch,
    /// access semantics and metrics accounting live in exactly one
    /// place, so an answer over the wire is byte-identical to the same
    /// request served in process.
    ///
    /// Failures are data: a malformed path, a quarantined engine, or a
    /// surfaced fault all come back as [`Response::Error`] with a typed
    /// [`ErrorKind`], never as a transport-level error.
    pub fn serve(&self, req: &Request) -> Response {
        use std::sync::atomic::Ordering::Relaxed;
        match req {
            Request::Query { query } => match xac_xpath::parse(query) {
                Ok(path) => {
                    let (decision, epoch) = self.read_observed(&path);
                    Response::Decision {
                        granted: decision.granted(),
                        nodes: decision.node_count() as u64,
                        epoch,
                    }
                }
                Err(e) => {
                    // Same accounting as the historical `query_str`:
                    // a malformed read is a read error with zero cost.
                    self.metrics.read_errors.fetch_add(1, Relaxed);
                    self.metrics.read_latency.record(std::time::Duration::ZERO);
                    Response::from_error(&e.into())
                }
            },
            Request::Delete { path } => match xac_xpath::parse(path) {
                Ok(p) => self.update_response(self.guarded(UpdateOp::Delete(&p))),
                Err(e) => Response::from_error(&e.into()),
            },
            Request::Insert { parent, name, text } => match xac_xpath::parse(parent) {
                Ok(p) => self.update_response(self.guarded(UpdateOp::Insert {
                    parent: &p,
                    name,
                    text: text.as_deref(),
                })),
                Err(e) => Response::from_error(&e.into()),
            },
            Request::Status => Response::Status {
                backend: self.backend_name.to_string(),
                epoch: self.epoch(),
                accessible: self.accessible_count() as u64,
                quarantined: self.quarantined(),
            },
            Request::Metrics => Response::Metrics { rendered: self.metrics().render() },
            Request::Scrape => Response::Scrape {
                exposition: self.metrics().to_prometheus(self.backend_name)
                    + &xac_obs::prometheus_global(),
            },
            Request::Tail { n } => Response::Tail {
                records: xac_obs::flight_recorder().tail(*n as usize),
            },
            Request::Analyze { deny_warnings, fix } => {
                self.analyze_response(*deny_warnings, *fix)
            }
        }
    }

    /// Lint the engine's live policy (and, with `fix`, synthesize
    /// verified repairs). Purely advisory: the served policy is never
    /// mutated — accepted repairs come back as a unified diff over the
    /// policy's canonical text form.
    fn analyze_response(&self, deny_warnings: bool, fix: bool) -> Response {
        let policy = self.system.original_policy().clone();
        let schema = self.system.schema();
        let source = policy.to_text();
        let mut engine = xac_analyze::IncrementalAnalyzer::new(policy, Some(schema))
            .named("<live policy>", Some("<live schema>".into()));
        if !fix {
            let report = engine.analyze();
            return Response::Analysis {
                exit_code: report.exit_code(deny_warnings),
                report_json: report.to_json(),
                repairs: 0,
                diff: None,
            };
        }
        let cfg = xac_analyze::RepairConfig { deny_warnings, fix_infos: false };
        let outcome =
            xac_analyze::synthesize(&mut engine, &source, "<live policy>", None, &cfg);
        Response::Analysis {
            exit_code: outcome.report.exit_code(deny_warnings),
            report_json: outcome.report.to_json(),
            repairs: outcome.repairs.len() as u32,
            diff: if outcome.diff.is_empty() { None } else { Some(outcome.diff) },
        }
    }

    /// [`ServeEngine::serve`] behind a role-admission gate: the answer
    /// the network layer gives a session authenticated as `role`, and
    /// the in-process equivalent the differential suite compares it
    /// against. A refused request never reaches the engine — no engine
    /// counter moves.
    pub fn serve_as(&self, role: Role, req: &Request) -> Response {
        if !role.allows(req) {
            return Response::Error {
                kind: ErrorKind::RoleDenied,
                message: format!("role `{role}` may not issue `{}` requests", req.verb()),
            };
        }
        self.serve(req)
    }

    /// Fold a guarded-update result into the wire-shaped answer.
    fn update_response(&self, result: Result<GuardedUpdate>) -> Response {
        match result {
            Ok(GuardedUpdate::Applied(o)) => Response::Update {
                applied: true,
                removed: o.removed_elements as u64,
                inserted: o.inserted_elements as u64,
                sign_writes: o.sign_writes as u64,
                denied_nodes: 0,
                epoch: self.epoch(),
            },
            Ok(GuardedUpdate::Denied(d)) => Response::Update {
                applied: false,
                removed: 0,
                inserted: 0,
                sign_writes: 0,
                denied_nodes: d.node_count() as u64,
                epoch: self.epoch(),
            },
            Err(e) => Response::from_error(&e),
        }
    }

    /// The read path shared by [`ServeEngine::serve`] and the typed
    /// shims: answer against the published snapshot, recording outcome
    /// and latency; returns the decision and the epoch it was served
    /// at.
    fn read_observed(&self, path: &Path) -> (Decision, u64) {
        use std::sync::atomic::Ordering::Relaxed;
        let _span = xac_obs::span("serve.read");
        let start = Instant::now();
        let snap = self.snapshot();
        // Compiled deployments answer reads on the bytecode VM against
        // the snapshot's columnar index; decisions are identical to the
        // interpreted path (the equivalence suite holds them so).
        let decision = if self.system.annotate_mode() == AnnotateMode::Compiled {
            snap.query_compiled(path)
        } else {
            snap.query(path)
        };
        self.metrics.read_latency.record(start.elapsed());
        if decision.granted() {
            self.metrics.reads_allowed.fetch_add(1, Relaxed);
        } else {
            self.metrics.reads_denied.fetch_add(1, Relaxed);
        }
        (decision, snap.epoch())
    }

    /// Answer a pre-parsed read request against the published snapshot.
    /// A typed shim over the same audited read path
    /// [`ServeEngine::serve`] uses.
    pub fn query(&self, path: &Path) -> Decision {
        self.read_observed(path).0
    }

    /// Access-controlled delete (§8): refused unless every designated
    /// node is accessible at the *current* backend state; applied
    /// updates re-annotate partially and publish a new epoch. A typed
    /// shim over the same guarded transaction [`ServeEngine::serve`]
    /// runs for [`Request::Delete`], returning the full
    /// [`UpdateOutcome`] (including the re-annotation plan).
    pub fn guarded_delete(&self, update: &Path) -> Result<GuardedUpdate> {
        self.guarded(UpdateOp::Delete(update))
    }

    /// Access-controlled insert (§8): refused unless every designated
    /// parent is accessible. Typed shim over the [`Request::Insert`]
    /// transaction, like [`ServeEngine::guarded_delete`].
    pub fn guarded_insert(
        &self,
        parent: &Path,
        name: &str,
        text: Option<&str>,
    ) -> Result<GuardedUpdate> {
        self.guarded(UpdateOp::Insert { parent, name, text })
    }

    /// Run a closure against the live backend under the writer lock.
    /// For tests and maintenance tasks (sign-state audits); readers
    /// keep serving the published snapshot meanwhile. No snapshot is
    /// republished — mutate through the guarded update path instead.
    /// Errors when writer-lock recovery itself fails (quarantine).
    pub fn with_writer<R>(&self, f: impl FnOnce(&mut dyn Backend) -> R) -> Result<R> {
        let mut writer = self.lock_writer()?;
        Ok(f(writer.as_mut()))
    }

    /// Count an injected fault surfaced as a structured error.
    fn note_fault(&self, e: &Error) {
        if matches!(e, Error::FaultInjected { .. }) {
            self.metrics
                .faults_injected
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Acquire the writer lock, recovering from poison. A poisoned
    /// writer lock means a previous holder panicked mid-mutation, so
    /// the state behind it is unverifiable: restore from the last-good
    /// checkpoint before handing it out (quarantining if even that
    /// fails).
    fn lock_writer(&self) -> Result<MutexGuard<'_, Box<dyn Backend + Send>>> {
        match self.writer.lock() {
            Ok(guard) => Ok(guard),
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                self.writer.clear_poison();
                self.rollback(guard.as_mut(), "writer lock was poisoned")?;
                Ok(guard)
            }
        }
    }

    fn guarded(&self, op: UpdateOp<'_>) -> Result<GuardedUpdate> {
        let _span = xac_obs::span("serve.update");
        let start = Instant::now();
        let result = self.guarded_transaction(&op);
        self.metrics.update_latency.record(start.elapsed());
        result
    }

    /// The transactional critical section. Every call lands in exactly
    /// one of `updates_applied` / `updates_denied` / `update_errors` /
    /// `rejected_while_quarantined`, keeping the accounting identity.
    fn guarded_transaction(&self, op: &UpdateOp<'_>) -> Result<GuardedUpdate> {
        use std::sync::atomic::Ordering::Relaxed;
        if let Some(cause) = self.quarantine_cause() {
            self.metrics.rejected_while_quarantined.fetch_add(1, Relaxed);
            return Err(Error::Quarantined { last_good_epoch: self.epoch(), cause });
        }
        let mut writer = match self.lock_writer() {
            Ok(writer) => writer,
            Err(e) => {
                self.metrics.update_errors.fetch_add(1, Relaxed);
                return Err(e);
            }
        };
        // Everything faultable — the update, the re-annotation, and the
        // checkpoint + snapshot staging — runs under `catch_unwind`, so
        // neither an injected nor an organic panic can poison the lock
        // or escape with the backend half-mutated. Publication itself
        // (pure pointer swaps in `install`) happens after, outside.
        let b = writer.as_mut();
        let staged = catch_unwind(AssertUnwindSafe(|| -> Result<TxnOutcome> {
            match self.apply_guarded(b, op)? {
                denied @ GuardedUpdate::Denied(_) => Ok(TxnOutcome::Denied(denied)),
                GuardedUpdate::Applied(outcome) => {
                    let checkpoint = match &self.durability {
                        // Durable engine: the commit protocol (WAL
                        // append → commit record → page writes) *is*
                        // the checkpoint — O(dirty pages), no clone.
                        // Failure here fails the transaction and the
                        // ladder rolls back by replaying the log.
                        Some(dur) => {
                            let logged = ServeEngine::logged_op(op);
                            let signs = b.sign_state()?;
                            let epoch = b.epoch();
                            unpoison(dur.lock()).log_txn(&logged, &signs, epoch)?;
                            None
                        }
                        None => Some(Box::new(b.checkpoint()?)),
                    };
                    let snapshot = Arc::new(b.snapshot()?);
                    Ok(TxnOutcome::Ready { outcome, checkpoint, snapshot })
                }
            }
        }));
        match staged {
            Ok(Ok(TxnOutcome::Denied(denied))) => {
                self.metrics.updates_denied.fetch_add(1, Relaxed);
                Ok(denied)
            }
            Ok(Ok(TxnOutcome::Ready { outcome, checkpoint, snapshot })) => {
                self.install(checkpoint.map(|c| *c), snapshot);
                self.metrics.updates_applied.fetch_add(1, Relaxed);
                self.metrics.sign_writes.fetch_add(outcome.sign_writes as u64, Relaxed);
                Ok(GuardedUpdate::Applied(outcome))
            }
            Ok(Err(e)) => {
                // Rung 3: the update failed past what full
                // re-annotation could repair — roll the backend back to
                // the state behind the published snapshot.
                self.note_fault(&e);
                self.metrics.update_errors.fetch_add(1, Relaxed);
                self.rollback(writer.as_mut(), &format!("guarded update failed: {e}"))?;
                Err(e)
            }
            Err(payload) => {
                let injected = injected_panic_point(&*payload);
                let cause = match &injected {
                    Some(point) => {
                        self.metrics.faults_injected.fetch_add(1, Relaxed);
                        format!("guarded update panicked: injected fault at `{point}`")
                    }
                    None => "guarded update panicked".to_string(),
                };
                self.metrics.update_errors.fetch_add(1, Relaxed);
                self.rollback(writer.as_mut(), &cause)?;
                // An injected panic keeps its classification (the CLI
                // maps `FaultInjected` to a distinct exit code); an
                // organic one is a system error.
                Err(match injected {
                    Some(point) => Error::FaultInjected { point },
                    None => Error::System(format!(
                        "{cause}; rolled back to last-good epoch {}",
                        self.epoch()
                    )),
                })
            }
        }
    }

    /// The write-path body, mirroring [`System::guarded_delete`] /
    /// [`System::guarded_insert`] step for step so a single-threaded
    /// `System` replay of the same sequence reaches byte-identical sign
    /// state — plus rung 2 of the ladder: when the partial plan fails
    /// to apply, degrade to full re-annotation (the paper's baseline).
    fn apply_guarded(&self, b: &mut dyn Backend, op: &UpdateOp<'_>) -> Result<GuardedUpdate> {
        use std::sync::atomic::Ordering::Relaxed;
        let guard_path = match op {
            UpdateOp::Delete(u) => (*u).clone(),
            UpdateOp::Insert { parent, .. } => (*parent).clone(),
        };
        let decision = requester::request(b, &guard_path)?;
        if !decision.granted() {
            return Ok(GuardedUpdate::Denied(decision));
        }
        let update_path = match op {
            UpdateOp::Delete(u) => (*u).clone(),
            UpdateOp::Insert { parent, name, .. } => {
                (*parent).clone().then(xac_xpath::Step::child(name.to_string()))
            }
        };
        let plan = self.system.plan_update(&update_path);
        let (removed_elements, inserted_elements) = match op {
            UpdateOp::Delete(u) => (b.delete(u)?, 0),
            UpdateOp::Insert { parent, name, text } => (0, b.insert(parent, name, *text)?),
        };
        let sign_writes = match reannotator::apply(b, &plan) {
            Ok(writes) => writes,
            Err(e) => {
                // Partial repair failed: degrade to the paper's full
                // re-annotation baseline so the served state stays
                // consistent, and surface the event in the metrics.
                self.note_fault(&e);
                self.metrics.full_fallbacks.fetch_add(1, Relaxed);
                xac_obs::instant("serve.full_fallback");
                self.system.full_reannotate(b)?
            }
        };
        Ok(GuardedUpdate::Applied(UpdateOutcome {
            removed_elements,
            inserted_elements,
            plan,
            sign_writes,
        }))
    }

    /// Commit a staged transaction: swap in the new snapshot and (on
    /// non-durable engines) the matching last-good checkpoint. Pure
    /// pointer swaps — nothing here can fail halfway, which is why
    /// checkpoint + snapshot are staged *before* publication. Durable
    /// engines pass no checkpoint: their last-good state is the WAL's
    /// last committed transaction.
    fn install(&self, checkpoint: Option<Checkpoint>, snapshot: Arc<AccessSnapshot>) {
        use std::sync::atomic::Ordering::Relaxed;
        let _span = xac_obs::span("serve.publish");
        self.metrics.current_epoch.store(snapshot.epoch(), Relaxed);
        self.metrics.epochs_published.fetch_add(1, Relaxed);
        *unpoison(self.published.write()) = snapshot;
        if let Some(checkpoint) = checkpoint {
            *unpoison(self.last_good.lock()) = checkpoint;
        }
    }

    /// The WAL record shape of a guarded update, logged by the durable
    /// commit path and replayed by recovery/rollback.
    fn logged_op(op: &UpdateOp<'_>) -> LoggedOp {
        match op {
            UpdateOp::Delete(path) => LoggedOp::Delete { path: path.to_string() },
            UpdateOp::Insert { parent, name, text } => LoggedOp::Insert {
                parent: parent.to_string(),
                name: (*name).to_string(),
                text: text.map(str::to_string),
            },
        }
    }

    /// Rung 3: bring the backend byte-identical to the state behind the
    /// published snapshot. Non-durable engines restore the last-good
    /// clone checkpoint; durable engines **replay the WAL** — truncate
    /// the dead tail, reload the document, replay the committed
    /// operations, re-apply the committed sign map. If the rollback
    /// itself fails or panics, escalate to rung 4 — quarantine: mark
    /// the engine read-only and return [`Error::Quarantined`].
    fn rollback(&self, b: &mut dyn Backend, cause: &str) -> Result<()> {
        use std::sync::atomic::Ordering::Relaxed;
        let _span = xac_obs::span("serve.rollback");
        if let Some(dur) = &self.durability {
            xac_obs::instant("serve.wal_rollback");
            return match catch_unwind(AssertUnwindSafe(|| {
                unpoison(dur.lock()).rebuild_backend(&self.system, b)
            })) {
                Ok(Ok(())) => {
                    self.metrics.rollbacks.fetch_add(1, Relaxed);
                    Ok(())
                }
                Ok(Err(e)) => {
                    self.note_fault(&e);
                    Err(self.enter_quarantine(format!("{cause}; wal replay failed: {e}")))
                }
                Err(payload) => {
                    let detail = match injected_panic_point(&*payload) {
                        Some(point) => {
                            self.metrics.faults_injected.fetch_add(1, Relaxed);
                            format!("wal replay panicked: injected fault at `{point}`")
                        }
                        None => "wal replay panicked".to_string(),
                    };
                    Err(self.enter_quarantine(format!("{cause}; {detail}")))
                }
            };
        }
        let checkpoint = unpoison(self.last_good.lock()).clone();
        match catch_unwind(AssertUnwindSafe(|| b.restore(&checkpoint))) {
            Ok(Ok(())) => {
                self.metrics.rollbacks.fetch_add(1, Relaxed);
                Ok(())
            }
            Ok(Err(e)) => {
                self.note_fault(&e);
                Err(self.enter_quarantine(format!("{cause}; restore failed: {e}")))
            }
            Err(payload) => {
                let detail = match injected_panic_point(&*payload) {
                    Some(point) => {
                        self.metrics.faults_injected.fetch_add(1, Relaxed);
                        format!("restore panicked: injected fault at `{point}`")
                    }
                    None => "restore panicked".to_string(),
                };
                Err(self.enter_quarantine(format!("{cause}; {detail}")))
            }
        }
    }

    /// Rung 4: mark the engine read-only. Idempotent — the first cause
    /// wins and the counter moves once. Reads keep being served from
    /// the published snapshot.
    fn enter_quarantine(&self, cause: String) -> Error {
        let mut quarantine = unpoison(self.quarantine.lock());
        if quarantine.is_none() {
            *quarantine = Some(cause.clone());
            xac_obs::instant("serve.quarantine");
            self.metrics
                .quarantines
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        Error::Quarantined { last_good_epoch: self.epoch(), cause }
    }
}

/// One engine per configured storage kind over a shared [`System`] —
/// the deployment shape of the paper's evaluation (three systems, one
/// document, one policy), ready to serve traffic on each.
pub struct ServeCluster {
    system: Arc<System>,
    engines: Vec<Arc<ServeEngine>>,
}

impl ServeCluster {
    /// Stand up one engine per kind. The system is built once (policy
    /// optimization, dependency graph, shredding) and shared; each
    /// backend loads and annotates its own copy of the document.
    pub fn new(system: System, kinds: &[BackendKind]) -> Result<ServeCluster> {
        let system = Arc::new(system);
        let mut engines = Vec::with_capacity(kinds.len());
        for &kind in kinds {
            engines.push(Arc::new(ServeEngine::for_kind(system.clone(), kind)?));
        }
        Ok(ServeCluster { system, engines })
    }

    /// The shared system.
    pub fn system(&self) -> &Arc<System> {
        &self.system
    }

    /// The engines, in construction order.
    pub fn engines(&self) -> &[Arc<ServeEngine>] {
        &self.engines
    }

    /// Find an engine by its backend name (e.g. `"native/xml"`).
    pub fn engine(&self, backend_name: &str) -> Option<&Arc<ServeEngine>> {
        self.engines.iter().find(|e| e.backend_name() == backend_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xac_policy::policy::hospital_policy;
    use xac_xml::Document;

    fn figure2() -> Document {
        Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>033</psn><name>john doe</name>\
             <treatment><regular><med>enoxaparin</med><bill>700</bill></regular></treatment>\
             </patient>\
             <patient><psn>042</psn><name>jane doe</name>\
             <treatment><experimental><test>hypnosis</test><bill>1600</bill></experimental></treatment>\
             </patient>\
             <patient><psn>099</psn><name>joy smith</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap()
    }

    fn system() -> System {
        System::builder(xac_core::hospital_schema_for_docs(), hospital_policy(), figure2())
            .build()
            .unwrap()
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeEngine>();
        assert_send_sync::<ServeCluster>();
    }

    /// Serve a query and return (granted, nodes, epoch).
    fn served(engine: &ServeEngine, query: &str) -> (bool, u64, u64) {
        match engine.serve(&Request::query(query)) {
            Response::Decision { granted, nodes, epoch } => (granted, nodes, epoch),
            other => panic!("expected a decision, got {other:?}"),
        }
    }

    #[test]
    fn serves_reads_on_every_kind() {
        let cluster = ServeCluster::new(system(), &BackendKind::ALL).unwrap();
        assert_eq!(cluster.engines().len(), 3);
        for engine in cluster.engines() {
            assert!(served(engine, "//patient/name").0);
            assert!(!served(engine, "//patient").0);
            let err = engine.serve(&Request::query("//bad["));
            assert_eq!(err.error_kind(), Some(ErrorKind::Parse), "{err:?}");
            let m = engine.metrics();
            assert_eq!(m.reads_issued(), 3, "{}", engine.backend_name());
            assert_eq!(m.read_errors, 1);
            assert_eq!(m.epochs_published, 1);
        }
        assert!(cluster.engine("native/xml").is_some());
        assert!(cluster.engine("no/such").is_none());
    }

    #[test]
    fn serve_dispatches_updates_status_and_metrics() {
        let engine = ServeEngine::for_kind(Arc::new(system()), BackendKind::Native).unwrap();
        // Denied update: epoch pinned, denied node count carried.
        let denied = engine.serve(&Request::delete("//med"));
        assert_eq!(
            denied,
            Response::Update {
                applied: false,
                removed: 0,
                inserted: 0,
                sign_writes: 0,
                denied_nodes: 1,
                epoch: engine.epoch(),
            }
        );
        // Applied update: epoch advances, counts carried.
        let before = engine.epoch();
        match engine.serve(&Request::delete("//regular")) {
            Response::Update { applied, removed, epoch, sign_writes, .. } => {
                assert!(applied);
                assert_eq!(removed, 3, "regular + med + bill");
                assert_eq!(sign_writes, engine.metrics().sign_writes);
                assert!(epoch > before);
            }
            other => panic!("expected an update response, got {other:?}"),
        }
        // Malformed update path: a typed parse error, no update counter.
        let bad = engine.serve(&Request::delete("//bad["));
        assert_eq!(bad.error_kind(), Some(ErrorKind::Parse));
        match engine.serve(&Request::Status) {
            Response::Status { backend, epoch, accessible, quarantined } => {
                assert_eq!(backend, "native/xml");
                assert_eq!(epoch, engine.epoch());
                assert_eq!(accessible, engine.accessible_count() as u64);
                assert!(!quarantined);
            }
            other => panic!("expected status, got {other:?}"),
        }
        match engine.serve(&Request::Metrics) {
            Response::Metrics { rendered } => assert!(rendered.contains("updates: 2")),
            other => panic!("expected metrics, got {other:?}"),
        }
        let m = engine.metrics();
        assert_eq!(m.updates_applied, 1);
        assert_eq!(m.updates_denied, 1);
        assert_eq!(m.update_errors, 0);
    }

    #[test]
    fn serve_as_gates_by_role_without_touching_the_engine() {
        let engine = ServeEngine::for_kind(Arc::new(system()), BackendKind::Native).unwrap();
        let denied = engine.serve_as(Role::Reader, &Request::delete("//regular"));
        assert_eq!(denied.error_kind(), Some(ErrorKind::RoleDenied));
        let m = engine.metrics();
        assert_eq!(m.updates_issued(), 0, "role denial precedes admission");
        assert_eq!(engine.metrics().epochs_published, 1);
        // The same request as a writer goes through.
        match engine.serve_as(Role::Writer, &Request::delete("//regular")) {
            Response::Update { applied: true, .. } => {}
            other => panic!("writer should apply, got {other:?}"),
        }
        // Metrics are admin-only.
        let denied = engine.serve_as(Role::Writer, &Request::Metrics);
        assert_eq!(denied.error_kind(), Some(ErrorKind::RoleDenied));
        assert!(matches!(
            engine.serve_as(Role::Admin, &Request::Metrics),
            Response::Metrics { .. }
        ));
    }

    #[test]
    fn applied_update_publishes_new_epoch() {
        let engine =
            ServeEngine::for_kind(Arc::new(system()), BackendKind::Native).unwrap();
        let before = engine.epoch();
        assert!(!served(&engine, "//patient").0);
        let u = xac_xpath::parse("//regular").unwrap();
        let g = engine.guarded_delete(&u).unwrap();
        let outcome = match g {
            GuardedUpdate::Applied(o) => o,
            GuardedUpdate::Denied(d) => panic!("unexpectedly denied: {d:?}"),
        };
        assert!(engine.epoch() > before, "applied update advances the epoch");
        let m = engine.metrics();
        assert_eq!(m.updates_applied, 1);
        assert_eq!(m.epochs_published, 2);
        assert_eq!(m.current_epoch, engine.epoch());
        assert_eq!(m.sign_writes, outcome.sign_writes as u64);
    }

    #[test]
    fn denied_update_keeps_epoch_and_state() {
        for kind in BackendKind::ALL {
            let engine = ServeEngine::for_kind(Arc::new(system()), kind).unwrap();
            let before_epoch = engine.epoch();
            let before_signs = engine.with_writer(|b| b.sign_state().unwrap()).unwrap();
            // //med is inaccessible: guarded delete refused.
            let med = xac_xpath::parse("//med").unwrap();
            let g = engine.guarded_delete(&med).unwrap();
            assert!(!g.applied(), "{}", engine.backend_name());
            // Inserting under an inaccessible parent: refused too.
            let treatment = xac_xpath::parse("//treatment").unwrap();
            let g = engine.guarded_insert(&treatment, "regular", None).unwrap();
            assert!(!g.applied(), "{}", engine.backend_name());
            assert_eq!(engine.epoch(), before_epoch, "{}", engine.backend_name());
            assert_eq!(
                engine.with_writer(|b| b.sign_state().unwrap()).unwrap(),
                before_signs,
                "{}: denied updates must not change sign state",
                engine.backend_name()
            );
            let m = engine.metrics();
            assert_eq!(m.updates_denied, 2);
            assert_eq!(m.updates_applied, 0);
            assert_eq!(m.epochs_published, 1);
        }
    }

    #[test]
    fn backend_kind_parsing() {
        assert_eq!(BackendKind::parse("native").unwrap(), BackendKind::Native);
        assert_eq!(BackendKind::parse("row").unwrap(), BackendKind::Row);
        assert_eq!(BackendKind::parse("column").unwrap(), BackendKind::Column);
        assert!(BackendKind::parse("mongodb").is_err());
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.cli_name()).unwrap(), kind);
        }
    }

    #[test]
    fn unknown_backend_error_lists_all_kinds() {
        // Same `unknown X (valid Xs: …)` shape as AnnotateMode and Role.
        let err = BackendKind::parse("mongodb").unwrap_err();
        assert_eq!(
            err,
            xac_core::Error::UnknownName {
                what: "backend",
                input: "mongodb".to_string(),
                valid: "native, row, column".to_string(),
            }
        );
        let text = err.to_string();
        for name in BackendKind::VALID_NAMES {
            assert!(text.contains(name), "`{name}` missing from: {text}");
        }
    }

    #[test]
    fn backend_kind_display_round_trips_through_parse() {
        use std::str::FromStr;
        // Exhaustive: every canonical spelling parses back to its kind.
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(&kind.to_string()).unwrap(), kind);
            assert_eq!(BackendKind::from_str(kind.cli_name()).unwrap(), kind);
        }
        // Property: random case/whitespace perturbations of a canonical
        // spelling only parse when they leave it unchanged.
        let mut rng = xac_xmlgen::SplitMix64::seed_from_u64(0xbac_c0de);
        for _ in 0..256 {
            let kind = BackendKind::ALL[(rng.next_u64() % 3) as usize];
            let mut s = kind.cli_name().to_string();
            match rng.next_u64() % 3 {
                0 => s.make_ascii_uppercase(),
                1 => s.push(' '),
                _ => {}
            }
            match BackendKind::from_str(&s) {
                Ok(parsed) => {
                    assert_eq!(s, kind.cli_name(), "only canonical spellings parse");
                    assert_eq!(parsed, kind);
                    assert_eq!(parsed.to_string(), s, "Display round-trips");
                }
                Err(err) => {
                    assert_ne!(s, kind.cli_name());
                    let text = err.to_string();
                    assert!(text.contains("valid backends"), "{text}");
                }
            }
        }
    }

    #[test]
    fn first_publish_is_idempotent_under_transient_snapshot_failure() {
        // One-shot before_snapshot fault: the first snapshot attempt
        // fails, the retry succeeds — and the initial epoch must be
        // counted exactly once.
        let plan = FaultPlan::parse("before_snapshot:error").unwrap();
        let engine =
            ServeEngine::for_kind_with_faults(Arc::new(system()), BackendKind::Native, plan)
                .unwrap();
        let m = engine.metrics();
        assert_eq!(m.epochs_published, 1, "retried first publish counted once");
        assert_eq!(m.faults_injected, 1);
        assert_eq!(m.current_epoch, engine.epoch());
        assert!(served(&engine, "//patient/name").0);
    }

    #[test]
    fn poisoned_writer_lock_is_recovered_not_propagated() {
        let engine =
            ServeEngine::for_kind(Arc::new(system()), BackendKind::Native).unwrap();
        let golden = engine.with_writer(|b| b.sign_state().unwrap()).unwrap();
        // Poison the writer lock with an organic panic.
        let poisoned = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = engine.with_writer(|_| panic!("organic failure"));
        }));
        assert!(poisoned.is_err());
        // The engine recovers by restoring the last-good checkpoint and
        // keeps working: reads, state audits, and guarded updates.
        assert!(served(&engine, "//patient/name").0);
        assert_eq!(engine.with_writer(|b| b.sign_state().unwrap()).unwrap(), golden);
        assert!(!engine.quarantined());
        let u = xac_xpath::parse("//regular").unwrap();
        assert!(engine.guarded_delete(&u).unwrap().applied());
        assert_eq!(engine.metrics().rollbacks, 1, "poison recovery rolled back once");
    }
}
