//! Security views over annotated documents.
//!
//! The paper contrasts its materialized annotations with *security views*
//! [Fan et al. '04; Kuper et al. '09]: a view "contains just the
//! information a user is allowed to read". With annotations materialized,
//! deriving such a view is a single pruning pass — this module provides
//! it as a read-side product, in two flavours:
//!
//! * [`ViewMode::Prune`] — an inaccessible node hides its whole subtree
//!   (hierarchical confinement: nothing below a denied node leaks);
//! * [`ViewMode::Promote`] — accessible descendants of an inaccessible
//!   node are re-attached to their nearest accessible ancestor (the
//!   classic security-view construction, preserving every accessible
//!   node at the cost of flattening denied regions).
//!
//! Both flavours keep the document root unconditionally (a document needs
//! a root; its label is schema information, not data).

use std::collections::BTreeSet;
use xac_policy::AnnotationQuery;
use xac_xml::{Document, NodeId, Schema};

/// Compute the accessible node set by running the compiled
/// annotation-query program over a columnar index of `doc` — the
/// read-side twin of [`AnnotateMode::Compiled`](crate::AnnotateMode)
/// annotation. The program marks the nodes whose sign differs from the
/// policy default, so the accessible set is the marked set itself (mark
/// `'+'`) or its complement over the elements (mark `'-'`). Returns
/// `None` when the query falls outside the compilable fragment; callers
/// fall back to the interpreted Table 2 evaluation.
pub fn compiled_accessible(
    doc: &Document,
    query: &AnnotationQuery,
    schema: Option<&Schema>,
) -> Option<BTreeSet<NodeId>> {
    let program = xac_vmc::cached_query_program(query, schema).ok()?;
    let index = xac_vmc::DocIndex::build(doc);
    let marked: BTreeSet<NodeId> =
        xac_vmc::execute_select(&program, &index).into_iter().collect();
    Some(if query.mark.sign() == '+' {
        marked
    } else {
        doc.all_elements().filter(|n| !marked.contains(n)).collect()
    })
}

/// How inaccessible interior nodes are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewMode {
    /// Denied node ⇒ denied subtree.
    Prune,
    /// Accessible descendants re-attach to the nearest accessible
    /// ancestor.
    Promote,
}

/// Build the security view of `doc` for the accessible node set.
pub fn security_view(
    doc: &Document,
    accessible: &BTreeSet<NodeId>,
    mode: ViewMode,
) -> Document {
    let root_name = doc.name(doc.root()).expect("root is an element").to_string();
    let mut view = Document::new(root_name);
    let view_root = view.root();
    for (k, v) in doc.attributes(doc.root()) {
        view.set_attribute(view_root, k.clone(), v.clone());
    }
    copy_children(doc, doc.root(), &mut view, view_root, accessible, mode);
    view
}

fn copy_children(
    doc: &Document,
    src: NodeId,
    view: &mut Document,
    dst: NodeId,
    accessible: &BTreeSet<NodeId>,
    mode: ViewMode,
) {
    for child in doc.children(src) {
        if let Some(text) = doc.text_value(child) {
            // Text is the value of its parent: it travels with the parent
            // node's accessibility (we only reach here when `dst` was
            // admitted).
            view.add_text(dst, text.to_string());
            continue;
        }
        if accessible.contains(&child) {
            let name = doc.name(child).expect("element").to_string();
            let copy = view.add_element(dst, name);
            for (k, v) in doc.attributes(child) {
                view.set_attribute(copy, k.clone(), v.clone());
            }
            copy_children(doc, child, view, copy, accessible, mode);
        } else {
            match mode {
                ViewMode::Prune => {}
                ViewMode::Promote => {
                    // Skip the node, hoist its accessible descendants.
                    copy_element_children_only(doc, child, view, dst, accessible);
                }
            }
        }
    }
}

/// Promote-mode helper: walk an inaccessible region, attaching accessible
/// elements (with their subtree views) to `dst`; the region's text values
/// are dropped with their denied parents.
fn copy_element_children_only(
    doc: &Document,
    src: NodeId,
    view: &mut Document,
    dst: NodeId,
    accessible: &BTreeSet<NodeId>,
) {
    for child in doc.children(src) {
        if doc.is_text(child) {
            continue;
        }
        if accessible.contains(&child) {
            let name = doc.name(child).expect("element").to_string();
            let copy = view.add_element(dst, name);
            for (k, v) in doc.attributes(child) {
                view.set_attribute(copy, k.clone(), v.clone());
            }
            copy_children(doc, child, view, copy, accessible, ViewMode::Promote);
        } else {
            copy_element_children_only(doc, child, view, dst, accessible);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xac_policy::policy::hospital_policy;

    fn figure2() -> Document {
        Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>033</psn><name>john doe</name>\
             <treatment><regular><med>enoxaparin</med><bill>700</bill></regular></treatment>\
             </patient>\
             <patient><psn>099</psn><name>joy smith</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap()
    }

    fn accessible(doc: &Document) -> BTreeSet<NodeId> {
        xac_policy::accessible_nodes(doc, &hospital_policy())
    }

    #[test]
    fn prune_mode_hides_denied_regions_entirely() {
        let doc = figure2();
        let view = security_view(&doc, &accessible(&doc), ViewMode::Prune);
        // dept is denied (default), so everything below disappears; only
        // the root remains.
        assert_eq!(view.element_count(), 1);
        assert_eq!(view.name(view.root()), Some("hospital"));
    }

    #[test]
    fn promote_mode_surfaces_all_accessible_nodes() {
        let doc = figure2();
        let acc = accessible(&doc);
        let view = security_view(&doc, &acc, ViewMode::Promote);
        // Root + every accessible node (names ×2, patient 099, regular).
        assert_eq!(view.element_count(), 1 + acc.len());
        let xml = view.to_xml();
        // The accessible patient keeps its accessible child name; the
        // denied patient's name is promoted to the root level.
        assert!(xml.contains("<name>john doe</name>"), "{xml}");
        assert!(xml.contains("<patient><name>joy smith</name></patient>"), "{xml}");
        assert!(xml.contains("<regular/>"), "regular kept, denied med/bill dropped: {xml}");
        // Denied data never leaks.
        assert!(!xml.contains("psn"), "{xml}");
        assert!(!xml.contains("enoxaparin"), "{xml}");
        assert!(!xml.contains("700"), "{xml}");
    }

    #[test]
    fn promote_preserves_relative_order() {
        let mut doc = Document::parse_str("<r><x/><y/><x/></r>").unwrap();
        let _ = &mut doc;
        let acc: BTreeSet<NodeId> = doc
            .all_elements()
            .filter(|&n| doc.name(n) == Some("x"))
            .collect();
        let view = security_view(&doc, &acc, ViewMode::Promote);
        assert_eq!(view.to_xml(), "<r><x/><x/></r>");
    }

    #[test]
    fn fully_accessible_document_is_identity() {
        let doc = figure2();
        let all: BTreeSet<NodeId> = doc.all_elements().collect();
        for mode in [ViewMode::Prune, ViewMode::Promote] {
            let view = security_view(&doc, &all, mode);
            assert_eq!(view.to_xml(), doc.to_xml(), "{mode:?}");
        }
    }

    #[test]
    fn empty_accessible_set_leaves_bare_root() {
        let doc = figure2();
        let none = BTreeSet::new();
        for mode in [ViewMode::Prune, ViewMode::Promote] {
            let view = security_view(&doc, &none, mode);
            assert_eq!(view.element_count(), 1, "{mode:?}");
            assert_eq!(view.len(), 1, "no text leaks either");
        }
    }
}
