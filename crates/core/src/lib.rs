//! # xac-core
//!
//! The **xmlac** system: materialized access control for XML documents
//! over relational and native XML databases, reproducing the architecture
//! of Figure 3 of *"Controlling Access to XML Documents over XML Native
//! and Relational Databases"* (Koromilas et al., SDM 2009).
//!
//! The four modules of the paper's architecture map onto this crate:
//!
//! * [`optimizer`] — removes redundant rules from the policy before
//!   anything touches a database (§5.1);
//! * [`annotator`] — compiles the policy into one annotation query and
//!   drives a storage backend to materialize accessibility signs (§5.2);
//! * [`reannotator`] — when an update hits the document, uses XPath
//!   static analysis (rule expansion + containment + the dependency
//!   graph) to re-annotate only the affected scopes (§5.3);
//! * [`requester`] — the user-facing front end enforcing the paper's
//!   all-or-nothing query answering.
//!
//! Storage backends implement the [`Backend`] trait:
//!
//! * [`RelationalBackend`] over [`xac_reldb`] in row layout — the
//!   PostgreSQL stand-in;
//! * [`RelationalBackend`] over [`xac_reldb`] in column layout — the
//!   MonetDB/SQL stand-in;
//! * [`NativeXmlBackend`] over [`xac_xmlstore`] — the MonetDB/XQuery
//!   stand-in.
//!
//! ```
//! use xac_core::{System, NativeXmlBackend, Backend};
//! use xac_policy::policy::hospital_policy;
//!
//! let schema = xac_core::hospital_schema_for_docs();
//! let doc = xac_xml::Document::parse_str(
//!     "<hospital><dept><patients>\
//!      <patient><psn>1</psn><name>a</name></patient>\
//!      </patients><staffinfo/></dept></hospital>").unwrap();
//! let system = System::builder(schema, hospital_policy(), doc).build().unwrap();
//! let mut backend = NativeXmlBackend::new();
//! system.load(&mut backend).unwrap();
//! system.annotate(&mut backend).unwrap();
//! // The lone patient has no treatment: accessible under R1.
//! let decision = system.request(&mut backend, "//patient").unwrap();
//! assert!(decision.granted());
//! ```

pub mod annotator;
pub mod backend;
pub mod checkpoint;
pub mod document;
pub mod error;
pub mod fault;
pub mod optimizer;
pub mod reannotator;
pub mod requester;
pub mod snapshot;
pub mod system;
pub mod timing;
pub mod view;

pub use backend::{AnnotateMode, Backend, NativeXmlBackend, RelationalBackend};
pub use checkpoint::Checkpoint;
pub use document::PreparedDocument;
pub use error::{Error, Result};
pub use fault::{
    injected_panic_message, injected_panic_point, FaultAction, FaultPlan, FaultPoint,
    FaultSpec, FaultingBackend,
};
pub use reannotator::ReannotationPlan;
pub use requester::Decision;
pub use snapshot::AccessSnapshot;
pub use system::{GuardedUpdate, System, SystemBuilder, UpdateOutcome};
pub use timing::time;
pub use view::{security_view, ViewMode};

/// Convenience re-export of the hospital schema used in doctests (the
/// canonical definition lives in `xac-xmlgen`, which this crate cannot
/// depend on outside tests).
pub fn hospital_schema_for_docs() -> xac_xml::Schema {
    use xac_xml::{Occurs::*, Particle, Schema};
    Schema::builder("hospital")
        .sequence("hospital", vec![Particle::new("dept", Plus)])
        .sequence(
            "dept",
            vec![Particle::new("patients", One), Particle::new("staffinfo", One)],
        )
        .sequence("patients", vec![Particle::new("patient", Star)])
        .sequence("staffinfo", vec![Particle::new("staff", Star)])
        .sequence(
            "patient",
            vec![
                Particle::new("psn", One),
                Particle::new("name", One),
                Particle::new("treatment", Optional),
            ],
        )
        .choice(
            "treatment",
            vec![
                Particle::new("regular", Optional),
                Particle::new("experimental", Optional),
            ],
        )
        .sequence("regular", vec![Particle::new("med", One), Particle::new("bill", One)])
        .sequence(
            "experimental",
            vec![Particle::new("test", One), Particle::new("bill", One)],
        )
        .choice("staff", vec![Particle::new("nurse", One), Particle::new("doctor", One)])
        .sequence(
            "nurse",
            vec![
                Particle::new("sid", One),
                Particle::new("name", One),
                Particle::new("phone", One),
            ],
        )
        .sequence(
            "doctor",
            vec![
                Particle::new("sid", One),
                Particle::new("name", One),
                Particle::new("phone", One),
            ],
        )
        .text(&["psn", "name", "med", "bill", "test", "sid", "phone"])
        .build()
        .expect("hospital schema is well-formed")
}
