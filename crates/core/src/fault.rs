//! Deterministic fault injection for storage backends.
//!
//! [`FaultingBackend`] wraps any [`Backend`] and fires faults — errors
//! or panics — at named *fault points* around the wrapped operations,
//! driven by a [`FaultPlan`]. A plan is explicit data (which point,
//! which action, after how many sign writes, how many times), so any
//! failure interleaving is replayable byte for byte: the same plan
//! against the same backend and operation sequence produces the same
//! failure at the same instruction every run. Seeded *random* plans are
//! built in `xac-serve` from the in-repo SplitMix64 generator and
//! reduce to the same explicit specs.
//!
//! The one point that needs cooperation from the decorator is
//! `mid_reannotate`: to fail *inside* the two-phase §5.3 repair (after
//! phase 1's reset but before — or partway through — phase 2's
//! annotation writes), the decorator splits `reannotate` into the reset
//! (an annotation query with empty include/except sets) followed by a
//! separate `annotate`, firing between the phases once the configured
//! sign-write count is reached. When no `mid_reannotate` spec is armed
//! the call delegates unsplit, so the no-fault path is byte- and
//! epoch-identical to the undecorated backend.

use crate::backend::Backend;
use crate::checkpoint::Checkpoint;
use crate::document::PreparedDocument;
use crate::error::{Error, Result};
use crate::snapshot::AccessSnapshot;
use std::collections::BTreeMap;
use xac_policy::AnnotationQuery;
use xac_xpath::Path;

/// Named instants in a backend's lifecycle where a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultPoint {
    /// Before an annotation query is applied.
    BeforeAnnotate,
    /// Before a delete touches the store.
    BeforeDelete,
    /// After the delete, before anything else — the classic
    /// inconsistency window: the document changed, the signs did not.
    AfterDelete,
    /// Before an insert touches the store.
    BeforeInsert,
    /// After the insert, before re-annotation.
    AfterInsert,
    /// Before partial re-annotation starts.
    BeforeReannotate,
    /// Inside the two-phase re-annotation, once at least
    /// `after_sign_writes` sign writes have landed — the store is left
    /// genuinely half-repaired.
    MidReannotate,
    /// After re-annotation completed.
    AfterReannotate,
    /// Before a snapshot is taken (the publication step).
    BeforeSnapshot,
    /// Before a checkpoint is captured.
    BeforeCheckpoint,
    /// Before a checkpoint is restored — failing here defeats the
    /// rollback rung and forces quarantine.
    BeforeRestore,
    /// Network harness: the client stalls mid-frame longer than the
    /// server's read timeout. Fired client-side by the `xac-net`
    /// transport, never by [`FaultingBackend`]; the armed
    /// [`FaultAction`] is ignored — the point itself *is* the behavior.
    NetSlowClient,
    /// Network harness: the client disconnects after sending only part
    /// of a frame. Client-side, action ignored (see
    /// [`FaultPoint::NetSlowClient`]).
    NetMidFrameDisconnect,
    /// Network harness: the client sends a frame header whose declared
    /// length exceeds the server's frame-size cap. Client-side, action
    /// ignored (see [`FaultPoint::NetSlowClient`]).
    NetOversizedFrame,
    /// Storage harness: crash after the transaction's WAL records are
    /// appended but before the commit record — recovery must roll the
    /// transaction back. Fired by the `xac-serve` durability layer,
    /// never by [`FaultingBackend`].
    WalBeforeCommit,
    /// Storage harness: crash mid-append, leaving a torn (partial,
    /// CRC-failing) record at the log's tail — the reopen scan must
    /// detect and truncate it. Durability-layer-fired (see
    /// [`FaultPoint::WalBeforeCommit`]).
    WalMidRecord,
    /// Storage harness: crash mid-page-write *after* commit, leaving a
    /// checksum-failing page on disk — recovery must rebuild the page
    /// from the WAL, and the committed transaction must survive.
    /// Durability-layer-fired (see [`FaultPoint::WalBeforeCommit`]).
    PageTornWrite,
    /// Storage harness: crash partway through the multi-page checkpoint
    /// flush *after* commit — some dirty pages written, the rest stale.
    /// Recovery reconciles from the WAL. Durability-layer-fired (see
    /// [`FaultPoint::WalBeforeCommit`]).
    CheckpointMidFlush,
}

impl FaultPoint {
    /// Every fault point, in lifecycle order (the sweep test iterates
    /// this).
    pub const ALL: [FaultPoint; 18] = [
        FaultPoint::BeforeAnnotate,
        FaultPoint::BeforeDelete,
        FaultPoint::AfterDelete,
        FaultPoint::BeforeInsert,
        FaultPoint::AfterInsert,
        FaultPoint::BeforeReannotate,
        FaultPoint::MidReannotate,
        FaultPoint::AfterReannotate,
        FaultPoint::BeforeSnapshot,
        FaultPoint::BeforeCheckpoint,
        FaultPoint::BeforeRestore,
        FaultPoint::NetSlowClient,
        FaultPoint::NetMidFrameDisconnect,
        FaultPoint::NetOversizedFrame,
        FaultPoint::WalBeforeCommit,
        FaultPoint::WalMidRecord,
        FaultPoint::PageTornWrite,
        FaultPoint::CheckpointMidFlush,
    ];

    /// The network fault points, fired by the `xac-net` client-side
    /// transport rather than by [`FaultingBackend`].
    pub const NET: [FaultPoint; 3] = [
        FaultPoint::NetSlowClient,
        FaultPoint::NetMidFrameDisconnect,
        FaultPoint::NetOversizedFrame,
    ];

    /// The durable-storage fault points, fired by the `xac-serve`
    /// durability layer (WAL + pager) rather than by
    /// [`FaultingBackend`]. The first two fire *before* the commit
    /// record (the crashed transaction must roll back); the last two
    /// fire *after* it (the transaction must survive recovery).
    pub const STORAGE: [FaultPoint; 4] = [
        FaultPoint::WalBeforeCommit,
        FaultPoint::WalMidRecord,
        FaultPoint::PageTornWrite,
        FaultPoint::CheckpointMidFlush,
    ];

    /// True for the points in [`FaultPoint::NET`].
    pub fn is_net(self) -> bool {
        FaultPoint::NET.contains(&self)
    }

    /// True for the points in [`FaultPoint::STORAGE`].
    pub fn is_storage(self) -> bool {
        FaultPoint::STORAGE.contains(&self)
    }

    /// The canonical spelling used in plans, errors and panic payloads.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::BeforeAnnotate => "before_annotate",
            FaultPoint::BeforeDelete => "before_delete",
            FaultPoint::AfterDelete => "after_delete",
            FaultPoint::BeforeInsert => "before_insert",
            FaultPoint::AfterInsert => "after_insert",
            FaultPoint::BeforeReannotate => "before_reannotate",
            FaultPoint::MidReannotate => "mid_reannotate",
            FaultPoint::AfterReannotate => "after_reannotate",
            FaultPoint::BeforeSnapshot => "before_snapshot",
            FaultPoint::BeforeCheckpoint => "before_checkpoint",
            FaultPoint::BeforeRestore => "before_restore",
            FaultPoint::NetSlowClient => "net_slow_client",
            FaultPoint::NetMidFrameDisconnect => "net_mid_frame_disconnect",
            FaultPoint::NetOversizedFrame => "net_oversized_frame",
            FaultPoint::WalBeforeCommit => "wal_before_commit",
            FaultPoint::WalMidRecord => "wal_mid_record",
            FaultPoint::PageTornWrite => "page_torn_write",
            FaultPoint::CheckpointMidFlush => "checkpoint_mid_flush",
        }
    }

    /// Parse a canonical spelling.
    pub fn parse(s: &str) -> Result<FaultPoint> {
        FaultPoint::ALL
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| {
                Error::System(format!(
                    "unknown fault point `{s}` (valid: {})",
                    FaultPoint::ALL.map(FaultPoint::name).join(", ")
                ))
            })
    }
}

impl std::fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a firing fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultAction {
    /// Return [`Error::FaultInjected`] from the wrapped operation.
    #[default]
    Error,
    /// Panic with a recognizable payload (see
    /// [`injected_panic_point`]) — exercises `catch_unwind` and lock
    /// poisoning in the layers above.
    Panic,
}

impl FaultAction {
    /// The canonical spelling.
    pub fn name(self) -> &'static str {
        match self {
            FaultAction::Error => "error",
            FaultAction::Panic => "panic",
        }
    }

    /// Parse a canonical spelling.
    pub fn parse(s: &str) -> Result<FaultAction> {
        match s {
            "error" => Ok(FaultAction::Error),
            "panic" => Ok(FaultAction::Panic),
            other => Err(Error::System(format!(
                "unknown fault action `{other}` (valid: error, panic)"
            ))),
        }
    }
}

/// One armed fault: where, what, when, how often.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Where the fault fires.
    pub point: FaultPoint,
    /// Error or panic.
    pub action: FaultAction,
    /// For [`FaultPoint::MidReannotate`] only: fire once at least this
    /// many sign writes have landed in the current re-annotation.
    /// Ignored at every other point.
    pub after_sign_writes: usize,
    /// How many times this spec fires before disarming.
    pub times: u32,
    /// Let this many qualifying arrivals pass before the first firing —
    /// e.g. `skip: 1` on `before_annotate` spares the engine's startup
    /// annotation and hits the next one.
    pub skip: u32,
}

impl FaultSpec {
    /// A one-shot fault at `point`.
    pub fn once(point: FaultPoint, action: FaultAction) -> FaultSpec {
        FaultSpec { point, action, after_sign_writes: 0, times: 1, skip: 0 }
    }

    /// Set the sign-write threshold (meaningful for `mid_reannotate`).
    pub fn after_sign_writes(mut self, n: usize) -> FaultSpec {
        self.after_sign_writes = n;
        self
    }

    /// Set how many times the spec fires.
    pub fn times(mut self, n: u32) -> FaultSpec {
        self.times = n;
        self
    }

    /// Set how many qualifying arrivals pass before the first firing.
    pub fn skip(mut self, n: u32) -> FaultSpec {
        self.skip = n;
        self
    }

    /// Render in the [`FaultPlan::parse`] grammar.
    fn render(&self) -> String {
        let mut s = self.point.name().to_string();
        if self.after_sign_writes > 0 {
            s.push_str(&format!("@{}", self.after_sign_writes));
        }
        s.push(':');
        s.push_str(self.action.name());
        if self.times != 1 {
            s.push_str(&format!("*{}", self.times));
        }
        if self.skip != 0 {
            s.push_str(&format!("+{}", self.skip));
        }
        s
    }
}

/// An ordered set of armed faults plus the count of faults already
/// fired. Plans are plain data: equal plans against equal operation
/// sequences fire identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    injected: u64,
}

impl FaultPlan {
    /// An empty (never-firing) plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Arm one more fault (builder style).
    pub fn with(mut self, spec: FaultSpec) -> FaultPlan {
        self.specs.push(spec);
        self
    }

    /// Arm one more fault.
    pub fn push(&mut self, spec: FaultSpec) {
        self.specs.push(spec);
    }

    /// Parse the compact plan grammar used by `--fault-plan`:
    /// comma-separated `point[@N][:action][*times][+skip]` specs, e.g.
    /// `after_delete:panic,mid_reannotate@3:error*2,before_annotate+1`.
    /// Defaults: action `error`, threshold `0`, one shot, no skip.
    pub fn parse(input: &str) -> Result<FaultPlan> {
        let mut plan = FaultPlan::new();
        for raw in input.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (head, skip) = match raw.split_once('+') {
                Some((h, s)) => (
                    h,
                    s.parse::<u32>().map_err(|_| {
                        Error::System(format!("bad fault skip count in `{raw}`"))
                    })?,
                ),
                None => (raw, 0),
            };
            let (head, times) = match head.split_once('*') {
                Some((h, t)) => (
                    h,
                    t.parse::<u32>().map_err(|_| {
                        Error::System(format!("bad fault repeat count in `{raw}`"))
                    })?,
                ),
                None => (head, 1),
            };
            let (point_part, action) = match head.split_once(':') {
                Some((p, a)) => (p, FaultAction::parse(a)?),
                None => (head, FaultAction::Error),
            };
            let (point_name, after) = match point_part.split_once('@') {
                Some((p, n)) => (
                    p,
                    n.parse::<usize>().map_err(|_| {
                        Error::System(format!("bad sign-write threshold in `{raw}`"))
                    })?,
                ),
                None => (point_part, 0),
            };
            plan.push(FaultSpec {
                point: FaultPoint::parse(point_name)?,
                action,
                after_sign_writes: after,
                times,
                skip,
            });
        }
        Ok(plan)
    }

    /// True when nothing is armed (fired or empty plans alike).
    pub fn is_exhausted(&self) -> bool {
        self.specs.iter().all(|s| s.times == 0)
    }

    /// Number of faults fired so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The armed specs.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// True when a `mid_reannotate` spec is still armed — the decorator
    /// only splits the two-phase repair in that case.
    fn mid_armed(&self) -> bool {
        self.specs
            .iter()
            .any(|s| s.point == FaultPoint::MidReannotate && s.times > 0)
    }

    /// Fire-and-disarm the next armed spec at `point`, honouring its
    /// skip count. Public for harnesses outside [`FaultingBackend`]:
    /// the `xac-net` transport drives the client-side network points
    /// ([`FaultPoint::NET`]) from the same plan grammar.
    pub fn fire_at(&mut self, point: FaultPoint) -> Option<FaultAction> {
        self.take(point)
    }

    /// Fire-and-disarm for a plain point (never `MidReannotate`).
    fn take(&mut self, point: FaultPoint) -> Option<FaultAction> {
        debug_assert_ne!(point, FaultPoint::MidReannotate);
        let spec = self
            .specs
            .iter_mut()
            .find(|s| s.point == point && s.times > 0)?;
        if spec.skip > 0 {
            spec.skip -= 1;
            return None;
        }
        spec.times -= 1;
        self.injected += 1;
        Some(spec.action)
    }

    /// Fire-and-disarm for `MidReannotate`, once `writes_done` reaches
    /// the armed threshold.
    fn take_mid(&mut self, writes_done: usize) -> Option<FaultAction> {
        let spec = self.specs.iter_mut().find(|s| {
            s.point == FaultPoint::MidReannotate
                && s.times > 0
                && writes_done >= s.after_sign_writes
        })?;
        if spec.skip > 0 {
            spec.skip -= 1;
            return None;
        }
        spec.times -= 1;
        self.injected += 1;
        Some(spec.action)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rendered: Vec<String> = self.specs.iter().map(FaultSpec::render).collect();
        f.write_str(&rendered.join(","))
    }
}

/// Prefix of every injected panic payload; [`injected_panic_point`]
/// recognizes it on the catching side.
const PANIC_PREFIX: &str = "injected fault at `";

/// The panic message for a fault point (what [`FaultAction::Panic`]
/// panics with).
pub fn injected_panic_message(point: FaultPoint) -> String {
    format!("{PANIC_PREFIX}{}`", point.name())
}

/// If a caught panic payload came from [`FaultAction::Panic`], the name
/// of the fault point that fired; `None` for organic panics. Accepts
/// the payload of `std::panic::catch_unwind`.
pub fn injected_panic_point(payload: &(dyn std::any::Any + Send)) -> Option<String> {
    let text: &str = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&'static str>().copied())?;
    text.strip_prefix(PANIC_PREFIX)
        .and_then(|rest| rest.strip_suffix('`'))
        .map(str::to_string)
}

/// A [`Backend`] decorator that fires the faults of a [`FaultPlan`] at
/// the corresponding points around the wrapped backend's operations.
/// With an exhausted (or empty) plan it is behaviorally identical to
/// the wrapped backend — same bytes, same epochs.
pub struct FaultingBackend<B: Backend> {
    inner: B,
    plan: FaultPlan,
}

impl<B: Backend> FaultingBackend<B> {
    /// Wrap `inner`, arming `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> FaultingBackend<B> {
        FaultingBackend { inner, plan }
    }

    /// The armed plan (inspect `injected()` for the fired count).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> B {
        self.inner
    }

    fn fire(&mut self, point: FaultPoint) -> Result<()> {
        match self.plan.take(point) {
            None => Ok(()),
            Some(FaultAction::Error) => {
                xac_obs::instant(&format!("fault:{}", point.name()));
                Err(Error::FaultInjected { point: point.name().to_string() })
            }
            Some(FaultAction::Panic) => {
                xac_obs::instant(&format!("fault:{}", point.name()));
                panic!("{}", injected_panic_message(point))
            }
        }
    }

    fn fire_mid(&mut self, writes_done: usize) -> Result<()> {
        match self.plan.take_mid(writes_done) {
            None => Ok(()),
            Some(FaultAction::Error) => {
                xac_obs::instant(&format!("fault:{}", FaultPoint::MidReannotate.name()));
                Err(Error::FaultInjected {
                    point: FaultPoint::MidReannotate.name().to_string(),
                })
            }
            Some(FaultAction::Panic) => {
                xac_obs::instant(&format!("fault:{}", FaultPoint::MidReannotate.name()));
                panic!("{}", injected_panic_message(FaultPoint::MidReannotate))
            }
        }
    }
}

impl<B: Backend> Backend for FaultingBackend<B> {
    /// Transparent: checkpoints/snapshots taken through the decorator
    /// carry the wrapped backend's name.
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn load(&mut self, prepared: &PreparedDocument) -> Result<()> {
        self.inner.load(prepared)
    }

    fn is_loaded(&self) -> bool {
        self.inner.is_loaded()
    }

    fn annotate(&mut self, query: &AnnotationQuery) -> Result<usize> {
        self.fire(FaultPoint::BeforeAnnotate)?;
        self.inner.annotate(query)
    }

    fn reset_annotations(&mut self) -> Result<usize> {
        self.inner.reset_annotations()
    }

    fn query_nodes_allowed(&mut self, path: &Path) -> Result<(usize, bool)> {
        self.inner.query_nodes_allowed(path)
    }

    fn accessible_count(&mut self) -> Result<usize> {
        self.inner.accessible_count()
    }

    fn delete(&mut self, path: &Path) -> Result<usize> {
        self.fire(FaultPoint::BeforeDelete)?;
        let removed = self.inner.delete(path)?;
        self.fire(FaultPoint::AfterDelete)?;
        Ok(removed)
    }

    fn insert(&mut self, parent_path: &Path, name: &str, text: Option<&str>) -> Result<usize> {
        self.fire(FaultPoint::BeforeInsert)?;
        let inserted = self.inner.insert(parent_path, name, text)?;
        self.fire(FaultPoint::AfterInsert)?;
        Ok(inserted)
    }

    fn reannotate(&mut self, scope: &[Path], query: &AnnotationQuery) -> Result<usize> {
        self.fire(FaultPoint::BeforeReannotate)?;
        let total = if self.plan.mid_armed() {
            // Split the two-phase §5.3 repair so the fault lands between
            // (or inside) the phases, leaving genuinely half-applied
            // sign state. Phase 1 is the reset alone: the same query
            // with empty include/except writes nothing beyond the scope
            // reset on every backend.
            let reset_only = AnnotationQuery {
                include: Vec::new(),
                except: Vec::new(),
                ..query.clone()
            };
            let reset = self.inner.reannotate(scope, &reset_only)?;
            self.fire_mid(reset)?;
            // Through `self`, not `inner`: a `before_annotate` spec can
            // interpose on phase 2 as well.
            let annotated = self.annotate(query)?;
            self.fire_mid(reset + annotated)?;
            reset + annotated
        } else {
            self.inner.reannotate(scope, query)?
        };
        self.fire(FaultPoint::AfterReannotate)?;
        Ok(total)
    }

    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    fn snapshot(&mut self) -> Result<AccessSnapshot> {
        self.fire(FaultPoint::BeforeSnapshot)?;
        self.inner.snapshot()
    }

    fn sign_state(&mut self) -> Result<BTreeMap<i64, char>> {
        self.inner.sign_state()
    }

    /// Transparent: the storage points ([`FaultPoint::STORAGE`]) are
    /// fired by the durability layer around its own WAL/page writes,
    /// not here.
    fn apply_sign_state(&mut self, signs: &BTreeMap<i64, char>, min_epoch: u64) -> Result<()> {
        self.inner.apply_sign_state(signs, min_epoch)
    }

    fn checkpoint(&mut self) -> Result<Checkpoint> {
        self.fire(FaultPoint::BeforeCheckpoint)?;
        self.inner.checkpoint()
    }

    fn restore(&mut self, checkpoint: &Checkpoint) -> Result<()> {
        self.fire(FaultPoint::BeforeRestore)?;
        self.inner.restore(checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, NativeXmlBackend, RelationalBackend};
    use crate::document::PreparedDocument;
    use xac_policy::policy::hospital_policy;
    use xac_xml::Document;

    fn prepared() -> PreparedDocument {
        let schema = crate::hospital_schema_for_docs();
        let doc = Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>1</psn><name>a</name>\
             <treatment><regular><med>m</med><bill>1</bill></regular></treatment></patient>\
             <patient><psn>2</psn><name>b</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap();
        PreparedDocument::prepare(&schema, doc, '-').unwrap()
    }

    #[test]
    fn plan_grammar_round_trips() {
        let plan = FaultPlan::parse(
            "after_delete:panic,mid_reannotate@3:error*2,before_snapshot,before_annotate+1",
        )
        .unwrap();
        assert_eq!(plan.specs().len(), 4);
        assert_eq!(plan.specs()[0].point, FaultPoint::AfterDelete);
        assert_eq!(plan.specs()[0].action, FaultAction::Panic);
        assert_eq!(plan.specs()[1].after_sign_writes, 3);
        assert_eq!(plan.specs()[1].times, 2);
        assert_eq!(plan.specs()[2].action, FaultAction::Error);
        assert_eq!(plan.specs()[3].skip, 1);
        let rendered = plan.to_string();
        assert_eq!(FaultPlan::parse(&rendered).unwrap(), plan);
    }

    #[test]
    fn plan_rejects_unknown_points_and_actions() {
        assert!(FaultPlan::parse("no_such_point").is_err());
        assert!(FaultPlan::parse("after_delete:explode").is_err());
        assert!(FaultPlan::parse("after_delete*many").is_err());
        assert!(FaultPlan::parse("mid_reannotate@x").is_err());
        assert!(FaultPlan::parse("after_delete+x").is_err());
    }

    #[test]
    fn empty_plan_is_transparent() {
        let p = prepared();
        let q = xac_policy::AnnotationQuery::from_policy(&hospital_policy());
        let mut plain = NativeXmlBackend::new();
        plain.load(&p).unwrap();
        plain.annotate(&q).unwrap();
        let mut faulting = FaultingBackend::new(NativeXmlBackend::new(), FaultPlan::new());
        faulting.load(&p).unwrap();
        faulting.annotate(&q).unwrap();
        assert_eq!(faulting.name(), "native/xml");
        assert_eq!(faulting.epoch(), plain.epoch());
        assert_eq!(faulting.sign_state().unwrap(), plain.sign_state().unwrap());
        assert_eq!(faulting.plan().injected(), 0);
    }

    #[test]
    fn one_shot_error_fires_once_then_disarms() {
        let p = prepared();
        let plan = FaultPlan::new().with(FaultSpec::once(
            FaultPoint::BeforeDelete,
            FaultAction::Error,
        ));
        let mut b = FaultingBackend::new(RelationalBackend::row(), plan);
        b.load(&p).unwrap();
        let path = xac_xpath::parse("//treatment").unwrap();
        let err = b.delete(&path).unwrap_err();
        assert_eq!(err, Error::FaultInjected { point: "before_delete".into() });
        assert_eq!(b.plan().injected(), 1);
        assert!(b.plan().is_exhausted());
        // Disarmed: the retry goes through and the first attempt
        // changed nothing (the fault fired *before* the delete).
        assert_eq!(b.delete(&path).unwrap(), 4);
    }

    #[test]
    fn skip_spares_early_arrivals() {
        let p = prepared();
        let plan = FaultPlan::parse("before_delete+1").unwrap();
        let mut b = FaultingBackend::new(NativeXmlBackend::new(), plan);
        b.load(&p).unwrap();
        let regular = xac_xpath::parse("//regular").unwrap();
        let exp = xac_xpath::parse("//experimental").unwrap();
        assert!(b.delete(&regular).is_ok(), "first arrival skipped");
        assert_eq!(b.plan().injected(), 0);
        assert!(b.delete(&exp).is_err(), "second arrival fires");
        assert_eq!(b.plan().injected(), 1);
    }

    #[test]
    fn panic_payload_names_the_point() {
        let p = prepared();
        let plan = FaultPlan::parse("after_insert:panic").unwrap();
        let mut b = FaultingBackend::new(NativeXmlBackend::new(), plan);
        b.load(&p).unwrap();
        let parent = xac_xpath::parse("//patient").unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = b.insert(&parent, "treatment", None);
        }))
        .unwrap_err();
        assert_eq!(injected_panic_point(&*caught).as_deref(), Some("after_insert"));
        assert_eq!(
            injected_panic_point(&Box::new("unrelated panic") as &(dyn std::any::Any + Send)),
            None
        );
    }

    #[test]
    fn mid_reannotate_leaves_half_applied_state_and_checkpoint_restores_it() {
        let p = prepared();
        let q = xac_policy::AnnotationQuery::from_policy(&hospital_policy());
        for mut inner in [RelationalBackend::row(), RelationalBackend::column()] {
            inner.load(&p).unwrap();
            inner.annotate(&q).unwrap();
            let golden = inner.sign_state().unwrap();
            let cp = inner.checkpoint().unwrap();
            let plan = FaultPlan::parse("mid_reannotate@1").unwrap();
            let mut b = FaultingBackend::new(inner, plan);
            let scope = vec![xac_xpath::parse("//patient").unwrap()];
            let err = b.reannotate(&scope, &q).unwrap_err();
            assert!(matches!(err, Error::FaultInjected { .. }));
            assert_ne!(
                b.sign_state().unwrap(),
                golden,
                "{}: fault must land mid-repair, leaving signs half-applied",
                b.name()
            );
            b.restore(&cp).unwrap();
            assert_eq!(b.sign_state().unwrap(), golden, "{}: restore heals", b.name());
            assert!(b.epoch() > cp.epoch(), "epoch strictly advances on restore");
        }
    }

    #[test]
    fn restore_rejects_foreign_checkpoints() {
        let p = prepared();
        let mut native = NativeXmlBackend::new();
        native.load(&p).unwrap();
        let cp = native.checkpoint().unwrap();
        assert_eq!(cp.backend(), "native/xml");
        let mut row = RelationalBackend::row();
        row.load(&p).unwrap();
        let before = row.sign_state().unwrap();
        assert!(row.restore(&cp).is_err());
        assert_eq!(row.sign_state().unwrap(), before, "failed restore leaves state untouched");
        let mut col = RelationalBackend::column();
        col.load(&p).unwrap();
        let row_cp = row.checkpoint().unwrap();
        assert!(col.restore(&row_cp).is_err(), "row checkpoint cannot restore column");
    }
}
