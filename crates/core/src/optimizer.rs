//! The optimizer module of Figure 3: policy redundancy elimination.
//!
//! A thin system-facing wrapper over
//! [`xac_policy::redundancy_elimination`] that also reports what was
//! removed — the paper's Table 1 → Table 3 step.

use xac_policy::{redundancy_elimination, redundancy_elimination_with_schema, Policy};
use xac_xml::Schema;

/// The outcome of optimizing a policy.
#[derive(Debug, Clone)]
pub struct OptimizationReport {
    /// The redundancy-free policy.
    pub optimized: Policy,
    /// Ids of the rules that were removed, in original order.
    pub removed: Vec<String>,
}

/// Run redundancy elimination and report the removed rules.
pub fn optimize(policy: &Policy) -> OptimizationReport {
    report(policy, redundancy_elimination(policy))
}

/// Schema-aware optimization: containment is decided on schema-valid
/// documents, catching redundancies the blind test cannot prove.
pub fn optimize_with_schema(policy: &Policy, schema: &Schema) -> OptimizationReport {
    report(policy, redundancy_elimination_with_schema(policy, schema))
}

fn report(policy: &Policy, optimized: Policy) -> OptimizationReport {
    let kept: std::collections::BTreeSet<&str> =
        optimized.rules.iter().map(|r| r.id.as_str()).collect();
    let removed = policy
        .rules
        .iter()
        .filter(|r| !kept.contains(r.id.as_str()))
        .map(|r| r.id.clone())
        .collect();
    OptimizationReport { optimized, removed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xac_policy::policy::hospital_policy;

    #[test]
    fn reports_table3_removals() {
        let report = optimize(&hospital_policy());
        assert_eq!(report.removed, vec!["R4", "R7", "R8"]);
        assert_eq!(report.optimized.len(), 5);
    }

    #[test]
    fn no_removals_reported_when_none_redundant() {
        let p = xac_policy::Policy::parse("default deny\nconflict deny\nA allow //a\n").unwrap();
        let report = optimize(&p);
        assert!(report.removed.is_empty());
        assert_eq!(report.optimized, p);
    }
}
