//! The re-annotator module of Figure 3 (paper §5.3).
//!
//! When an update `u` hits the document, full re-annotation would reset
//! everything and re-run the whole policy. Instead, the re-annotator:
//!
//! 1. runs **Trigger** (expansion + containment + dependency closure) to
//!    find the rules whose scopes may have changed;
//! 2. resets only those rules' scopes to the default sign;
//! 3. applies the annotation query built from the triggered rules alone.
//!
//! The plan is computed *before* the update is applied (static analysis
//! only — no document access), matching the paper's architecture where
//! `Trigger` costs `O(n · h)` containment tests.
//!
//! **Known approximation (inherited from the paper):** the dependency
//! graph links rules related by *containment*. Two rules whose scopes
//! overlap without either containing the other are not linked, so a node
//! covered by a triggered rule and an untriggered overlapping rule of the
//! same effect can briefly lose the untriggered rule's sign until the next
//! full annotation. Redundancy elimination removes the same-effect
//! *contained* cases; the paper's future-work note on "schema-aware
//! optimizations … more accurate results" refers to the remainder.

use crate::backend::Backend;
use crate::error::Result;
use xac_policy::{trigger, AnnotationQuery, DependencyGraph, Policy, PolicyAnalysis, Rule};
use xac_xml::Schema;
use xac_xpath::{ContainmentOracle, Path};

/// The statically-computed plan for one update.
#[derive(Debug, Clone)]
pub struct ReannotationPlan {
    /// The triggered rules (clones, in policy order).
    pub triggered: Vec<Rule>,
    /// The scopes to reset: the triggered rules' resources.
    pub scope: Vec<Path>,
    /// The annotation query over the triggered rules.
    pub query: AnnotationQuery,
}

impl ReannotationPlan {
    /// True when the update touches no rule — nothing to do.
    pub fn is_empty(&self) -> bool {
        self.triggered.is_empty()
    }

    /// Ids of the triggered rules.
    pub fn triggered_ids(&self) -> Vec<&str> {
        self.triggered.iter().map(|r| r.id.as_str()).collect()
    }
}

/// Compute the re-annotation plan for an update (static analysis only).
pub fn plan(
    policy: &Policy,
    graph: &DependencyGraph,
    update: &Path,
    schema: Option<&Schema>,
) -> ReannotationPlan {
    let indices = trigger(policy, graph, update, schema);
    let expansions: Vec<Vec<Path>> = policy
        .rules
        .iter()
        .map(|r| xac_xpath::expand(&r.resource, schema))
        .collect();
    assemble(policy, &indices, &expansions, &ContainmentOracle::new())
}

/// The [`plan`] fast path against a precomputed [`PolicyAnalysis`]: the
/// trigger context, rule expansions and containment answers are all
/// reused across updates instead of re-derived per call. The resulting
/// plan is identical to [`plan`] over the matching graph and schema.
pub fn plan_with_analysis(analysis: &PolicyAnalysis, update: &Path) -> ReannotationPlan {
    let _span = xac_obs::span("reannotate.plan");
    let indices = analysis.trigger(update);
    assemble(analysis.policy(), &indices, analysis.expansions(), analysis.oracle())
}

fn assemble(
    policy: &Policy,
    indices: &[usize],
    expansions: &[Vec<Path>],
    oracle: &ContainmentOracle,
) -> ReannotationPlan {
    let triggered: Vec<Rule> = indices.iter().map(|&i| policy.rules[i].clone()).collect();
    // Reset scopes are the triggered rules' *expansions* (predicate-free
    // prefixes included), not their raw resources: after the update a
    // node may have left a rule's scope (its predicate no longer holds)
    // while keeping a stale sign — `//a[b]` no longer matches once `b` is
    // deleted, but the prefix `//a` still reaches the node to reset it.
    let mut scope: Vec<Path> = Vec::new();
    for &i in indices {
        for p in &expansions[i] {
            if !scope.contains(p) {
                scope.push(p.clone());
            }
        }
    }
    // The repair query covers every rule whose scope may intersect the
    // reset region — resetting the (broad, predicate-free) expansion
    // scopes can clear signs written by rules the update itself did not
    // touch, and those rules must be re-applied for the repair to
    // converge to the full-annotation fixpoint.
    let affected: Vec<Rule> = policy
        .rules
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            indices.contains(i)
                || expansions[*i].iter().any(|e| {
                    scope
                        .iter()
                        .any(|s| oracle.contained_in(e, s) || oracle.contained_in(s, e))
                })
        })
        .map(|(_, r)| r.clone())
        .collect();
    let query = AnnotationQuery::from_rules(
        policy.default_semantics,
        policy.conflict_resolution,
        &affected,
    );
    ReannotationPlan { triggered, scope, query }
}

/// Apply a plan to a backend; returns sign writes (0 for an empty plan).
pub fn apply(backend: &mut dyn Backend, plan: &ReannotationPlan) -> Result<usize> {
    if plan.is_empty() {
        return Ok(0);
    }
    let _span = xac_obs::span("reannotate.apply");
    backend.reannotate(&plan.scope, &plan.query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, NativeXmlBackend};
    use crate::document::PreparedDocument;
    use xac_policy::policy::hospital_policy;
    use xac_policy::redundancy_elimination;
    use xac_xml::Document;

    #[test]
    fn plan_for_treatment_deletion() {
        let policy = redundancy_elimination(&hospital_policy());
        let graph = DependencyGraph::build(&policy);
        let schema = crate::hospital_schema_for_docs();
        let u = xac_xpath::parse("//patient/treatment").unwrap();
        let plan = plan(&policy, &graph, &u, Some(&schema));
        assert!(plan.triggered_ids().contains(&"R1"));
        assert!(plan.triggered_ids().contains(&"R3"));
        assert!(!plan.is_empty());
        assert_eq!(plan.scope.len(), plan.triggered.len());
    }

    #[test]
    fn empty_plan_for_unrelated_update() {
        let policy = redundancy_elimination(&hospital_policy());
        let graph = DependencyGraph::build(&policy);
        let schema = crate::hospital_schema_for_docs();
        let u = xac_xpath::parse("//staffinfo/staff").unwrap();
        let plan = plan(&policy, &graph, &u, Some(&schema));
        assert!(plan.is_empty());
        let mut b = NativeXmlBackend::new();
        // Applying an empty plan never touches the backend (no error even
        // though nothing is loaded).
        assert_eq!(apply(&mut b, &plan).unwrap(), 0);
    }

    /// The paper's running example end-to-end: delete the treatments, run
    /// the plan, and patients become accessible.
    #[test]
    fn reannotation_fixes_patient_accessibility() {
        let schema = crate::hospital_schema_for_docs();
        let doc = Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>1</psn><name>a</name>\
             <treatment><regular><med>m</med><bill>1</bill></regular></treatment></patient>\
             <patient><psn>2</psn><name>b</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap();
        let prepared = PreparedDocument::prepare(&schema, doc, '-').unwrap();
        let policy = redundancy_elimination(&hospital_policy());
        let graph = DependencyGraph::build(&policy);

        let mut b = NativeXmlBackend::new();
        b.load(&prepared).unwrap();
        crate::annotator::annotate(&mut b, &policy).unwrap();
        let q_patients = xac_xpath::parse("//patient").unwrap();
        let (_, allowed) = b.query_nodes_allowed(&q_patients).unwrap();
        assert!(!allowed, "patient 1 is denied while treated");

        let u = xac_xpath::parse("//patient/treatment").unwrap();
        let plan = plan(&policy, &graph, &u, Some(&schema));
        b.delete(&u).unwrap();
        apply(&mut b, &plan).unwrap();

        let (n, allowed) = b.query_nodes_allowed(&q_patients).unwrap();
        assert_eq!(n, 2);
        assert!(allowed, "all patients accessible after treatments vanish");
    }
}
