//! The requester module of Figure 3: all-or-nothing query answering.
//!
//! "We follow an all-or-nothing semantics for query answering: if all the
//! nodes requested by the XPath expression are accessible … then we
//! return the requested nodes. Otherwise, we deny access to the user
//! request." (§4)

use crate::backend::Backend;
use crate::error::Result;
use xac_xpath::Path;

/// The outcome of a user request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Every requested node is accessible; the result may be returned.
    Granted { nodes: usize },
    /// At least one requested node is inaccessible; the request is denied.
    Denied { nodes: usize },
}

impl Decision {
    /// True when access was granted.
    pub fn granted(&self) -> bool {
        matches!(self, Decision::Granted { .. })
    }

    /// Number of nodes the query selected (regardless of outcome).
    pub fn node_count(&self) -> usize {
        match self {
            Decision::Granted { nodes } | Decision::Denied { nodes } => *nodes,
        }
    }
}

/// Evaluate a user request against an annotated backend.
pub fn request(backend: &mut dyn Backend, path: &Path) -> Result<Decision> {
    let (nodes, allowed) = backend.query_nodes_allowed(path)?;
    Ok(if allowed { Decision::Granted { nodes } } else { Decision::Denied { nodes } })
}

/// Parse and evaluate a user request.
pub fn request_str(backend: &mut dyn Backend, query: &str) -> Result<Decision> {
    let path = xac_xpath::parse(query)?;
    request(backend, &path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::NativeXmlBackend;
    use crate::document::PreparedDocument;
    use xac_policy::policy::hospital_policy;
    use xac_xml::Document;

    fn annotated_backend() -> NativeXmlBackend {
        let schema = crate::hospital_schema_for_docs();
        let doc = Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>1</psn><name>a</name>\
             <treatment><regular><med>m</med><bill>1</bill></regular></treatment></patient>\
             <patient><psn>2</psn><name>b</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap();
        let p = PreparedDocument::prepare(&schema, doc, '-').unwrap();
        let mut b = NativeXmlBackend::new();
        b.load(&p).unwrap();
        crate::annotator::annotate(&mut b, &hospital_policy()).unwrap();
        b
    }

    #[test]
    fn all_or_nothing_semantics() {
        let mut b = annotated_backend();
        // Names are all accessible (R2).
        let d = request_str(&mut b, "//patient/name").unwrap();
        assert_eq!(d, Decision::Granted { nodes: 2 });
        // One of the two patients is denied (R3): whole request denied.
        let d = request_str(&mut b, "//patient").unwrap();
        assert_eq!(d, Decision::Denied { nodes: 2 });
        assert!(!d.granted());
        // Narrowing to the accessible patient grants.
        let d = request_str(&mut b, "//patient[psn = 2]").unwrap();
        assert_eq!(d, Decision::Granted { nodes: 1 });
        // The regular treatment is accessible (R6) but its med is not.
        assert!(request_str(&mut b, "//regular").unwrap().granted());
        assert!(!request_str(&mut b, "//med").unwrap().granted());
    }

    #[test]
    fn empty_result_is_vacuously_granted() {
        let mut b = annotated_backend();
        let d = request_str(&mut b, "//nonexistent").unwrap();
        assert_eq!(d, Decision::Granted { nodes: 0 });
    }

    #[test]
    fn malformed_query_errors() {
        let mut b = annotated_backend();
        assert!(request_str(&mut b, "//bad[").is_err());
    }
}
