//! Prepared documents: everything the backends need to load one document.
//!
//! The paper's experiments pre-materialize two artifacts per document —
//! the XML text (loaded by the native store) and the SQL `INSERT` file
//! (executed by the relational stores; Table 5 lists both sizes). A
//! [`PreparedDocument`] bundles those with the parsed tree, the derived
//! relational mapping and the node↔universal-id correspondence.

use crate::error::Result;
use xac_shrex::{Mapping, ShreddedDocument};
use xac_xml::{Document, Schema};

/// A document prepared for loading into any backend.
#[derive(Debug, Clone)]
pub struct PreparedDocument {
    /// The parsed tree (source of truth for updates and cross-checks).
    pub doc: Document,
    /// Serialized XML text (native-store load input).
    pub xml_text: String,
    /// The ShreX-style mapping derived from the schema.
    pub mapping: Mapping,
    /// `CREATE TABLE` DDL for the relational stores.
    pub ddl: String,
    /// SQL `INSERT` script (relational load input).
    pub sql_text: String,
    /// Tuple-level view with the node↔universal-id mapping.
    pub shredded: ShreddedDocument,
    /// The sign every node starts from (the policy default).
    pub default_sign: char,
}

impl PreparedDocument {
    /// Prepare a document under a schema. `default_sign` seeds every `s`
    /// column / decides which nodes carry explicit signs natively.
    pub fn prepare(schema: &Schema, doc: Document, default_sign: char) -> Result<Self> {
        let mapping = Mapping::derive(schema)?;
        let xml_text = doc.to_xml();
        let ddl = mapping.ddl();
        let shredded = xac_shrex::shred_document(&doc, &mapping, default_sign)?;
        let sql_text = xac_shrex::shred_to_sql(&doc, &mapping, default_sign)?;
        Ok(PreparedDocument { doc, xml_text, mapping, ddl, sql_text, shredded, default_sign })
    }

    /// Size in bytes of the XML artifact (Table 5, column "XML").
    pub fn xml_bytes(&self) -> usize {
        self.xml_text.len()
    }

    /// Size in bytes of the SQL artifact (Table 5, column "SQL").
    pub fn sql_bytes(&self) -> usize {
        self.sql_text.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        crate::hospital_schema_for_docs()
    }

    fn doc() -> Document {
        Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>1</psn><name>a</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap()
    }

    #[test]
    fn prepares_all_artifacts() {
        let p = PreparedDocument::prepare(&schema(), doc(), '-').unwrap();
        assert!(p.xml_bytes() > 0);
        assert!(p.sql_bytes() > p.xml_bytes(), "INSERT text is bulkier than XML");
        assert_eq!(p.shredded.len(), p.doc.element_count());
        assert!(p.ddl.contains("CREATE TABLE patient"));
        assert_eq!(p.default_sign, '-');
    }

    #[test]
    fn xml_round_trips() {
        let p = PreparedDocument::prepare(&schema(), doc(), '-').unwrap();
        let re = Document::parse_str(&p.xml_text).unwrap();
        assert_eq!(re.to_xml(), p.doc.to_xml());
    }
}
