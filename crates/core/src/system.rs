//! The assembled system (Figure 3): schema + policy + prepared document,
//! driving any number of storage backends.

use crate::annotator;
use crate::backend::{AnnotateMode, Backend};
use crate::document::PreparedDocument;
use crate::error::Result;
use crate::optimizer;
use crate::reannotator::{self, ReannotationPlan};
use crate::requester::{self, Decision};
use std::collections::BTreeSet;
use xac_policy::{DefaultSemantics, DependencyGraph, Policy, PolicyAnalysis};
use xac_xml::{Document, NodeId, Schema};
use xac_xpath::Path;

/// Outcome of applying one update to a backend.
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// Elements removed (delete updates).
    pub removed_elements: usize,
    /// Elements inserted (insert updates).
    pub inserted_elements: usize,
    /// The static re-annotation plan that was applied.
    pub plan: ReannotationPlan,
    /// Sign writes performed by partial re-annotation.
    pub sign_writes: usize,
}

/// Outcome of a *guarded* update: the write-access decision, and the
/// update outcome when it was granted. This implements the paper's §8
/// future-work item ("extend our framework to handle access control for
/// update operations") with the same all-or-nothing semantics as reads:
/// a delete may only touch accessible nodes, an insert may only extend
/// accessible parents.
#[derive(Debug, Clone)]
pub enum GuardedUpdate {
    /// The requester may not perform this update; nothing changed.
    Denied(Decision),
    /// The update ran; partial re-annotation restored consistency.
    Applied(UpdateOutcome),
}

impl GuardedUpdate {
    /// True when the update was applied.
    pub fn applied(&self) -> bool {
        matches!(self, GuardedUpdate::Applied(_))
    }
}

/// Staged construction of a [`System`].
///
/// Obtained from [`System::builder`]; every knob has a default matching
/// the paper's published configuration (schema-blind containment,
/// paper-faithful sign writes), so
/// `System::builder(schema, policy, doc).build()` is the baseline and
/// each extension is opted into explicitly:
///
/// ```
/// use xac_core::{AnnotateMode, System};
/// use xac_policy::policy::hospital_policy;
///
/// let schema = xac_core::hospital_schema_for_docs();
/// let doc = xac_xml::Document::parse_str(
///     "<hospital><dept><patients>\
///      <patient><psn>1</psn><name>a</name></patient>\
///      </patients><staffinfo/></dept></hospital>").unwrap();
/// let system = System::builder(schema, hospital_policy(), doc)
///     .schema_aware(true)
///     .annotate_mode(AnnotateMode::Batched)
///     .build()
///     .unwrap();
/// assert_eq!(system.annotate_mode(), AnnotateMode::Batched);
/// ```
#[must_use = "a builder does nothing until .build() is called"]
pub struct SystemBuilder {
    schema: Schema,
    policy: Policy,
    doc: Document,
    schema_aware: bool,
    annotate_mode: AnnotateMode,
}

impl SystemBuilder {
    /// Use *schema-aware* containment for both the optimizer and the
    /// dependency graph — the paper's §8 future-work item. This can
    /// eliminate more rules than Table 3 (e.g. under the hospital
    /// schema, R5 ⊑ R3 because every `experimental` lives inside a
    /// `treatment`) without changing the enforced semantics.
    pub fn schema_aware(mut self, yes: bool) -> SystemBuilder {
        self.schema_aware = yes;
        self
    }

    /// The annotation write mode relational backends driven by this
    /// system should use (see [`AnnotateMode`]). The system records the
    /// preference ([`System::annotate_mode`]); components that construct
    /// backends — the CLI, the serving engine — read it from here.
    pub fn annotate_mode(mut self, mode: AnnotateMode) -> SystemBuilder {
        self.annotate_mode = mode;
        self
    }

    /// Assemble the system: the document is validated against the
    /// schema, the policy is optimized (Fig. 4), the dependency graph is
    /// built (Fig. 7), and the document is prepared for loading
    /// (shredded SQL + serialized XML).
    pub fn build(self) -> Result<System> {
        let SystemBuilder { schema, policy, doc, schema_aware, annotate_mode } = self;
        schema.validate(&doc)?;
        let report = if schema_aware {
            optimizer::optimize_with_schema(&policy, &schema)
        } else {
            optimizer::optimize(&policy)
        };
        let optimized = report.optimized;
        // The Trigger context (expansions, dependency graph, containment
        // cache) is built once here; every update reuses it.
        let analysis = if schema_aware {
            PolicyAnalysis::build_schema_aware(&optimized, &schema)
        } else {
            PolicyAnalysis::build(&optimized, Some(&schema))
        };
        let default_sign = match optimized.default_semantics {
            DefaultSemantics::Allow => '+',
            DefaultSemantics::Deny => '-',
        };
        let prepared = PreparedDocument::prepare(&schema, doc, default_sign)?;
        Ok(System {
            schema,
            original_policy: policy,
            policy: optimized,
            analysis,
            prepared,
            annotate_mode,
        })
    }
}

/// One configured xmlac deployment: a schema, an (optimized) policy, and
/// a prepared document that any backend can load.
pub struct System {
    schema: Schema,
    original_policy: Policy,
    policy: Policy,
    analysis: PolicyAnalysis,
    prepared: PreparedDocument,
    annotate_mode: AnnotateMode,
}

impl System {
    /// Start building a system from its three ingredients. All other
    /// configuration happens on the returned [`SystemBuilder`].
    pub fn builder(schema: Schema, policy: Policy, doc: Document) -> SystemBuilder {
        SystemBuilder {
            schema,
            policy,
            doc,
            schema_aware: false,
            annotate_mode: AnnotateMode::default(),
        }
    }

    /// Assemble a system with the default (paper-faithful) configuration.
    #[deprecated(since = "0.1.0", note = "use `System::builder(schema, policy, doc).build()`")]
    pub fn new(schema: Schema, policy: Policy, doc: Document) -> Result<System> {
        Self::builder(schema, policy, doc).build()
    }

    /// Assemble a system using schema-aware containment.
    #[deprecated(
        since = "0.1.0",
        note = "use `System::builder(schema, policy, doc).schema_aware(true).build()`"
    )]
    pub fn new_schema_aware(schema: Schema, policy: Policy, doc: Document) -> Result<System> {
        Self::builder(schema, policy, doc).schema_aware(true).build()
    }

    /// The XML schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The optimized policy actually enforced.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The policy as supplied, before redundancy elimination.
    pub fn original_policy(&self) -> &Policy {
        &self.original_policy
    }

    /// The rule dependency graph.
    pub fn dependency_graph(&self) -> &DependencyGraph {
        self.analysis.graph()
    }

    /// The precomputed static-analysis context (expansions, dependency
    /// graph, containment cache).
    pub fn analysis(&self) -> &PolicyAnalysis {
        &self.analysis
    }

    /// The prepared document (load artifacts and sizes).
    pub fn prepared(&self) -> &PreparedDocument {
        &self.prepared
    }

    /// The annotation write mode configured at build time. Components
    /// that construct relational backends for this system (the CLI, the
    /// serving engine) honour this preference.
    pub fn annotate_mode(&self) -> AnnotateMode {
        self.annotate_mode
    }

    /// Load the prepared document into a backend.
    pub fn load(&self, backend: &mut dyn Backend) -> Result<()> {
        backend.load(&self.prepared)
    }

    /// Fully annotate a loaded backend; returns sign writes.
    pub fn annotate(&self, backend: &mut dyn Backend) -> Result<usize> {
        annotator::annotate(backend, &self.policy)
    }

    /// Reset and fully re-annotate (the paper's baseline for Fig. 12).
    pub fn full_reannotate(&self, backend: &mut dyn Backend) -> Result<usize> {
        annotator::full_reannotate(backend, &self.policy)
    }

    /// Answer a user request (all-or-nothing).
    pub fn request(&self, backend: &mut dyn Backend, query: &str) -> Result<Decision> {
        requester::request_str(backend, query)
    }

    /// Answer a pre-parsed user request.
    pub fn request_path(&self, backend: &mut dyn Backend, path: &Path) -> Result<Decision> {
        requester::request(backend, path)
    }

    /// Compute the re-annotation plan for an update (static analysis; no
    /// backend involved).
    pub fn plan_update(&self, update: &Path) -> ReannotationPlan {
        reannotator::plan_with_analysis(&self.analysis, update)
    }

    /// Apply a delete update to one backend: compute the plan, delete the
    /// designated subtrees, and partially re-annotate. The system's own
    /// prepared document is *not* mutated — reloading a backend restores
    /// the original document, which is exactly what the experiment loop
    /// needs (each update runs against a fresh copy).
    pub fn apply_update(
        &self,
        backend: &mut dyn Backend,
        update: &Path,
    ) -> Result<UpdateOutcome> {
        let plan = self.plan_update(update);
        let removed_elements = backend.delete(update)?;
        let sign_writes = reannotator::apply(backend, &plan)?;
        Ok(UpdateOutcome { removed_elements, inserted_elements: 0, plan, sign_writes })
    }

    /// Apply an insert update: add one `name` element (optionally with
    /// text content) under every node matched by `parent_path`, then
    /// partially re-annotate. The update path handed to Trigger is
    /// `parent_path/name` — the location of the inserted nodes, exactly
    /// as §5.3 defines update expressions.
    pub fn apply_insert(
        &self,
        backend: &mut dyn Backend,
        parent_path: &Path,
        name: &str,
        text: Option<&str>,
    ) -> Result<UpdateOutcome> {
        let update_path = parent_path
            .clone()
            .then(xac_xpath::Step::child(name.to_string()));
        let plan = self.plan_update(&update_path);
        let inserted_elements = backend.insert(parent_path, name, text)?;
        let sign_writes = reannotator::apply(backend, &plan)?;
        Ok(UpdateOutcome { removed_elements: 0, inserted_elements, plan, sign_writes })
    }

    /// Access-controlled delete (§8 extension): the update runs only when
    /// every node it designates is currently accessible.
    pub fn guarded_delete(
        &self,
        backend: &mut dyn Backend,
        update: &Path,
    ) -> Result<GuardedUpdate> {
        let decision = requester::request(backend, update)?;
        if !decision.granted() {
            return Ok(GuardedUpdate::Denied(decision));
        }
        Ok(GuardedUpdate::Applied(self.apply_update(backend, update)?))
    }

    /// Access-controlled insert (§8 extension): the insert runs only when
    /// every designated parent is currently accessible.
    pub fn guarded_insert(
        &self,
        backend: &mut dyn Backend,
        parent_path: &Path,
        name: &str,
        text: Option<&str>,
    ) -> Result<GuardedUpdate> {
        let decision = requester::request(backend, parent_path)?;
        if !decision.granted() {
            return Ok(GuardedUpdate::Denied(decision));
        }
        Ok(GuardedUpdate::Applied(self.apply_insert(backend, parent_path, name, text)?))
    }

    /// Reference semantics: the accessible nodes of the prepared document
    /// under the enforced policy, evaluated directly on the tree
    /// (Table 2). Backends are cross-checked against this.
    pub fn reference_accessible(&self) -> BTreeSet<NodeId> {
        xac_policy::accessible_nodes(&self.prepared.doc, &self.policy)
    }

    /// The accessible node set, computed the way the configured
    /// [`AnnotateMode`] would: under [`AnnotateMode::Compiled`] the
    /// policy's annotation query runs as VM bytecode
    /// ([`crate::view::compiled_accessible`], falling back to the
    /// interpreter outside the compilable fragment); otherwise the
    /// interpreted Table 2 reference. Always equal to
    /// [`Self::reference_accessible`] — the equivalence suite holds the
    /// two paths byte-identical.
    pub fn accessible_set(&self) -> BTreeSet<NodeId> {
        if self.annotate_mode == AnnotateMode::Compiled {
            let query = xac_policy::AnnotationQuery::from_policy(&self.policy);
            if let Some(set) = crate::view::compiled_accessible(
                &self.prepared.doc,
                &query,
                Some(&self.schema),
            ) {
                return set;
            }
        }
        self.reference_accessible()
    }

    /// Derive the security view of the prepared document: the
    /// accessible-only sub-document a reader may see (see
    /// [`crate::view`]). Under [`AnnotateMode::Compiled`] the accessible
    /// set feeding the pruning pass comes from the bytecode VM.
    pub fn security_view(&self, mode: crate::view::ViewMode) -> Document {
        crate::view::security_view(&self.prepared.doc, &self.accessible_set(), mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{NativeXmlBackend, RelationalBackend};
    use xac_policy::policy::hospital_policy;

    fn figure2() -> Document {
        Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>033</psn><name>john doe</name>\
             <treatment><regular><med>enoxaparin</med><bill>700</bill></regular></treatment>\
             </patient>\
             <patient><psn>042</psn><name>jane doe</name>\
             <treatment><experimental><test>hypnosis</test><bill>1600</bill></experimental></treatment>\
             </patient>\
             <patient><psn>099</psn><name>joy smith</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap()
    }

    fn system() -> System {
        System::builder(crate::hospital_schema_for_docs(), hospital_policy(), figure2())
            .build()
            .unwrap()
    }

    #[test]
    fn construction_optimizes_policy() {
        let s = system();
        assert_eq!(s.original_policy().len(), 8);
        assert_eq!(s.policy().len(), 5, "Table 3");
    }

    #[test]
    fn deprecated_constructors_still_assemble() {
        // The pre-builder API stays as thin wrappers; equivalence with
        // the builder keeps old downstream code working.
        #[allow(deprecated)]
        let old = System::new(crate::hospital_schema_for_docs(), hospital_policy(), figure2())
            .unwrap();
        let new = system();
        assert_eq!(old.policy().len(), new.policy().len());
        assert_eq!(old.reference_accessible(), new.reference_accessible());
        #[allow(deprecated)]
        let old_aware = System::new_schema_aware(
            crate::hospital_schema_for_docs(),
            hospital_policy(),
            figure2(),
        )
        .unwrap();
        assert_eq!(old_aware.reference_accessible(), new.reference_accessible());
    }

    #[test]
    fn compiled_accessible_set_and_view_match_reference() {
        let compiled =
            System::builder(crate::hospital_schema_for_docs(), hospital_policy(), figure2())
                .annotate_mode(crate::AnnotateMode::Compiled)
                .build()
                .unwrap();
        assert_eq!(
            compiled.accessible_set(),
            compiled.reference_accessible(),
            "VM accessible set equals Table 2 reference"
        );
        let reference = system();
        for mode in [crate::view::ViewMode::Prune, crate::view::ViewMode::Promote] {
            assert_eq!(
                compiled.security_view(mode).to_xml(),
                reference.security_view(mode).to_xml(),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn builder_records_annotate_mode() {
        let s = System::builder(crate::hospital_schema_for_docs(), hospital_policy(), figure2())
            .annotate_mode(crate::AnnotateMode::Batched)
            .build()
            .unwrap();
        assert_eq!(s.annotate_mode(), crate::AnnotateMode::Batched);
        assert_eq!(system().annotate_mode(), crate::AnnotateMode::PaperFaithful);
    }

    #[test]
    fn schema_aware_construction_eliminates_r5() {
        let s = System::builder(
            crate::hospital_schema_for_docs(),
            hospital_policy(),
            figure2(),
        )
        .schema_aware(true)
        .build()
        .unwrap();
        let ids: Vec<&str> = s.policy().rules.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["R1", "R2", "R3", "R6"], "R5 ⊑ R3 under the schema");
        // The stronger optimization must not change the semantics.
        let blind = system();
        assert_eq!(
            s.reference_accessible(),
            blind.reference_accessible(),
            "schema-aware optimization altered accessibility"
        );
        // Backends agree too.
        let mut b = NativeXmlBackend::new();
        s.load(&mut b).unwrap();
        s.annotate(&mut b).unwrap();
        assert_eq!(b.accessible_count().unwrap(), s.reference_accessible().len());
    }

    #[test]
    fn rejects_invalid_documents() {
        let bad = Document::parse_str("<hospital><bogus/></hospital>").unwrap();
        assert!(System::builder(crate::hospital_schema_for_docs(), hospital_policy(), bad)
            .build()
            .is_err());
    }

    #[test]
    fn end_to_end_on_all_backends() {
        let s = system();
        let expected = s.reference_accessible().len();
        let mut backends: Vec<Box<dyn Backend>> = vec![
            Box::new(RelationalBackend::row()),
            Box::new(RelationalBackend::column()),
            Box::new(NativeXmlBackend::new()),
        ];
        for b in backends.iter_mut() {
            s.load(b.as_mut()).unwrap();
            s.annotate(b.as_mut()).unwrap();
            assert_eq!(b.accessible_count().unwrap(), expected, "{}", b.name());
            assert!(s.request(b.as_mut(), "//patient/name").unwrap().granted());
            assert!(!s.request(b.as_mut(), "//patient").unwrap().granted());
        }
    }

    #[test]
    fn update_flow_on_all_backends() {
        let s = system();
        let u = xac_xpath::parse("//patient/treatment").unwrap();
        let mut backends: Vec<Box<dyn Backend>> = vec![
            Box::new(RelationalBackend::row()),
            Box::new(RelationalBackend::column()),
            Box::new(NativeXmlBackend::new()),
        ];
        for b in backends.iter_mut() {
            s.load(b.as_mut()).unwrap();
            s.annotate(b.as_mut()).unwrap();
            let outcome = s.apply_update(b.as_mut(), &u).unwrap();
            assert_eq!(outcome.removed_elements, 8, "{}", b.name());
            assert!(outcome.plan.triggered_ids().contains(&"R1"));
            // All three patients lack treatments now: //patient granted.
            assert!(
                s.request(b.as_mut(), "//patient").unwrap().granted(),
                "{} after update",
                b.name()
            );
            // Reload restores the original document.
            s.load(b.as_mut()).unwrap();
            s.annotate(b.as_mut()).unwrap();
            assert!(!s.request(b.as_mut(), "//patient").unwrap().granted());
        }
    }
}
