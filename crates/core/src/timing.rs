//! Wall-clock measurement helpers for the experiment harness.

use std::time::{Duration, Instant};

/// Run `f`, returning its result and elapsed wall-clock time.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// A named series of measurements with simple statistics.
#[derive(Debug, Clone, Default)]
pub struct Timings {
    samples: Vec<Duration>,
}

impl Timings {
    /// Empty series.
    pub fn new() -> Timings {
        Timings::default()
    }

    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        self.samples.push(d);
    }

    /// Run and record `f`, passing its result through.
    pub fn measure<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let (out, d) = time(f);
        self.record(d);
        out
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total recorded time.
    pub fn total(&self) -> Duration {
        self.samples.iter().sum()
    }

    /// Mean sample (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.total() / self.samples.len() as u32
    }

    /// Minimum sample (zero when empty).
    pub fn min(&self) -> Duration {
        self.samples.iter().min().copied().unwrap_or(Duration::ZERO)
    }

    /// Maximum sample (zero when empty).
    pub fn max(&self) -> Duration {
        self.samples.iter().max().copied().unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_result() {
        let (v, d) = time(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn statistics() {
        let mut t = Timings::new();
        assert!(t.is_empty());
        assert_eq!(t.mean(), Duration::ZERO);
        t.record(Duration::from_millis(10));
        t.record(Duration::from_millis(30));
        assert_eq!(t.len(), 2);
        assert_eq!(t.total(), Duration::from_millis(40));
        assert_eq!(t.mean(), Duration::from_millis(20));
        assert_eq!(t.min(), Duration::from_millis(10));
        assert_eq!(t.max(), Duration::from_millis(30));
    }

    #[test]
    fn measure_passes_through() {
        let mut t = Timings::new();
        let out = t.measure(|| "ok");
        assert_eq!(out, "ok");
        assert_eq!(t.len(), 1);
    }
}
