//! Unified error type for the system layer.

use std::fmt;

/// Errors surfaced by the system and its backends.
///
/// The enum is `#[non_exhaustive]`: downstream crates (the serving
/// engine, the CLI) match on the variants they can act on and must keep
/// a wildcard arm, so new structured variants can be added without a
/// breaking release.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// XML substrate failure.
    Xml(String),
    /// XPath parsing/analysis failure.
    XPath(String),
    /// Policy failure.
    Policy(String),
    /// Relational substrate failure.
    Relational(String),
    /// Shredding/translation failure.
    Shrex(String),
    /// Native store failure.
    Store(String),
    /// An operation needed a loaded document but the backend has none.
    /// `backend` is the backend's [`crate::Backend::name`].
    BackendNotLoaded {
        /// Name of the backend that was driven while empty.
        backend: &'static str,
    },
    /// An annotation write mode string did not name a known mode.
    /// Carries the rejected input; valid spellings are listed by
    /// [`crate::AnnotateMode::VALID_NAMES`].
    UnknownAnnotateMode(String),
    /// A name-typed input (`what` = "backend", "role", …) did not match
    /// any valid spelling. The shared shape behind every CLI/wire name
    /// parse — same message format as [`Error::UnknownAnnotateMode`],
    /// generic over what was being named so higher layers (`BackendKind`,
    /// the serving `Role`) report errors identically.
    UnknownName {
        /// What kind of thing was being named (singular noun).
        what: &'static str,
        /// The rejected input.
        input: String,
        /// Comma-separated valid spellings.
        valid: String,
    },
    /// A deterministic fault fired at a named fault point (injected by
    /// [`crate::FaultingBackend`] from a [`crate::FaultPlan`]). Never
    /// produced in production configurations — only under test/bench
    /// fault plans — but structured so recovery code can tell an
    /// injected failure from an organic one.
    FaultInjected {
        /// The fault point that fired, e.g. `after_delete`.
        point: String,
    },
    /// The serving engine exhausted its degradation ladder and entered
    /// read-only quarantine: reads keep being served from the last
    /// published snapshot, writes are rejected with this error.
    Quarantined {
        /// Epoch of the snapshot still being served.
        last_good_epoch: u64,
        /// What drove the engine into quarantine.
        cause: String,
    },
    /// Durable-storage (pager/WAL) failure. Produced by the `xac-serve`
    /// durability layer wrapping `xac-store` errors, so pager and WAL
    /// I/O failures flow through the degradation ladder as structured
    /// errors instead of panics, and the CLI can give them a stable
    /// exit code.
    Storage {
        /// The storage failure class (`io`, `checksum`, `torn_write`,
        /// `corrupt` — `xac_store::StoreErrorKind` spellings).
        source_kind: String,
        /// What was being attempted, with paths/offsets where useful.
        context: String,
    },
    /// System-level misuse not covered by a structured variant.
    System(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Xml(m) => write!(f, "xml error: {m}"),
            Error::XPath(m) => write!(f, "xpath error: {m}"),
            Error::Policy(m) => write!(f, "policy error: {m}"),
            Error::Relational(m) => write!(f, "relational error: {m}"),
            Error::Shrex(m) => write!(f, "shrex error: {m}"),
            Error::Store(m) => write!(f, "store error: {m}"),
            Error::BackendNotLoaded { backend } => {
                write!(f, "system error: backend `{backend}` has no document loaded")
            }
            Error::UnknownAnnotateMode(input) => write!(
                f,
                "system error: unknown annotate mode `{input}` (valid modes: {})",
                crate::backend::AnnotateMode::VALID_NAMES.join(", ")
            ),
            Error::UnknownName { what, input, valid } => {
                write!(f, "system error: unknown {what} `{input}` (valid {what}s: {valid})")
            }
            Error::FaultInjected { point } => {
                write!(f, "fault injected at `{point}`")
            }
            Error::Quarantined { last_good_epoch, cause } => write!(
                f,
                "engine quarantined (read-only, serving last-good epoch \
                 {last_good_epoch}): {cause}"
            ),
            Error::Storage { source_kind, context } => {
                write!(f, "storage {source_kind} error: {context}")
            }
            Error::System(m) => write!(f, "system error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<xac_xml::Error> for Error {
    fn from(e: xac_xml::Error) -> Self {
        Error::Xml(e.to_string())
    }
}

impl From<xac_xpath::Error> for Error {
    fn from(e: xac_xpath::Error) -> Self {
        Error::XPath(e.to_string())
    }
}

impl From<xac_policy::Error> for Error {
    fn from(e: xac_policy::Error) -> Self {
        Error::Policy(e.to_string())
    }
}

impl From<xac_reldb::Error> for Error {
    fn from(e: xac_reldb::Error) -> Self {
        Error::Relational(e.to_string())
    }
}

impl From<xac_shrex::Error> for Error {
    fn from(e: xac_shrex::Error) -> Self {
        Error::Shrex(e.to_string())
    }
}

impl From<xac_xmlstore::Error> for Error {
    fn from(e: xac_xmlstore::Error) -> Self {
        Error::Store(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
