//! Unified error type for the system layer.

use std::fmt;

/// Errors surfaced by the system and its backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// XML substrate failure.
    Xml(String),
    /// XPath parsing/analysis failure.
    XPath(String),
    /// Policy failure.
    Policy(String),
    /// Relational substrate failure.
    Relational(String),
    /// Shredding/translation failure.
    Shrex(String),
    /// Native store failure.
    Store(String),
    /// System-level misuse (backend not loaded, …).
    System(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, msg) = match self {
            Error::Xml(m) => ("xml", m),
            Error::XPath(m) => ("xpath", m),
            Error::Policy(m) => ("policy", m),
            Error::Relational(m) => ("relational", m),
            Error::Shrex(m) => ("shrex", m),
            Error::Store(m) => ("store", m),
            Error::System(m) => ("system", m),
        };
        write!(f, "{kind} error: {msg}")
    }
}

impl std::error::Error for Error {}

impl From<xac_xml::Error> for Error {
    fn from(e: xac_xml::Error) -> Self {
        Error::Xml(e.to_string())
    }
}

impl From<xac_xpath::Error> for Error {
    fn from(e: xac_xpath::Error) -> Self {
        Error::XPath(e.to_string())
    }
}

impl From<xac_policy::Error> for Error {
    fn from(e: xac_policy::Error) -> Self {
        Error::Policy(e.to_string())
    }
}

impl From<xac_reldb::Error> for Error {
    fn from(e: xac_reldb::Error) -> Self {
        Error::Relational(e.to_string())
    }
}

impl From<xac_shrex::Error> for Error {
    fn from(e: xac_shrex::Error) -> Self {
        Error::Shrex(e.to_string())
    }
}

impl From<xac_xmlstore::Error> for Error {
    fn from(e: xac_xmlstore::Error) -> Self {
        Error::Store(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
