//! Storage backends: the relational stores (row and column layouts) and
//! the native XML store.
//!
//! All backends expose the same lifecycle — load, annotate, query,
//! update, re-annotate — but implement it the way the corresponding
//! system in the paper does:
//!
//! * the **relational** backend executes the shredded SQL `INSERT` script
//!   to load, translates XPath to SQL for every query, and annotates with
//!   the two-phase algorithm of Fig. 6 (evaluate the annotation query to
//!   a set of universal ids, then iterate every table, intersect, and run
//!   one `UPDATE … WHERE id = k` per affected tuple);
//! * the **native XML** backend parses the XML text to load, evaluates
//!   paths directly on the tree (through the element-name index), and
//!   annotates by upserting `sign` attributes — storing signs only for
//!   nodes whose accessibility differs from the default, the paper's
//!   space optimization.

use crate::checkpoint::{Checkpoint, CheckpointData};
use crate::document::PreparedDocument;
use crate::error::{Error, Result};
use crate::snapshot::AccessSnapshot;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use xac_policy::{AnnotationQuery, Effect};
use xac_reldb::{Database, StorageKind};
use xac_shrex::{translate, Mapping, ShreddedDocument};
use xac_xml::Document;
use xac_xmlstore::{NodeSetExpr, StoredDocument};
use xac_xpath::Path;

/// The sign character for an effect.
fn sign_char(effect: Effect) -> char {
    effect.sign()
}

/// A storage backend able to hold one annotated document.
pub trait Backend {
    /// Human-readable backend name (used in benchmark output).
    fn name(&self) -> &'static str;

    /// Load a prepared document, replacing any previous content.
    fn load(&mut self, prepared: &PreparedDocument) -> Result<()>;

    /// True once a document is loaded.
    fn is_loaded(&self) -> bool;

    /// Apply an annotation query; returns the number of sign writes.
    fn annotate(&mut self, query: &AnnotationQuery) -> Result<usize>;

    /// Reset every node to the default sign; returns nodes touched.
    fn reset_annotations(&mut self) -> Result<usize>;

    /// Evaluate a user query: how many nodes it selects and whether every
    /// one of them is accessible.
    fn query_nodes_allowed(&mut self, path: &Path) -> Result<(usize, bool)>;

    /// Number of currently-accessible nodes.
    fn accessible_count(&mut self) -> Result<usize>;

    /// Delete the subtrees designated by an update path; returns the
    /// number of elements removed.
    fn delete(&mut self, path: &Path) -> Result<usize>;

    /// Insert one new element named `name` (optionally carrying `text`)
    /// under every node designated by `parent_path`; returns how many
    /// elements were inserted. New nodes start at the default sign — the
    /// re-annotator decides their real accessibility.
    fn insert(&mut self, parent_path: &Path, name: &str, text: Option<&str>) -> Result<usize>;

    /// Partial re-annotation: reset the given scopes to the default sign,
    /// then apply the (triggered-rules) annotation query. Returns total
    /// sign writes.
    fn reannotate(&mut self, scope: &[Path], query: &AnnotationQuery) -> Result<usize>;

    /// The backend's annotation epoch: a monotone counter bumped by every
    /// state mutation (load, sign writes, resets, document updates).
    /// Read-only operations never change it. Two observations with equal
    /// epochs are guaranteed to have seen identical sign state.
    fn epoch(&self) -> u64;

    /// Publish an immutable [`AccessSnapshot`] of the current epoch:
    /// the document (behind an element-name index) plus the accessible
    /// node set. The snapshot answers requests with no further backend
    /// involvement — the serving engine's read path.
    fn snapshot(&mut self) -> Result<AccessSnapshot>;

    /// The materialized sign state exactly as stored: storage id →
    /// sign character. Relational backends report every live tuple;
    /// the native store reports only the explicitly-annotated nodes
    /// (its default-sign elision). Equivalence tests use this for
    /// byte-identical comparisons across write paths and serving modes.
    fn sign_state(&mut self) -> Result<BTreeMap<i64, char>>;

    /// Overwrite the materialized sign state wholesale with `signs`
    /// (the [`Backend::sign_state`] encoding), leaving document
    /// structure untouched. The WAL recovery path: after replaying
    /// structural operations, the serving durability layer folds the
    /// log's sign records into a map and applies it here in one pass.
    /// The epoch strictly advances past both the current epoch and
    /// `min_epoch` (the last committed epoch from the log), so epoch
    /// numbers are never reused for possibly-different state across a
    /// crash — same invariant as [`Backend::restore`].
    fn apply_sign_state(&mut self, signs: &BTreeMap<i64, char>, min_epoch: u64) -> Result<()>;

    /// Capture a complete state image at the current epoch: document +
    /// sign map for the native store, table image + shredding state for
    /// the relational ones. Deep copy — cost is linear in document size
    /// (the `fault-recovery` benchmark measures it per backend).
    fn checkpoint(&mut self) -> Result<Checkpoint>;

    /// Replace the current state wholesale with a checkpointed image
    /// from the *same* backend (errors otherwise, leaving state
    /// untouched). After restore, `sign_state()` is byte-identical to
    /// the checkpointed state. The epoch strictly advances past both
    /// the current and the checkpointed epoch — an epoch number is
    /// never reused for possibly-different state, preserving the
    /// equal-epochs-imply-equal-state invariant of [`Backend::epoch`].
    fn restore(&mut self, checkpoint: &Checkpoint) -> Result<()>;
}

/// Boxed backends are backends: lets decorators such as
/// [`crate::FaultingBackend`] wrap an already type-erased
/// `Box<dyn Backend + Send>` without knowing the concrete type.
impl<B: Backend + ?Sized> Backend for Box<B> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn load(&mut self, prepared: &PreparedDocument) -> Result<()> {
        (**self).load(prepared)
    }
    fn is_loaded(&self) -> bool {
        (**self).is_loaded()
    }
    fn annotate(&mut self, query: &AnnotationQuery) -> Result<usize> {
        (**self).annotate(query)
    }
    fn reset_annotations(&mut self) -> Result<usize> {
        (**self).reset_annotations()
    }
    fn query_nodes_allowed(&mut self, path: &Path) -> Result<(usize, bool)> {
        (**self).query_nodes_allowed(path)
    }
    fn accessible_count(&mut self) -> Result<usize> {
        (**self).accessible_count()
    }
    fn delete(&mut self, path: &Path) -> Result<usize> {
        (**self).delete(path)
    }
    fn insert(&mut self, parent_path: &Path, name: &str, text: Option<&str>) -> Result<usize> {
        (**self).insert(parent_path, name, text)
    }
    fn reannotate(&mut self, scope: &[Path], query: &AnnotationQuery) -> Result<usize> {
        (**self).reannotate(scope, query)
    }
    fn epoch(&self) -> u64 {
        (**self).epoch()
    }
    fn snapshot(&mut self) -> Result<AccessSnapshot> {
        (**self).snapshot()
    }
    fn sign_state(&mut self) -> Result<BTreeMap<i64, char>> {
        (**self).sign_state()
    }
    fn apply_sign_state(&mut self, signs: &BTreeMap<i64, char>, min_epoch: u64) -> Result<()> {
        (**self).apply_sign_state(signs, min_epoch)
    }
    fn checkpoint(&mut self) -> Result<Checkpoint> {
        (**self).checkpoint()
    }
    fn restore(&mut self, checkpoint: &Checkpoint) -> Result<()> {
        (**self).restore(checkpoint)
    }
}

// ---------------------------------------------------------------------
// Relational backend
// ---------------------------------------------------------------------

/// How a relational backend writes signs during (re-)annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnnotateMode {
    /// The Fig. 6 inner loop exactly as published: one
    /// `UPDATE {table} SET s = … WHERE id = k` SQL statement per affected
    /// tuple, each one parsed, planned and executed individually. This is
    /// what the paper measures, and the default.
    #[default]
    PaperFaithful,
    /// Engine-level batched writes ([`Database::update_signs`]): the whole
    /// target-id set goes to each table's primary-key index in one call.
    /// Byte-identical final table state, none of the per-statement
    /// overhead — an extension over the paper, reported separately by the
    /// `figures annotate-modes` benchmark.
    Batched,
    /// Bytecode execution (`xac-vmc`): the annotation query compiles once
    /// into a register program per (policy, schema) fingerprint and runs
    /// as fused scan+filter+sign-write ops over a columnar document
    /// index, skipping SQL translation/parsing/planning on the relational
    /// backends and the tree-walk evaluator on the native one. Writes go
    /// through the same batched engine path, so the final sign state is
    /// byte-identical to [`AnnotateMode::Batched`]. Queries the compiler
    /// cannot express fall back to the interpreted path per call.
    Compiled,
}

impl AnnotateMode {
    /// The accepted command-line spellings, in [`AnnotateMode::parse`]
    /// order.
    pub const VALID_NAMES: [&'static str; 3] = ["paper", "batched", "compiled"];

    /// Parse a command-line spelling. Unknown input yields the
    /// structured [`Error::UnknownAnnotateMode`] so callers can report
    /// the valid modes instead of string-matching the message.
    pub fn parse(input: &str) -> Result<AnnotateMode> {
        match input {
            "paper" => Ok(AnnotateMode::PaperFaithful),
            "batched" => Ok(AnnotateMode::Batched),
            "compiled" => Ok(AnnotateMode::Compiled),
            other => Err(Error::UnknownAnnotateMode(other.to_string())),
        }
    }

    /// The canonical command-line spelling.
    pub fn name(&self) -> &'static str {
        match self {
            AnnotateMode::PaperFaithful => "paper",
            AnnotateMode::Batched => "batched",
            AnnotateMode::Compiled => "compiled",
        }
    }
}

impl std::fmt::Display for AnnotateMode {
    /// Renders the canonical spelling, so `Display` round-trips through
    /// [`AnnotateMode::parse`]/`FromStr`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for AnnotateMode {
    type Err = Error;

    fn from_str(s: &str) -> Result<AnnotateMode> {
        AnnotateMode::parse(s)
    }
}

#[derive(Clone)]
pub(crate) struct RelationalState {
    mapping: Mapping,
    doc: Document,
    shredded: ShreddedDocument,
    default_sign: char,
    /// Universal id → position in `mapping.tables()`, built at load and
    /// extended on insert. Lets the batched write path hand each table
    /// only its own ids instead of probing every table's primary-key
    /// index with the full target set. Entries for deleted rows linger
    /// harmlessly (their point writes miss the index, as before).
    table_of: HashMap<i64, usize>,
}

/// XML access control over a relational database (row layout = the
/// PostgreSQL stand-in, column layout = the MonetDB/SQL stand-in).
pub struct RelationalBackend {
    kind: StorageKind,
    db: Database,
    state: Option<RelationalState>,
    mode: AnnotateMode,
    /// Accessible-id set cached per annotation epoch; any sign write or
    /// document mutation invalidates it.
    accessible_cache: Option<BTreeSet<i64>>,
    /// Columnar document index for the compiled mode, cached per
    /// *structural* epoch: sign writes leave it valid, document
    /// mutations (load/insert/delete/restore) drop it.
    doc_index: Option<std::sync::Arc<xac_vmc::DocIndex>>,
    /// Monotone annotation epoch; see [`Backend::epoch`].
    epoch: u64,
}

impl RelationalBackend {
    /// A backend over the given layout, in the default
    /// [`AnnotateMode::PaperFaithful`] mode.
    pub fn new(kind: StorageKind) -> RelationalBackend {
        RelationalBackend {
            kind,
            db: Database::new(kind),
            state: None,
            mode: AnnotateMode::default(),
            accessible_cache: None,
            doc_index: None,
            epoch: 0,
        }
    }

    /// Record a state mutation: bump the epoch and drop the cached
    /// accessible set, which the mutation may have invalidated.
    fn mutated(&mut self) {
        self.epoch += 1;
        self.accessible_cache = None;
    }

    /// Record a *structural* mutation: everything [`Self::mutated`]
    /// drops, plus the columnar document index.
    fn structure_changed(&mut self) {
        self.mutated();
        self.doc_index = None;
    }

    /// The columnar index over the loaded document, built lazily and
    /// reused until the structure changes.
    fn doc_index(&mut self) -> Result<std::sync::Arc<xac_vmc::DocIndex>> {
        if self.doc_index.is_none() {
            let state = self.state()?;
            self.doc_index = Some(std::sync::Arc::new(xac_vmc::DocIndex::build(&state.doc)));
        }
        Ok(std::sync::Arc::clone(self.doc_index.as_ref().expect("just populated")))
    }

    fn static_name(kind: StorageKind) -> &'static str {
        match kind {
            StorageKind::Row => "relational/row",
            StorageKind::Column => "relational/column",
        }
    }

    /// A backend over the given layout and annotation write mode.
    pub fn with_mode(kind: StorageKind, mode: AnnotateMode) -> RelationalBackend {
        let mut b = RelationalBackend::new(kind);
        b.mode = mode;
        b
    }

    /// The current annotation write mode.
    pub fn annotate_mode(&self) -> AnnotateMode {
        self.mode
    }

    /// Switch the annotation write mode (affects future writes only).
    pub fn set_annotate_mode(&mut self, mode: AnnotateMode) {
        self.mode = mode;
    }

    /// Row-store backend (PostgreSQL stand-in).
    pub fn row() -> RelationalBackend {
        RelationalBackend::new(StorageKind::Row)
    }

    /// Column-store backend (MonetDB/SQL stand-in).
    pub fn column() -> RelationalBackend {
        RelationalBackend::new(StorageKind::Column)
    }

    /// The underlying storage kind.
    pub fn kind(&self) -> StorageKind {
        self.kind
    }

    fn state(&self) -> Result<&RelationalState> {
        self.state
            .as_ref()
            .ok_or(Error::BackendNotLoaded { backend: Self::static_name(self.kind) })
    }

    /// Render an annotation query as one SQL statement — the paper's
    /// `(Q1 UNION Q2 UNION Q6) EXCEPT (Q3 UNION Q5)`.
    pub fn render_annotation_sql(&self, query: &AnnotationQuery) -> Result<String> {
        let state = self.state()?;
        let schema = state.mapping.schema();
        let side = |paths: &[Path]| -> Result<String> {
            let mut parts = Vec::with_capacity(paths.len());
            for p in paths {
                parts.push(format!("({})", translate(p, schema)?));
            }
            Ok(parts.join(" UNION "))
        };
        if query.include.is_empty() {
            return Ok(format!("SELECT id FROM {} WHERE 1 = 0", schema.root()));
        }
        let include = side(&query.include)?;
        if query.except.is_empty() {
            Ok(include)
        } else {
            Ok(format!("({include}) EXCEPT ({})", side(&query.except)?))
        }
    }

    /// Universal ids selected by a path, via XPath→SQL translation.
    fn path_ids(&mut self, path: &Path) -> Result<BTreeSet<i64>> {
        let sql = translate(path, self.state()?.mapping.schema())?;
        Ok(self.db.query(&sql)?.column_as_int_set(0))
    }

    /// Per-table two-phase sign write, dispatching on the annotation
    /// mode. Both modes leave identical table state; they differ only in
    /// how the writes reach the engine. Public so benches and equivalence
    /// tests can measure the write path in isolation from annotation-query
    /// evaluation (which is mode-independent and dominates `annotate`).
    pub fn write_signs(&mut self, targets: &BTreeSet<i64>, sign: char) -> Result<usize> {
        let _span = xac_obs::span("backend.write_signs");
        self.mutated();
        let tables: Vec<String> =
            self.state()?.mapping.tables().iter().map(|t| t.name.clone()).collect();
        let mut updated = 0usize;
        match self.mode {
            // Fig. 6's inner loop as published: fetch each table's ids,
            // intersect with the target set, one UPDATE statement per
            // affected tuple.
            AnnotateMode::PaperFaithful => {
                for table in tables {
                    let ids = self.db.query(&format!("SELECT id FROM {table}"))?;
                    let upids: Vec<i64> = ids
                        .column_as_ints(0)
                        .into_iter()
                        .filter(|id| targets.contains(id))
                        .collect();
                    for id in upids {
                        self.db.execute(&format!(
                            "UPDATE {table} SET s = '{sign}' WHERE id = {id}"
                        ))?;
                        updated += 1;
                    }
                }
            }
            // Batched and compiled: partition the target set by owning
            // table (via the id→table map maintained since load), then
            // one engine call per table with exactly its own ids. Ids
            // the map does not know (none today; defensive) go to every
            // table and simply miss the foreign primary-key indexes.
            // The compiled mode shares this write engine — it differs
            // upstream, in how the target set is computed.
            AnnotateMode::Batched | AnnotateMode::Compiled => {
                let mut buckets: Vec<Vec<i64>> = vec![Vec::new(); tables.len()];
                let mut unknown: Vec<i64> = Vec::new();
                {
                    let state = self.state()?;
                    for &id in targets {
                        match state.table_of.get(&id) {
                            Some(&i) => buckets[i].push(id),
                            None => unknown.push(id),
                        }
                    }
                }
                for (table, mut ids) in tables.into_iter().zip(buckets) {
                    ids.extend_from_slice(&unknown);
                    if !ids.is_empty() {
                        updated += self.db.update_signs(&table, &ids, sign)?;
                    }
                }
            }
        }
        Ok(updated)
    }

    /// The set of accessible universal ids (sign `'+'`), cached per
    /// annotation epoch: repeated requests between sign writes reuse the
    /// same set instead of re-running one `SELECT` per table.
    pub fn accessible_ids(&mut self) -> Result<BTreeSet<i64>> {
        Ok(self.accessible_ids_cached()?.clone())
    }

    fn accessible_ids_cached(&mut self) -> Result<&BTreeSet<i64>> {
        if self.accessible_cache.is_none() {
            let tables: Vec<String> =
                self.state()?.mapping.tables().iter().map(|t| t.name.clone()).collect();
            let mut out = BTreeSet::new();
            for table in tables {
                let rs = self.db.query(&format!("SELECT id FROM {table} WHERE s = '+'"))?;
                out.extend(rs.column_as_ints(0));
            }
            self.accessible_cache = Some(out);
        }
        Ok(self.accessible_cache.as_ref().expect("just populated"))
    }

    /// The complete sign state: every live universal id mapped to its
    /// current sign character. Used by the equivalence tests to assert
    /// that two write modes leave byte-identical annotations (including
    /// the `'-'` rows that `accessible_ids` elides).
    pub fn sign_map(&mut self) -> Result<std::collections::BTreeMap<i64, char>> {
        let tables: Vec<String> =
            self.state()?.mapping.tables().iter().map(|t| t.name.clone()).collect();
        let mut out = std::collections::BTreeMap::new();
        for table in tables {
            let rs = self.db.query(&format!("SELECT id, s FROM {table}"))?;
            for row in &rs.rows {
                if let (Some(id), xac_reldb::Value::Text(s)) = (row[0].as_int(), &row[1]) {
                    out.insert(id, s.chars().next().unwrap_or(' '));
                }
            }
        }
        Ok(out)
    }

    /// The node↔universal-id mapping of the loaded document.
    pub fn shredded(&self) -> Result<&ShreddedDocument> {
        Ok(&self.state()?.shredded)
    }

    /// Compiled annotation: fetch (or compile) the query's bytecode
    /// program, execute it over the columnar document index, and stream
    /// the selected set into the batched column/row-store sign write.
    /// Returns `None` when the query is outside the compilable fragment,
    /// in which case the caller falls back to the SQL interpreter.
    fn annotate_compiled(&mut self, query: &AnnotationQuery) -> Result<Option<usize>> {
        let program = {
            let state = self.state()?;
            match xac_vmc::cached_query_program(query, Some(state.mapping.schema())) {
                Ok(p) => p,
                Err(_) => return Ok(None),
            }
        };
        let index = self.doc_index()?;
        self.mutated();
        let state = self.state.as_mut().expect("state checked by doc_index");
        let mut sink = RelationalSignSink {
            db: &mut self.db,
            shredded: &state.shredded,
            table_of: &state.table_of,
            tables: state.mapping.tables(),
        };
        let written = xac_vmc::execute(&program, &index, &mut sink)
            .map_err(Error::System)?;
        Ok(Some(written))
    }
}

/// The VM's fused sign sink over the relational engine: buckets the
/// selected nodes' universal ids by owning table and issues one batched
/// [`Database::update_signs`] per table — the same write the batched
/// mode performs, fed from the VM instead of a SQL result set.
struct RelationalSignSink<'a> {
    db: &'a mut Database,
    shredded: &'a ShreddedDocument,
    table_of: &'a HashMap<i64, usize>,
    tables: &'a [xac_shrex::mapping::MappedTable],
}

impl xac_vmc::SignSink for RelationalSignSink<'_> {
    fn write(&mut self, nodes: &[xac_xml::NodeId], sign: char) -> std::result::Result<usize, String> {
        let _span = xac_obs::span("backend.write_signs");
        let mut buckets: Vec<Vec<i64>> = vec![Vec::new(); self.tables.len()];
        for &n in nodes {
            if let Some(id) = self.shredded.id_of(n) {
                if let Some(&i) = self.table_of.get(&id) {
                    buckets[i].push(id);
                }
            }
        }
        let mut updated = 0usize;
        for (table, ids) in self.tables.iter().zip(buckets) {
            if !ids.is_empty() {
                updated += self
                    .db
                    .update_signs(&table.name, &ids, sign)
                    .map_err(|e| e.to_string())?;
            }
        }
        Ok(updated)
    }
}

impl Backend for RelationalBackend {
    fn name(&self) -> &'static str {
        match self.kind {
            StorageKind::Row => "relational/row",
            StorageKind::Column => "relational/column",
        }
    }

    fn load(&mut self, prepared: &PreparedDocument) -> Result<()> {
        let _span = xac_obs::span("backend.load");
        let mut db = Database::new(self.kind);
        db.execute_script(&prepared.ddl)?;
        db.execute_script(&prepared.sql_text)?;
        self.db = db;
        self.structure_changed();
        let table_index: HashMap<&str, usize> = prepared
            .mapping
            .tables()
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.as_str(), i))
            .collect();
        let table_of = prepared
            .shredded
            .rows
            .iter()
            .filter_map(|r| table_index.get(r.table.as_str()).map(|&i| (r.id, i)))
            .collect();
        self.state = Some(RelationalState {
            mapping: prepared.mapping.clone(),
            doc: prepared.doc.clone(),
            shredded: prepared.shredded.clone(),
            default_sign: prepared.default_sign,
            table_of,
        });
        Ok(())
    }

    fn is_loaded(&self) -> bool {
        self.state.is_some()
    }

    fn annotate(&mut self, query: &AnnotationQuery) -> Result<usize> {
        let _span = xac_obs::span("backend.annotate");
        if self.mode == AnnotateMode::Compiled {
            if let Some(written) = self.annotate_compiled(query)? {
                return Ok(written);
            }
            // Outside the compilable fragment: interpreted fallback.
        }
        let sql = self.render_annotation_sql(query)?;
        let targets = self.db.query(&sql)?.column_as_int_set(0);
        self.write_signs(&targets, sign_char(query.mark))
    }

    fn reset_annotations(&mut self) -> Result<usize> {
        self.mutated();
        let state = self.state()?;
        let default = state.default_sign;
        let tables: Vec<String> =
            state.mapping.tables().iter().map(|t| t.name.clone()).collect();
        let mut touched = 0usize;
        if self.mode == AnnotateMode::Compiled {
            // Vectorized reset: one sweep per table's sign column, no
            // SQL. Same final state as the UPDATE below.
            for table in tables {
                touched += self.db.reset_signs(&table, default)?;
            }
            return Ok(touched);
        }
        for table in tables {
            if let Some(n) = self
                .db
                .execute(&format!("UPDATE {table} SET s = '{default}'"))?
                .count()
            {
                touched += n;
            }
        }
        Ok(touched)
    }

    fn query_nodes_allowed(&mut self, path: &Path) -> Result<(usize, bool)> {
        let requested = self.path_ids(path)?;
        if requested.is_empty() {
            return Ok((0, true));
        }
        let accessible = self.accessible_ids_cached()?;
        let allowed = requested.iter().all(|id| accessible.contains(id));
        Ok((requested.len(), allowed))
    }

    fn accessible_count(&mut self) -> Result<usize> {
        // One `SELECT COUNT(*)` per table — ids never leave the engine.
        let tables: Vec<String> =
            self.state()?.mapping.tables().iter().map(|t| t.name.clone()).collect();
        let mut total = 0usize;
        for table in tables {
            let rs = self
                .db
                .query(&format!("SELECT COUNT(*) FROM {table} WHERE s = '+'"))?;
            total += rs.column_as_ints(0).first().copied().unwrap_or(0) as usize;
        }
        Ok(total)
    }

    fn delete(&mut self, path: &Path) -> Result<usize> {
        self.structure_changed();
        // Structure lives in the mapping layer's copy of the tree; rows are
        // removed tuple by tuple through SQL point deletes on the id index.
        let targets = {
            let state = self.state()?;
            xac_xpath::eval(&state.doc, path)
        };
        let mut removed = 0usize;
        for target in targets {
            let rows: Vec<(String, i64)> = {
                let state = self.state()?;
                if !state.doc.is_alive(target) {
                    continue;
                }
                state
                    .doc
                    .subtree(target)
                    .filter_map(|n| {
                        let name = state.doc.name(n)?;
                        Some((name.to_string(), state.shredded.id_of(n)?))
                    })
                    .collect()
            };
            for (table, id) in rows {
                self.db.execute(&format!("DELETE FROM {table} WHERE id = {id}"))?;
                removed += 1;
            }
            let state =
                self.state.as_mut().expect("state checked above");
            state.doc.remove_subtree(target).map_err(Error::from)?;
        }
        Ok(removed)
    }

    fn insert(&mut self, parent_path: &Path, name: &str, text: Option<&str>) -> Result<usize> {
        self.structure_changed();
        let parents = {
            let state = self.state()?;
            if !state.mapping.schema().contains(name) {
                return Err(Error::Shrex(format!(
                    "element `{name}` is not part of the mapped schema"
                )));
            }
            xac_xpath::eval(&state.doc, parent_path)
        };
        let has_value = self
            .state()?
            .mapping
            .table(name)
            .map(|t| t.has_value)
            .unwrap_or(false);
        let default = self.state()?.default_sign;
        let table_idx = self
            .state()?
            .mapping
            .tables()
            .iter()
            .position(|t| t.name == name);
        let mut inserted = 0usize;
        for parent in parents {
            let (id, pid) = {
                let state = self.state.as_mut().expect("state checked above");
                let node = state.doc.add_element(parent, name);
                if let Some(t) = text {
                    state.doc.add_text(node, t);
                }
                let id = state.shredded.register_insert(node);
                if let Some(i) = table_idx {
                    state.table_of.insert(id, i);
                }
                let pid = state.shredded.id_of(parent).ok_or_else(|| {
                    Error::System("insert parent has no universal id".into())
                })?;
                (id, pid)
            };
            let sql = if has_value {
                format!(
                    "INSERT INTO {name} (id, pid, v, s) VALUES ({id}, {pid}, '{}', '{default}')",
                    text.unwrap_or("").replace('\'', "''")
                )
            } else {
                format!("INSERT INTO {name} (id, pid, s) VALUES ({id}, {pid}, '{default}')")
            };
            self.db.execute(&sql)?;
            inserted += 1;
        }
        Ok(inserted)
    }

    fn reannotate(&mut self, scope: &[Path], query: &AnnotationQuery) -> Result<usize> {
        // Phase 1: reset the triggered scopes to the default sign. In
        // compiled mode the scope paths run on the VM too (falling back
        // to XPath→SQL per path outside the fragment).
        let default = self.state()?.default_sign;
        let mut scope_ids: BTreeSet<i64> = BTreeSet::new();
        for p in scope {
            let compiled = if self.mode == AnnotateMode::Compiled {
                xac_vmc::cached_path_program(p).ok()
            } else {
                None
            };
            match compiled {
                Some(program) => {
                    let index = self.doc_index()?;
                    let nodes = xac_vmc::execute_select(&program, &index);
                    let shredded = &self.state()?.shredded;
                    scope_ids.extend(nodes.iter().filter_map(|&n| shredded.id_of(n)));
                }
                None => scope_ids.extend(self.path_ids(p)?),
            }
        }
        let reset = self.write_signs(&scope_ids, default)?;
        // Phase 2: apply the triggered-rules annotation query.
        let annotated = self.annotate(query)?;
        Ok(reset + annotated)
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn snapshot(&mut self) -> Result<AccessSnapshot> {
        let epoch = self.epoch;
        let ids = self.accessible_ids_cached()?.clone();
        let state = self.state()?;
        // Node ids survive the document clone unchanged (the arena is
        // copied slot for slot), so membership can be decided here and
        // used against the snapshot's own tree.
        let accessible: BTreeSet<xac_xml::NodeId> = state
            .doc
            .all_elements()
            .filter(|&n| state.shredded.id_of(n).is_some_and(|id| ids.contains(&id)))
            .collect();
        Ok(AccessSnapshot::new(
            epoch,
            Self::static_name(self.kind),
            StoredDocument::new(state.doc.clone()),
            accessible,
        ))
    }

    fn sign_state(&mut self) -> Result<BTreeMap<i64, char>> {
        self.sign_map()
    }

    fn apply_sign_state(&mut self, signs: &BTreeMap<i64, char>, min_epoch: u64) -> Result<()> {
        // `signs` is a complete `sign_state` image (every live tuple
        // carries a sign in the relational encoding), so two batched
        // partitioned writes cover the whole map.
        let mut plus = BTreeSet::new();
        let mut minus = BTreeSet::new();
        for (&id, &sign) in signs {
            if sign == '+' {
                plus.insert(id);
            } else {
                minus.insert(id);
            }
        }
        self.write_signs(&minus, '-')?;
        self.write_signs(&plus, '+')?;
        self.epoch = self.epoch.max(min_epoch) + 1;
        self.accessible_cache = None;
        Ok(())
    }

    fn checkpoint(&mut self) -> Result<Checkpoint> {
        Ok(Checkpoint {
            epoch: self.epoch,
            backend: Self::static_name(self.kind),
            data: CheckpointData::Relational {
                db: self.db.clone(),
                state: self.state.clone(),
            },
        })
    }

    fn restore(&mut self, checkpoint: &Checkpoint) -> Result<()> {
        let CheckpointData::Relational { db, state } = &checkpoint.data else {
            return Err(Error::System(format!(
                "checkpoint from `{}` cannot restore backend `{}`",
                checkpoint.backend,
                self.name()
            )));
        };
        if checkpoint.backend != self.name() {
            return Err(Error::System(format!(
                "checkpoint from `{}` cannot restore backend `{}`",
                checkpoint.backend,
                self.name()
            )));
        }
        self.db = db.clone();
        self.state = state.clone();
        // Strictly advance the epoch: the restored state may differ from
        // whatever the current epoch number was stamped on.
        self.epoch = self.epoch.max(checkpoint.epoch) + 1;
        self.accessible_cache = None;
        self.doc_index = None;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Native XML backend
// ---------------------------------------------------------------------

/// XML access control over the native XML store (the MonetDB/XQuery
/// stand-in).
pub struct NativeXmlBackend {
    sdoc: Option<StoredDocument>,
    default_sign: char,
    mode: AnnotateMode,
    /// Columnar document index for the compiled mode, cached across sign
    /// writes and dropped on structural mutations — same discipline as
    /// [`RelationalBackend::structure_changed`].
    index: Option<std::sync::Arc<xac_vmc::DocIndex>>,
    /// Monotone annotation epoch; see [`Backend::epoch`].
    epoch: u64,
}

impl NativeXmlBackend {
    /// An empty native backend.
    pub fn new() -> NativeXmlBackend {
        NativeXmlBackend {
            sdoc: None,
            default_sign: '-',
            mode: AnnotateMode::default(),
            index: None,
            epoch: 0,
        }
    }

    /// An empty native backend in the given annotation mode. The native
    /// store has no SQL layer, so `PaperFaithful` and `Batched` behave
    /// identically here; `Compiled` routes annotation through the
    /// bytecode VM.
    pub fn with_mode(mode: AnnotateMode) -> NativeXmlBackend {
        let mut b = NativeXmlBackend::new();
        b.mode = mode;
        b
    }

    /// The current annotation mode.
    pub fn annotate_mode(&self) -> AnnotateMode {
        self.mode
    }

    /// The columnar index over the stored document, built lazily and
    /// reused until the structure changes.
    fn native_index(&mut self) -> Result<std::sync::Arc<xac_vmc::DocIndex>> {
        if self.index.is_none() {
            let sdoc = self.sdoc()?;
            self.index = Some(std::sync::Arc::new(xac_vmc::DocIndex::build(sdoc.doc())));
        }
        Ok(std::sync::Arc::clone(self.index.as_ref().expect("just populated")))
    }

    fn sdoc(&self) -> Result<&StoredDocument> {
        self.sdoc
            .as_ref()
            .ok_or(Error::BackendNotLoaded { backend: "native/xml" })
    }

    /// Mutable access to the store; every caller is a state mutation,
    /// so the epoch advances here.
    fn sdoc_mut(&mut self) -> Result<&mut StoredDocument> {
        self.epoch += 1;
        self.sdoc
            .as_mut()
            .ok_or(Error::BackendNotLoaded { backend: "native/xml" })
    }

    /// The stored document (for inspection in tests and examples).
    pub fn stored(&self) -> Option<&StoredDocument> {
        self.sdoc.as_ref()
    }

    fn is_accessible(&self, sdoc: &StoredDocument, node: xac_xml::NodeId) -> bool {
        match sdoc.sign_of(node) {
            Some('+') => true,
            Some(_) => false,
            None => self.default_sign == '+',
        }
    }

    fn expr_of(query: &AnnotationQuery) -> Option<NodeSetExpr> {
        let include = NodeSetExpr::union_of(query.include.clone())?;
        match NodeSetExpr::union_of(query.except.clone()) {
            Some(except) => Some(include.except(except)),
            None => Some(include),
        }
    }
}

/// The VM's fused sign sink over the native store: the selected nodes
/// go straight into the element arena's sign attributes via
/// [`StoredDocument::annotate_nodes`].
struct NativeSignSink<'a> {
    sdoc: &'a mut StoredDocument,
}

impl xac_vmc::SignSink for NativeSignSink<'_> {
    fn write(&mut self, nodes: &[xac_xml::NodeId], sign: char) -> std::result::Result<usize, String> {
        Ok(self.sdoc.annotate_nodes(nodes, sign))
    }
}

impl Default for NativeXmlBackend {
    fn default() -> Self {
        NativeXmlBackend::new()
    }
}

impl Backend for NativeXmlBackend {
    fn name(&self) -> &'static str {
        "native/xml"
    }

    fn load(&mut self, prepared: &PreparedDocument) -> Result<()> {
        let _span = xac_obs::span("backend.load");
        // A native store loads from the serialized document — parsing is
        // the measured work, exactly like shipping the XML file to the
        // XQuery database.
        let doc = Document::parse_str(&prepared.xml_text)?;
        self.sdoc = Some(StoredDocument::new(doc));
        self.default_sign = prepared.default_sign;
        self.index = None;
        self.epoch += 1;
        Ok(())
    }

    fn is_loaded(&self) -> bool {
        self.sdoc.is_some()
    }

    fn annotate(&mut self, query: &AnnotationQuery) -> Result<usize> {
        let _span = xac_obs::span("backend.annotate");
        let mark = sign_char(query.mark);
        if self.mode == AnnotateMode::Compiled {
            // Mirror the interpreted path: an empty include annotates
            // nothing and leaves the epoch untouched.
            if query.include.is_empty() {
                return Ok(0);
            }
            if let Ok(program) = xac_vmc::cached_query_program(query, None) {
                let index = self.native_index()?;
                let sdoc = self.sdoc_mut()?;
                let mut sink = NativeSignSink { sdoc };
                return xac_vmc::execute(&program, &index, &mut sink).map_err(Error::System);
            }
            // Outside the compilable fragment: interpreted fallback.
        }
        let Some(expr) = Self::expr_of(query) else {
            return Ok(0);
        };
        Ok(self.sdoc_mut()?.annotate_expr(&expr, mark))
    }

    fn reset_annotations(&mut self) -> Result<usize> {
        Ok(self.sdoc_mut()?.clear_all_signs())
    }

    fn query_nodes_allowed(&mut self, path: &Path) -> Result<(usize, bool)> {
        let sdoc = self.sdoc()?;
        let nodes = sdoc.eval(path);
        let allowed = nodes.iter().all(|&n| self.is_accessible(sdoc, n));
        Ok((nodes.len(), allowed))
    }

    fn accessible_count(&mut self) -> Result<usize> {
        let default = self.default_sign;
        let sdoc = self.sdoc()?;
        let (plus, minus) = sdoc.sign_counts();
        if default == '+' {
            Ok(sdoc.doc().element_count() - minus)
        } else {
            Ok(plus)
        }
    }

    fn delete(&mut self, path: &Path) -> Result<usize> {
        let path = path.clone();
        self.index = None;
        let sdoc = self.sdoc_mut()?;
        let before = sdoc.doc().element_count();
        sdoc.delete_matching(&path)?;
        Ok(before - sdoc.doc().element_count())
    }

    fn insert(&mut self, parent_path: &Path, name: &str, text: Option<&str>) -> Result<usize> {
        let parent_path = parent_path.clone();
        self.index = None;
        let sdoc = self.sdoc_mut()?;
        let parents = sdoc.eval(&parent_path);
        for &parent in &parents {
            let node = sdoc.insert_element(parent, name);
            if let Some(t) = text {
                sdoc.insert_text(node, t);
            }
        }
        Ok(parents.len())
    }

    fn reannotate(&mut self, scope: &[Path], query: &AnnotationQuery) -> Result<usize> {
        let mut scope_nodes: BTreeSet<xac_xml::NodeId> = BTreeSet::new();
        for p in scope {
            let compiled = if self.mode == AnnotateMode::Compiled {
                xac_vmc::cached_path_program(p).ok()
            } else {
                None
            };
            match compiled {
                Some(program) => {
                    let index = self.native_index()?;
                    scope_nodes.extend(xac_vmc::execute_select(&program, &index));
                }
                None => scope_nodes.extend(self.sdoc()?.eval(p)),
            }
        }
        let reset = self.sdoc_mut()?.clear_signs(scope_nodes);
        let annotated = self.annotate(query)?;
        Ok(reset + annotated)
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn snapshot(&mut self) -> Result<AccessSnapshot> {
        let epoch = self.epoch;
        let default_accessible = self.default_sign == '+';
        let sdoc = self.sdoc()?;
        let accessible: BTreeSet<xac_xml::NodeId> = sdoc
            .doc()
            .all_elements()
            .filter(|&n| match sdoc.sign_of(n) {
                Some(sign) => sign == '+',
                None => default_accessible,
            })
            .collect();
        Ok(AccessSnapshot::new(
            epoch,
            "native/xml",
            StoredDocument::new(sdoc.doc().clone()),
            accessible,
        ))
    }

    fn sign_state(&mut self) -> Result<BTreeMap<i64, char>> {
        let sdoc = self.sdoc()?;
        Ok(sdoc
            .doc()
            .all_elements()
            .filter_map(|n| sdoc.sign_of(n).map(|s| (n.index() as i64, s)))
            .collect())
    }

    fn apply_sign_state(&mut self, signs: &BTreeMap<i64, char>, min_epoch: u64) -> Result<()> {
        // The native encoding is sparse (only explicitly-annotated
        // nodes appear), so the store clears everything and re-annotates
        // exactly the mapped nodes.
        self.sdoc_mut()?.apply_sign_map(signs);
        self.epoch = self.epoch.max(min_epoch) + 1;
        Ok(())
    }

    fn checkpoint(&mut self) -> Result<Checkpoint> {
        Ok(Checkpoint {
            epoch: self.epoch,
            backend: "native/xml",
            data: CheckpointData::Native {
                sdoc: self.sdoc.clone(),
                default_sign: self.default_sign,
            },
        })
    }

    fn restore(&mut self, checkpoint: &Checkpoint) -> Result<()> {
        let CheckpointData::Native { sdoc, default_sign } = &checkpoint.data else {
            return Err(Error::System(format!(
                "checkpoint from `{}` cannot restore backend `{}`",
                checkpoint.backend,
                self.name()
            )));
        };
        self.sdoc = sdoc.clone();
        self.default_sign = *default_sign;
        self.index = None;
        self.epoch = self.epoch.max(checkpoint.epoch) + 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xac_policy::policy::hospital_policy;

    fn prepared() -> PreparedDocument {
        let schema = crate::hospital_schema_for_docs();
        let doc = Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>033</psn><name>john doe</name>\
             <treatment><regular><med>enoxaparin</med><bill>700</bill></regular></treatment>\
             </patient>\
             <patient><psn>042</psn><name>jane doe</name>\
             <treatment><experimental><test>hypnosis</test><bill>1600</bill></experimental></treatment>\
             </patient>\
             <patient><psn>099</psn><name>joy smith</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap();
        PreparedDocument::prepare(&schema, doc, '-').unwrap()
    }

    fn backends() -> Vec<Box<dyn Backend>> {
        vec![
            Box::new(RelationalBackend::row()),
            Box::new(RelationalBackend::column()),
            Box::new(NativeXmlBackend::new()),
        ]
    }

    #[test]
    fn all_backends_agree_on_hospital_annotation() {
        let p = prepared();
        let query = AnnotationQuery::from_policy(&hospital_policy());
        // Reference: nodes accessible per Table 2 semantics.
        let expected = xac_policy::accessible_nodes(&p.doc, &hospital_policy()).len();
        for mut b in backends() {
            assert!(!b.is_loaded());
            b.load(&p).unwrap();
            assert!(b.is_loaded());
            let writes = b.annotate(&query).unwrap();
            assert!(writes > 0, "{}", b.name());
            assert_eq!(b.accessible_count().unwrap(), expected, "{}", b.name());
        }
    }

    #[test]
    fn unloaded_backends_error() {
        for mut b in backends() {
            assert!(b.annotate(&AnnotationQuery::from_policy(&hospital_policy())).is_err());
            assert!(b.accessible_count().is_err());
            assert!(b.reset_annotations().is_err());
        }
    }

    #[test]
    fn reset_restores_default() {
        let p = prepared();
        let query = AnnotationQuery::from_policy(&hospital_policy());
        for mut b in backends() {
            b.load(&p).unwrap();
            b.annotate(&query).unwrap();
            assert!(b.accessible_count().unwrap() > 0);
            b.reset_annotations().unwrap();
            assert_eq!(b.accessible_count().unwrap(), 0, "{}", b.name());
        }
    }

    #[test]
    fn delete_then_accessible_unchanged_until_reannotation() {
        let p = prepared();
        let query = AnnotationQuery::from_policy(&hospital_policy());
        let u = xac_xpath::parse("//patient/treatment").unwrap();
        for mut b in backends() {
            b.load(&p).unwrap();
            b.annotate(&query).unwrap();
            let removed = b.delete(&u).unwrap();
            assert_eq!(removed, 8, "{}: 2 treatments × 4 elements", b.name());
            // The stale annotations still say only one patient accessible.
            let (n, allowed) = b.query_nodes_allowed(&xac_xpath::parse("//patient").unwrap()).unwrap();
            assert_eq!(n, 3);
            assert!(!allowed, "{}: stale annotations deny", b.name());
        }
    }

    #[test]
    fn annotate_modes_agree_on_hospital() {
        let p = prepared();
        let query = AnnotationQuery::from_policy(&hospital_policy());
        for kind in [StorageKind::Row, StorageKind::Column] {
            let mut faithful = RelationalBackend::new(kind);
            let mut batched = RelationalBackend::with_mode(kind, AnnotateMode::Batched);
            let mut compiled = RelationalBackend::with_mode(kind, AnnotateMode::Compiled);
            assert_eq!(faithful.annotate_mode(), AnnotateMode::PaperFaithful);
            faithful.load(&p).unwrap();
            batched.load(&p).unwrap();
            compiled.load(&p).unwrap();
            let w1 = faithful.annotate(&query).unwrap();
            let w2 = batched.annotate(&query).unwrap();
            let w3 = compiled.annotate(&query).unwrap();
            assert_eq!(w1, w2, "{kind:?}: same number of sign writes");
            assert_eq!(w2, w3, "{kind:?}: compiled writes the same rows");
            assert_eq!(
                faithful.accessible_ids().unwrap(),
                batched.accessible_ids().unwrap(),
                "{kind:?}: identical sign outcome"
            );
            assert_eq!(
                batched.sign_map().unwrap(),
                compiled.sign_map().unwrap(),
                "{kind:?}: compiled sign state byte-identical"
            );
            // Re-annotation after an update agrees too.
            let u = xac_xpath::parse("//patient/treatment").unwrap();
            let scope = vec![xac_xpath::parse("//patient").unwrap()];
            for b in [&mut faithful, &mut batched, &mut compiled] {
                b.delete(&u).unwrap();
                b.reannotate(&scope, &query).unwrap();
            }
            assert_eq!(
                faithful.accessible_ids().unwrap(),
                batched.accessible_ids().unwrap(),
                "{kind:?}: identical after reannotation"
            );
            assert_eq!(
                batched.sign_map().unwrap(),
                compiled.sign_map().unwrap(),
                "{kind:?}: compiled identical after reannotation"
            );
            // Full reset sweeps agree as well.
            let rb = batched.reset_annotations().unwrap();
            let rc = compiled.reset_annotations().unwrap();
            assert_eq!(rb, rc, "{kind:?}: reset touches the same rows");
            assert_eq!(
                batched.sign_map().unwrap(),
                compiled.sign_map().unwrap(),
                "{kind:?}: compiled identical after reset"
            );
        }
    }

    #[test]
    fn native_compiled_mode_matches_interpreter() {
        let p = prepared();
        let query = AnnotationQuery::from_policy(&hospital_policy());
        let mut interp = NativeXmlBackend::new();
        let mut compiled = NativeXmlBackend::with_mode(AnnotateMode::Compiled);
        assert_eq!(compiled.annotate_mode(), AnnotateMode::Compiled);
        interp.load(&p).unwrap();
        compiled.load(&p).unwrap();
        let w1 = interp.annotate(&query).unwrap();
        let w2 = compiled.annotate(&query).unwrap();
        assert_eq!(w1, w2, "same number of sign writes");
        assert_eq!(
            interp.sign_state().unwrap(),
            compiled.sign_state().unwrap(),
            "byte-identical native sign state"
        );
        // Structural update + re-annotation: the compiled index rebuilds.
        let u = xac_xpath::parse("//patient/treatment").unwrap();
        let scope = vec![xac_xpath::parse("//patient").unwrap()];
        for b in [&mut interp, &mut compiled] {
            b.delete(&u).unwrap();
            b.reannotate(&scope, &query).unwrap();
        }
        assert_eq!(
            interp.sign_state().unwrap(),
            compiled.sign_state().unwrap(),
            "identical after delete + reannotation"
        );
    }

    #[test]
    fn native_compiled_empty_include_skips_epoch_bump() {
        let p = prepared();
        let empty = AnnotationQuery {
            include: vec![],
            except: vec![],
            mark: Effect::Allow,
            shape: xac_policy::QueryShape::Grants,
        };
        let mut b = NativeXmlBackend::with_mode(AnnotateMode::Compiled);
        b.load(&p).unwrap();
        let before = b.epoch();
        assert_eq!(b.annotate(&empty).unwrap(), 0);
        assert_eq!(b.epoch(), before, "no-op annotate must not bump the epoch");
    }

    #[test]
    fn unknown_annotate_mode_error_lists_all_modes() {
        let err = AnnotateMode::parse("vectorized").unwrap_err();
        assert_eq!(err, Error::UnknownAnnotateMode("vectorized".to_string()));
        let text = err.to_string();
        for name in AnnotateMode::VALID_NAMES {
            assert!(text.contains(name), "`{name}` missing from: {text}");
        }
    }

    #[test]
    fn annotate_mode_display_round_trips_through_parse() {
        use std::str::FromStr;
        let modes =
            [AnnotateMode::PaperFaithful, AnnotateMode::Batched, AnnotateMode::Compiled];
        // Exhaustive: every canonical spelling parses back to its mode.
        for mode in modes {
            assert_eq!(AnnotateMode::parse(&mode.to_string()).unwrap(), mode);
            assert_eq!(AnnotateMode::from_str(mode.name()).unwrap(), mode);
        }
        // Property: random case/whitespace perturbations of a canonical
        // spelling only parse when they leave it unchanged.
        let mut rng = xac_xmlgen::SplitMix64::seed_from_u64(0x5eed_cafe);
        for _ in 0..256 {
            let mode = modes[(rng.next_u64() % modes.len() as u64) as usize];
            let mut s = mode.name().to_string();
            match rng.next_u64() % 3 {
                0 => s.make_ascii_uppercase(),
                1 => s.push(' '),
                _ => {}
            }
            match AnnotateMode::parse(&s) {
                Ok(parsed) => {
                    assert_eq!(s, mode.name(), "only canonical spellings parse");
                    assert_eq!(parsed, mode);
                    assert_eq!(parsed.to_string(), s, "Display round-trips");
                }
                Err(err) => {
                    assert_ne!(s, mode.name());
                    assert_eq!(err, Error::UnknownAnnotateMode(s.clone()));
                }
            }
        }
    }

    #[test]
    fn accessible_ids_cache_invalidates_on_writes() {
        let p = prepared();
        let query = AnnotationQuery::from_policy(&hospital_policy());
        let mut b = RelationalBackend::row();
        b.load(&p).unwrap();
        assert!(b.accessible_ids().unwrap().is_empty());
        b.annotate(&query).unwrap();
        let annotated = b.accessible_ids().unwrap();
        assert!(!annotated.is_empty(), "annotation must invalidate the cached empty set");
        // Cached between reads.
        assert_eq!(b.accessible_ids().unwrap(), annotated);
        b.reset_annotations().unwrap();
        assert!(b.accessible_ids().unwrap().is_empty(), "reset invalidates");
        b.annotate(&query).unwrap();
        b.delete(&xac_xpath::parse("//patient/treatment").unwrap()).unwrap();
        let after_delete = b.accessible_ids().unwrap();
        assert!(
            after_delete.len() < annotated.len(),
            "deleting annotated rows shrinks the accessible set immediately"
        );
    }

    #[test]
    fn relational_annotation_sql_matches_paper_shape() {
        let p = prepared();
        let mut b = RelationalBackend::row();
        b.load(&p).unwrap();
        let opt = xac_policy::redundancy_elimination(&hospital_policy());
        let q = AnnotationQuery::from_policy(&opt);
        let sql = b.render_annotation_sql(&q).unwrap();
        assert!(sql.contains(") EXCEPT ("), "{sql}");
        assert!(sql.matches("UNION").count() >= 3, "{sql}");
    }
}
