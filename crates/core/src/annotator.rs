//! The annotator module of Figure 3.
//!
//! Compiles a policy into its annotation query (Fig. 5) and drives a
//! backend through a full annotation pass. The backend decides how the
//! query runs — SQL with per-tuple `UPDATE`s relationally, node-set
//! algebra with `xmlac:annotate()` natively.

use crate::backend::Backend;
use crate::error::Result;
use xac_policy::{AnnotationQuery, Policy};

/// Compile the annotation query for a policy.
pub fn annotation_query(policy: &Policy) -> AnnotationQuery {
    let _span = xac_obs::span("annotate.compile");
    AnnotationQuery::from_policy(policy)
}

/// Fully annotate a loaded backend under a policy; returns sign writes.
pub fn annotate(backend: &mut dyn Backend, policy: &Policy) -> Result<usize> {
    let _span = xac_obs::span("annotate.full");
    let query = annotation_query(policy);
    backend.annotate(&query)
}

/// Reset and re-run a full annotation (the paper's baseline against which
/// re-annotation is compared: "delete all annotations and annotate from
/// scratch").
pub fn full_reannotate(backend: &mut dyn Backend, policy: &Policy) -> Result<usize> {
    {
        let _span = xac_obs::span("annotate.reset");
        backend.reset_annotations()?;
    }
    annotate(backend, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::NativeXmlBackend;
    use crate::document::PreparedDocument;
    use xac_policy::policy::hospital_policy;
    use xac_xml::Document;

    #[test]
    fn annotate_then_full_reannotate_is_idempotent() {
        let schema = crate::hospital_schema_for_docs();
        let doc = Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>1</psn><name>a</name></patient>\
             <patient><psn>2</psn><name>b</name><treatment/></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap();
        let p = PreparedDocument::prepare(&schema, doc, '-').unwrap();
        let policy = hospital_policy();
        let mut b = NativeXmlBackend::new();
        b.load(&p).unwrap();
        annotate(&mut b, &policy).unwrap();
        let first = b.accessible_count().unwrap();
        full_reannotate(&mut b, &policy).unwrap();
        assert_eq!(b.accessible_count().unwrap(), first);
    }
}
