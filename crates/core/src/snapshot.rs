//! Epoch-stamped accessibility snapshots.
//!
//! PR 1 cached the relational accessible-id set *inside* the backend,
//! invalidated on every sign write. This module lifts that idea into a
//! first-class, **immutable** artifact a backend can publish: the
//! document tree (behind the native store's element-name index) plus
//! the set of accessible nodes, stamped with the backend's annotation
//! epoch. Because a snapshot never changes after construction, any
//! number of threads can answer requests against it through `&self`
//! with no locking at all — the basis of the `xac-serve` engine, where
//! readers keep serving an old epoch while the writer re-annotates and
//! publishes the next one.

use crate::error::Result;
use crate::requester::Decision;
use std::collections::BTreeSet;
use std::sync::Arc;
use xac_xml::NodeId;
use xac_xmlstore::StoredDocument;
use xac_xpath::Path;

/// One published accessibility state: everything needed to answer
/// read-only requests (`query`, `accessible_count`) without touching
/// the backend that produced it.
///
/// Construction is the backend's job ([`crate::Backend::snapshot`]);
/// the snapshot itself is plain immutable data and therefore
/// `Send + Sync` for free.
#[derive(Debug, Clone)]
pub struct AccessSnapshot {
    epoch: u64,
    backend: &'static str,
    store: Arc<StoredDocument>,
    accessible: Arc<BTreeSet<NodeId>>,
    /// Columnar index for the compiled read path, built on first use.
    /// The snapshot is immutable, so the index stays valid for its whole
    /// lifetime — one build per published epoch.
    index: std::sync::OnceLock<Arc<xac_vmc::DocIndex>>,
}

impl AccessSnapshot {
    /// Assemble a snapshot (backends call this; see
    /// [`crate::Backend::snapshot`]).
    pub fn new(
        epoch: u64,
        backend: &'static str,
        store: StoredDocument,
        accessible: BTreeSet<NodeId>,
    ) -> AccessSnapshot {
        AccessSnapshot {
            epoch,
            backend,
            store: Arc::new(store),
            accessible: Arc::new(accessible),
            index: std::sync::OnceLock::new(),
        }
    }

    /// The backend annotation epoch this snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Name of the backend that produced the snapshot.
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// Answer a user request against this snapshot with the paper's
    /// all-or-nothing semantics (§4), exactly like
    /// [`crate::requester::request`] against a live backend.
    pub fn query(&self, path: &Path) -> Decision {
        let nodes = self.store.eval(path);
        let allowed = nodes.iter().all(|n| self.accessible.contains(n));
        if allowed {
            Decision::Granted { nodes: nodes.len() }
        } else {
            Decision::Denied { nodes: nodes.len() }
        }
    }

    /// Parse and answer a user request.
    pub fn query_str(&self, query: &str) -> Result<Decision> {
        let path = xac_xpath::parse(query)?;
        Ok(self.query(&path))
    }

    /// Answer a user request on the compiled read path: the path runs
    /// as VM bytecode over the snapshot's columnar index instead of the
    /// tree-walking evaluator. Decisions are identical to
    /// [`Self::query`] — the VM selects the same node set in the same
    /// order — and paths outside the compilable fragment silently use
    /// the interpreter. The serving engine routes reads here when the
    /// system is configured with `AnnotateMode::Compiled`.
    pub fn query_compiled(&self, path: &Path) -> Decision {
        let Ok(program) = xac_vmc::cached_path_program(path) else {
            return self.query(path);
        };
        let index = self
            .index
            .get_or_init(|| Arc::new(xac_vmc::DocIndex::build(self.store.doc())));
        let nodes = xac_vmc::execute_select(&program, index);
        let allowed = nodes.iter().all(|n| self.accessible.contains(n));
        if allowed {
            Decision::Granted { nodes: nodes.len() }
        } else {
            Decision::Denied { nodes: nodes.len() }
        }
    }

    /// Number of accessible nodes at this epoch.
    pub fn accessible_count(&self) -> usize {
        self.accessible.len()
    }

    /// Number of element nodes in the snapshot document.
    pub fn element_count(&self) -> usize {
        self.store.doc().element_count()
    }

    /// The accessible node set (node ids are in the snapshot document's
    /// arena space).
    pub fn accessible(&self) -> &BTreeSet<NodeId> {
        &self.accessible
    }

    /// The snapshot document behind its element-name index.
    pub fn store(&self) -> &StoredDocument {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use crate::backend::{Backend, NativeXmlBackend, RelationalBackend};
    use crate::document::PreparedDocument;
    use xac_policy::policy::hospital_policy;
    use xac_policy::AnnotationQuery;
    use xac_xml::Document;

    fn prepared() -> PreparedDocument {
        let schema = crate::hospital_schema_for_docs();
        let doc = Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>1</psn><name>a</name>\
             <treatment><regular><med>m</med><bill>1</bill></regular></treatment></patient>\
             <patient><psn>2</psn><name>b</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap();
        PreparedDocument::prepare(&schema, doc, '-').unwrap()
    }

    #[test]
    fn snapshot_agrees_with_live_backend_on_all_backends() {
        let p = prepared();
        let q = AnnotationQuery::from_policy(&hospital_policy());
        let backends: Vec<Box<dyn Backend>> = vec![
            Box::new(RelationalBackend::row()),
            Box::new(RelationalBackend::column()),
            Box::new(NativeXmlBackend::new()),
        ];
        for mut b in backends {
            b.load(&p).unwrap();
            b.annotate(&q).unwrap();
            let snap = b.snapshot().unwrap();
            assert_eq!(snap.backend(), b.name());
            assert_eq!(snap.epoch(), b.epoch());
            assert_eq!(snap.accessible_count(), b.accessible_count().unwrap(), "{}", b.name());
            for query in ["//patient/name", "//patient", "//regular", "//med", "//none"] {
                let path = xac_xpath::parse(query).unwrap();
                let (nodes, allowed) = b.query_nodes_allowed(&path).unwrap();
                let d = snap.query(&path);
                assert_eq!(d.node_count(), nodes, "{}: {query}", b.name());
                assert_eq!(d.granted(), allowed, "{}: {query}", b.name());
            }
        }
    }

    #[test]
    fn snapshot_is_immutable_under_backend_mutation() {
        let p = prepared();
        let q = AnnotationQuery::from_policy(&hospital_policy());
        let mut b = NativeXmlBackend::new();
        b.load(&p).unwrap();
        b.annotate(&q).unwrap();
        let snap = b.snapshot().unwrap();
        let before = snap.accessible_count();
        b.reset_annotations().unwrap();
        assert_eq!(b.accessible_count().unwrap(), 0);
        assert_eq!(snap.accessible_count(), before, "published snapshot unaffected");
        assert!(b.epoch() > snap.epoch(), "backend moved to a later epoch");
    }

    #[test]
    fn snapshot_errors_when_unloaded() {
        assert!(NativeXmlBackend::new().snapshot().is_err());
        assert!(RelationalBackend::row().snapshot().is_err());
    }

    #[test]
    fn compiled_read_path_matches_interpreted_decisions() {
        let p = prepared();
        let q = AnnotationQuery::from_policy(&hospital_policy());
        let mut b = NativeXmlBackend::new();
        b.load(&p).unwrap();
        b.annotate(&q).unwrap();
        let snap = b.snapshot().unwrap();
        for query in [
            "//patient/name",
            "//patient",
            "//regular",
            "//med",
            "//none",
            "/hospital/dept",
            "//patient[psn = \"2\"]/name",
            "//patient[treatment]",
        ] {
            let path = xac_xpath::parse(query).unwrap();
            let interpreted = snap.query(&path);
            let compiled = snap.query_compiled(&path);
            assert_eq!(compiled.node_count(), interpreted.node_count(), "{query}");
            assert_eq!(compiled.granted(), interpreted.granted(), "{query}");
        }
    }
}
