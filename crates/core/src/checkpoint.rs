//! Backend checkpoints: complete state images for transactional updates.
//!
//! A [`Checkpoint`] is everything a backend needs to return to an earlier
//! state byte for byte: the native store clones its document plus sign
//! map, the relational backends clone the whole database table image
//! (catalog + every table's storage) together with the shredding state.
//! The serving engine captures one after every successful publication and
//! restores it when an update fails past the point the existing
//! full-re-annotation fallback can repair — see `xac-serve`'s
//! degradation ladder and DESIGN.md §4d.
//!
//! Checkpoints are deliberately deep copies rather than logs: the paper's
//! stores are in-memory and the capture cost (measured by the
//! `fault-recovery` benchmark) is linear in document size, which keeps
//! restore trivially correct — no replay, no partial undo.

use crate::backend::RelationalState;
use xac_reldb::Database;
use xac_xmlstore::StoredDocument;

/// A full state image of one backend at one epoch.
///
/// Produced by [`crate::Backend::checkpoint`], consumed by
/// [`crate::Backend::restore`]. Opaque outside the crate: the only
/// public surface is the stamp identifying what it is an image *of*.
#[derive(Clone)]
pub struct Checkpoint {
    pub(crate) epoch: u64,
    pub(crate) backend: &'static str,
    pub(crate) data: CheckpointData,
}

/// The per-backend payload. Either arm restores by wholesale
/// replacement, so a restored backend is byte-identical to the
/// checkpointed one (modulo the epoch, which strictly advances).
#[derive(Clone)]
pub(crate) enum CheckpointData {
    /// Native store: the document behind its element-name index (which
    /// carries the sign map) plus the default sign.
    Native {
        sdoc: Option<StoredDocument>,
        default_sign: char,
    },
    /// Relational store: the full table image plus the shredding state
    /// (mapping, document tree, id bookkeeping).
    Relational {
        db: Database,
        state: Option<RelationalState>,
    },
}

impl Checkpoint {
    /// The backend epoch this image was captured at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Name of the backend that produced the image; restore refuses a
    /// checkpoint from any other backend.
    pub fn backend(&self) -> &'static str {
        self.backend
    }
}

impl std::fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpoint")
            .field("backend", &self.backend)
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}
