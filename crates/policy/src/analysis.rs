//! Policy analysis: per-rule scope statistics and conflict accounting on
//! a concrete document — the audit view a policy administrator needs
//! before deploying (which rules bite, which are dead, where the
//! conflict-resolution strategy actually decides).

use crate::policy::Policy;
use crate::rule::Effect;
use crate::semantics::accessible_nodes;
use std::collections::BTreeSet;
use xac_xml::{Document, NodeId};
use xac_xpath::eval;

/// Statistics for one rule, evaluated against one document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleStats {
    /// Rule id.
    pub id: String,
    /// Rule effect.
    pub effect: Effect,
    /// Nodes in the rule's scope.
    pub scope: usize,
    /// Nodes in this rule's scope and in no other rule's scope — the part
    /// of the policy only this rule decides.
    pub exclusive: usize,
}

/// The policy analysis result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyReport {
    /// Per-rule statistics, in policy order.
    pub rules: Vec<RuleStats>,
    /// Element nodes of the document.
    pub total_nodes: usize,
    /// Nodes in the scope of at least one positive *and* one negative
    /// rule — where the conflict-resolution strategy decides.
    pub conflicted: usize,
    /// Nodes in no rule's scope — where the default semantics decides.
    pub defaulted: usize,
    /// Accessible nodes under the full Table 2 semantics.
    pub accessible: usize,
}

impl PolicyReport {
    /// Ids of rules whose scope is empty on this document (dead weight
    /// for this instance — not necessarily redundant in general).
    pub fn dead_rules(&self) -> Vec<&str> {
        self.rules.iter().filter(|r| r.scope == 0).map(|r| r.id.as_str()).collect()
    }

    /// Fraction of nodes accessible (the paper's coverage metric).
    pub fn coverage(&self) -> f64 {
        if self.total_nodes == 0 {
            return 0.0;
        }
        self.accessible as f64 / self.total_nodes as f64
    }
}

/// Analyze a policy against a document.
pub fn analyze(doc: &Document, policy: &Policy) -> PolicyReport {
    let scopes: Vec<BTreeSet<NodeId>> = policy
        .rules
        .iter()
        .map(|r| eval(doc, &r.resource).into_iter().collect())
        .collect();

    let mut in_positive: BTreeSet<NodeId> = BTreeSet::new();
    let mut in_negative: BTreeSet<NodeId> = BTreeSet::new();
    for (rule, scope) in policy.rules.iter().zip(&scopes) {
        match rule.effect {
            Effect::Allow => in_positive.extend(scope.iter().copied()),
            Effect::Deny => in_negative.extend(scope.iter().copied()),
        }
    }

    let rules = policy
        .rules
        .iter()
        .zip(&scopes)
        .enumerate()
        .map(|(i, (rule, scope))| {
            let exclusive = scope
                .iter()
                .filter(|n| {
                    scopes
                        .iter()
                        .enumerate()
                        .all(|(j, other)| j == i || !other.contains(n))
                })
                .count();
            RuleStats {
                id: rule.id.clone(),
                effect: rule.effect,
                scope: scope.len(),
                exclusive,
            }
        })
        .collect();

    let total_nodes = doc.element_count();
    let covered: BTreeSet<NodeId> =
        in_positive.union(&in_negative).copied().collect();
    PolicyReport {
        rules,
        total_nodes,
        conflicted: in_positive.intersection(&in_negative).count(),
        defaulted: total_nodes - covered.len(),
        accessible: accessible_nodes(doc, policy).len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::hospital_policy;
    use xac_xml::Document;

    fn figure2() -> Document {
        Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>033</psn><name>john doe</name>\
             <treatment><regular><med>enoxaparin</med><bill>700</bill></regular></treatment>\
             </patient>\
             <patient><psn>042</psn><name>jane doe</name>\
             <treatment><experimental><test>hypnosis</test><bill>1600</bill></experimental></treatment>\
             </patient>\
             <patient><psn>099</psn><name>joy smith</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap()
    }

    #[test]
    fn hospital_report_matches_figure2() {
        let doc = figure2();
        let report = analyze(&doc, &hospital_policy());
        let by_id = |id: &str| report.rules.iter().find(|r| r.id == id).unwrap();
        assert_eq!(by_id("R1").scope, 3, "three patients");
        assert_eq!(by_id("R2").scope, 3, "three names");
        assert_eq!(by_id("R3").scope, 2, "two treated patients");
        assert_eq!(by_id("R5").scope, 1, "one experimental patient");
        assert_eq!(by_id("R6").scope, 1, "one regular treatment");
        assert_eq!(by_id("R7").scope, 0, "no celecoxib in figure 2");
        assert_eq!(by_id("R8").scope, 0, "regular bill is 700");
        assert_eq!(report.dead_rules(), vec!["R7", "R8"]);
        // Conflicts: both treated patients sit in R1 (+) and R3/R5 (−).
        assert_eq!(report.conflicted, 2);
        assert_eq!(report.accessible, 5);
        assert_eq!(report.total_nodes, 21);
        assert!((report.coverage() - 5.0 / 21.0).abs() < 1e-9);
    }

    #[test]
    fn exclusive_counts() {
        let doc = figure2();
        let report = analyze(&doc, &hospital_policy());
        let by_id = |id: &str| report.rules.iter().find(|r| r.id == id).unwrap();
        // The untreated patient is covered only by R1.
        assert_eq!(by_id("R1").exclusive, 1);
        // Every R3 patient is also an R1 patient: nothing exclusive.
        assert_eq!(by_id("R3").exclusive, 0);
        // Names (R2) are covered by no other rule except R4 (same scope on
        // treated patients); the untreated patient's name is R2-only… R4
        // covers treated names, so R2's exclusive = 1.
        assert_eq!(by_id("R2").exclusive, 1);
    }

    #[test]
    fn empty_policy_and_document() {
        let doc = figure2();
        let empty = Policy::parse("default deny\nconflict deny\n").unwrap();
        let report = analyze(&doc, &empty);
        assert!(report.rules.is_empty());
        assert_eq!(report.defaulted, report.total_nodes);
        assert_eq!(report.conflicted, 0);
        assert_eq!(report.accessible, 0);
        assert_eq!(report.coverage(), 0.0);

        let lone = Document::parse_str("<a/>").unwrap();
        let report = analyze(&lone, &hospital_policy());
        assert_eq!(report.total_nodes, 1);
        assert_eq!(report.accessible, 0);
    }
}
