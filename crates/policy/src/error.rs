//! Error type for policy parsing and analysis.

use std::fmt;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A policy file line could not be parsed.
    Parse { line: usize, message: String },
    /// An embedded XPath expression was malformed.
    XPath(String),
    /// A policy-level inconsistency (duplicate rule ids, …).
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { line, message } => {
                write!(f, "policy parse error on line {line}: {message}")
            }
            Error::XPath(m) => write!(f, "policy XPath error: {m}"),
            Error::Invalid(m) => write!(f, "invalid policy: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<xac_xpath::Error> for Error {
    fn from(e: xac_xpath::Error) -> Self {
        Error::XPath(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
