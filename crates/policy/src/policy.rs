//! Policies `P = (ds, cr, A, D)` and a line-oriented text format.
//!
//! The text format used by policy files, generators and examples:
//!
//! ```text
//! # Hospital policy (paper Table 1)
//! default deny
//! conflict deny-overrides
//! R1 allow //patient
//! R3 deny  //patient[treatment]
//! ```

use crate::error::{Error, Result};
use crate::rule::{Effect, Rule};
use std::fmt;

/// Default accessibility of nodes not covered by any rule (`ds`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefaultSemantics {
    /// Nodes are accessible unless denied (`ds = +`).
    Allow,
    /// Nodes are inaccessible unless granted (`ds = −`). The common case.
    Deny,
}

impl DefaultSemantics {
    /// Paper sign notation.
    pub fn sign(self) -> char {
        match self {
            DefaultSemantics::Allow => '+',
            DefaultSemantics::Deny => '-',
        }
    }

    /// The annotation every node starts from.
    pub fn default_effect(self) -> Effect {
        match self {
            DefaultSemantics::Allow => Effect::Allow,
            DefaultSemantics::Deny => Effect::Deny,
        }
    }
}

/// Resolution when a node is in the scope of rules with opposite signs
/// (`cr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictResolution {
    /// The granting rule wins (`cr = +`).
    AllowOverrides,
    /// The denying rule wins (`cr = −`). The common case.
    DenyOverrides,
}

impl ConflictResolution {
    /// Paper sign notation.
    pub fn sign(self) -> char {
        match self {
            ConflictResolution::AllowOverrides => '+',
            ConflictResolution::DenyOverrides => '-',
        }
    }
}

/// An access control policy: default semantics, conflict resolution and
/// the positive/negative rule sets (kept in one ordered list; `A` and `D`
/// are views).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Policy {
    /// `ds` — default semantics.
    pub default_semantics: DefaultSemantics,
    /// `cr` — conflict resolution.
    pub conflict_resolution: ConflictResolution,
    /// All rules in declaration order.
    pub rules: Vec<Rule>,
}

impl Policy {
    /// Create a policy, checking rule ids are unique.
    pub fn new(
        default_semantics: DefaultSemantics,
        conflict_resolution: ConflictResolution,
        rules: Vec<Rule>,
    ) -> Result<Self> {
        let mut seen = std::collections::BTreeSet::new();
        for r in &rules {
            if !seen.insert(r.id.as_str()) {
                return Err(Error::Invalid(format!("duplicate rule id `{}`", r.id)));
            }
        }
        Ok(Policy { default_semantics, conflict_resolution, rules })
    }

    /// The positive rule set `A`.
    pub fn positives(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(|r| r.effect == Effect::Allow)
    }

    /// The negative rule set `D`.
    pub fn negatives(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(|r| r.effect == Effect::Deny)
    }

    /// Look up a rule by id.
    pub fn rule(&self, id: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.id == id)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the policy has no rules (everything gets the default).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Index of the rule with the given id in declaration order.
    pub fn rule_index(&self, id: &str) -> Option<usize> {
        self.rules.iter().position(|r| r.id == id)
    }

    /// A copy of the policy without the rule `id`. Errors when no such
    /// rule exists.
    pub fn without_rule(&self, id: &str) -> Result<Policy> {
        let idx = self
            .rule_index(id)
            .ok_or_else(|| Error::Invalid(format!("no rule `{id}` to remove")))?;
        let mut edited = self.clone();
        edited.rules.remove(idx);
        Ok(edited)
    }

    /// A copy of the policy with the rule `id` replaced in place
    /// (declaration order preserved). The replacement may rename the
    /// rule; id uniqueness is re-checked.
    pub fn with_rule_replaced(&self, id: &str, replacement: Rule) -> Result<Policy> {
        let idx = self
            .rule_index(id)
            .ok_or_else(|| Error::Invalid(format!("no rule `{id}` to replace")))?;
        let mut rules = self.rules.clone();
        rules[idx] = replacement;
        Policy::new(self.default_semantics, self.conflict_resolution, rules)
    }

    /// A copy of the policy with `rule` appended. Id uniqueness is
    /// re-checked.
    pub fn with_rule_appended(&self, rule: Rule) -> Result<Policy> {
        let mut rules = self.rules.clone();
        rules.push(rule);
        Policy::new(self.default_semantics, self.conflict_resolution, rules)
    }

    /// A rule id of the form `{prefix}{n}` not used by any current rule.
    pub fn fresh_rule_id(&self, prefix: &str) -> String {
        let mut n = self.rules.len() + 1;
        loop {
            let candidate = format!("{prefix}{n}");
            if self.rule(&candidate).is_none() {
                return candidate;
            }
            n += 1;
        }
    }

    /// Parse the text format. Blank lines and `#` comments are ignored.
    pub fn parse(text: &str) -> Result<Policy> {
        let mut ds = None;
        let mut cr = None;
        let mut rules = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let head = parts.next().unwrap_or_default();
            match head {
                "default" => {
                    let v = parts.next().unwrap_or_default();
                    ds = Some(match v {
                        "allow" | "+" => DefaultSemantics::Allow,
                        "deny" | "-" => DefaultSemantics::Deny,
                        other => {
                            return Err(Error::Parse {
                                line: lineno,
                                message: format!("unknown default semantics `{other}`"),
                            })
                        }
                    });
                }
                "conflict" => {
                    let v = parts.next().unwrap_or_default();
                    cr = Some(match v {
                        "allow-overrides" | "allow" | "+" => ConflictResolution::AllowOverrides,
                        "deny-overrides" | "deny" | "-" => ConflictResolution::DenyOverrides,
                        other => {
                            return Err(Error::Parse {
                                line: lineno,
                                message: format!("unknown conflict resolution `{other}`"),
                            })
                        }
                    });
                }
                id => {
                    let effect = match parts.next() {
                        Some("allow") | Some("+") => Effect::Allow,
                        Some("deny") | Some("-") => Effect::Deny,
                        other => {
                            return Err(Error::Parse {
                                line: lineno,
                                message: format!("expected allow/deny, found {other:?}"),
                            })
                        }
                    };
                    let resource = parts.next().ok_or(Error::Parse {
                        line: lineno,
                        message: "missing resource expression".into(),
                    })?;
                    let rule =
                        Rule::parse(id, resource.trim(), effect).map_err(|e| Error::Parse {
                            line: lineno,
                            message: e.to_string(),
                        })?;
                    rules.push(rule);
                }
            }
        }
        let ds = ds.ok_or(Error::Invalid("missing `default` declaration".into()))?;
        let cr = cr.ok_or(Error::Invalid("missing `conflict` declaration".into()))?;
        Policy::new(ds, cr, rules)
    }

    /// Render in the text format (round-trips through [`Policy::parse`]).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(match self.default_semantics {
            DefaultSemantics::Allow => "default allow\n",
            DefaultSemantics::Deny => "default deny\n",
        });
        out.push_str(match self.conflict_resolution {
            ConflictResolution::AllowOverrides => "conflict allow-overrides\n",
            ConflictResolution::DenyOverrides => "conflict deny-overrides\n",
        });
        for r in &self.rules {
            out.push_str(&format!("{} {} {}\n", r.id, r.effect, r.resource));
        }
        out
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// The paper's Table 1 hospital policy (deny default, deny overrides).
pub fn hospital_policy() -> Policy {
    Policy::parse(
        r#"
        default deny
        conflict deny-overrides
        R1 allow //patient
        R2 allow //patient/name
        R3 deny  //patient[treatment]
        R4 allow //patient[treatment]/name
        R5 deny  //patient[.//experimental]
        R6 allow //regular
        R7 allow //regular[med = "celecoxib"]
        R8 allow //regular[bill > 1000]
        "#,
    )
    .expect("the paper's Table 1 policy parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_table1() {
        let p = hospital_policy();
        assert_eq!(p.len(), 8);
        assert_eq!(p.positives().count(), 6);
        assert_eq!(p.negatives().count(), 2);
        assert_eq!(p.default_semantics, DefaultSemantics::Deny);
        assert_eq!(p.conflict_resolution, ConflictResolution::DenyOverrides);
        assert_eq!(p.rule("R3").unwrap().effect, Effect::Deny);
        assert_eq!(p.rule("R7").unwrap().resource.to_string(), "//regular[med = \"celecoxib\"]");
    }

    #[test]
    fn text_round_trip() {
        let p = hospital_policy();
        let again = Policy::parse(&p.to_text()).unwrap();
        assert_eq!(p, again);
    }

    #[test]
    fn sign_shorthand_accepted() {
        let p = Policy::parse("default -\nconflict +\nR1 + //a\nR2 - //b\n").unwrap();
        assert_eq!(p.default_semantics, DefaultSemantics::Deny);
        assert_eq!(p.conflict_resolution, ConflictResolution::AllowOverrides);
        assert_eq!(p.rule("R1").unwrap().effect, Effect::Allow);
        assert_eq!(p.rule("R2").unwrap().effect, Effect::Deny);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Policy::parse("conflict deny\nR1 allow //a\n").is_err(), "missing default");
        assert!(Policy::parse("default deny\nR1 allow //a\n").is_err(), "missing conflict");
        assert!(Policy::parse("default deny\nconflict deny\nR1 grant //a\n").is_err());
        assert!(Policy::parse("default deny\nconflict deny\nR1 allow\n").is_err());
        assert!(Policy::parse("default deny\nconflict deny\nR1 allow //a[\n").is_err());
        assert!(
            Policy::parse("default deny\nconflict deny\nR1 allow //a\nR1 deny //b\n").is_err(),
            "duplicate rule ids"
        );
        assert!(Policy::parse("default maybe\nconflict deny\n").is_err());
    }

    #[test]
    fn edit_api_preserves_order_and_checks_ids() {
        let p = hospital_policy();
        let without = p.without_rule("R3").unwrap();
        assert_eq!(without.len(), 7);
        assert!(without.rule("R3").is_none());
        assert_eq!(without.rules[2].id, "R4", "later rules keep their slot order");
        assert!(p.without_rule("R99").is_err());

        let flipped = Rule::parse("R3", "//patient[treatment]", Effect::Allow).unwrap();
        let replaced = p.with_rule_replaced("R3", flipped).unwrap();
        assert_eq!(replaced.rule_index("R3"), Some(2), "replacement stays in place");
        assert_eq!(replaced.rule("R3").unwrap().effect, Effect::Allow);
        let rename_clash = Rule::parse("R1", "//x", Effect::Deny).unwrap();
        assert!(p.with_rule_replaced("R3", rename_clash).is_err(), "rename must not collide");

        let extra = Rule::parse("R9", "//phone", Effect::Deny).unwrap();
        let appended = p.with_rule_appended(extra).unwrap();
        assert_eq!(appended.len(), 9);
        assert_eq!(appended.rules.last().unwrap().id, "R9");
        let dup = Rule::parse("R1", "//phone", Effect::Deny).unwrap();
        assert!(p.with_rule_appended(dup).is_err());

        assert_eq!(p.fresh_rule_id("R"), "R9");
        assert_eq!(appended.fresh_rule_id("R"), "R10");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let p = Policy::parse("# hi\n\ndefault deny\n# mid\nconflict deny\nR1 allow //a\n\n")
            .unwrap();
        assert_eq!(p.len(), 1);
    }
}
