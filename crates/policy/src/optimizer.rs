//! **Redundancy-Elimination** (paper §5.1, Fig. 4).
//!
//! A rule `R` is redundant when some other rule `R'` of the *same* effect
//! contains it: every node in `R`'s scope is already in `R'`'s scope, and
//! since both rules push the node the same way, dropping `R` leaves the
//! policy semantics unchanged. Containment is the sound homomorphism test
//! of [`xac_xpath::containment`].
//!
//! On the paper's Table 1 policy this removes R4 (⊑ R2), R7 and R8 (⊑ R6),
//! producing Table 3. R3 ⊑ R1 holds but R3 survives: the two rules have
//! opposite effects.

use crate::policy::Policy;
use crate::rule::Rule;
use xac_xpath::ContainmentOracle;

/// Drop redundant rules, preserving declaration order of the survivors.
///
/// When two rules of the same effect are *equivalent*, the one declared
/// first survives (the pairwise loop of Fig. 4 removes the later one).
pub fn redundancy_elimination(policy: &Policy) -> Policy {
    redundancy_elimination_with_oracle(policy, &ContainmentOracle::new())
}

/// Redundancy elimination with schema-aware containment: on schema-valid
/// documents some rules are redundant even though the schema-blind test
/// cannot prove it (the paper's §8 "schema-aware optimizations").
pub fn redundancy_elimination_with_schema(
    policy: &Policy,
    schema: &xac_xml::Schema,
) -> Policy {
    redundancy_elimination_with_oracle(policy, &ContainmentOracle::with_schema(schema.clone()))
}

/// Redundancy elimination through a caller-supplied [`ContainmentOracle`]
/// — schema-aware exactly when the oracle holds a schema. The pairwise
/// loop is `O(n²)` containment queries over at most `n` distinct paths;
/// sharing the oracle across analysis passes lets later phases (the
/// dependency graph, Trigger) reuse every answer computed here.
pub fn redundancy_elimination_with_oracle(
    policy: &Policy,
    oracle: &ContainmentOracle,
) -> Policy {
    Policy {
        default_semantics: policy.default_semantics,
        conflict_resolution: policy.conflict_resolution,
        rules: survivors(&policy.rules, oracle),
    }
}

fn survivors(rules: &[Rule], oracle: &ContainmentOracle) -> Vec<Rule> {
    let contained = |a: &Rule, b: &Rule| {
        a.effect == b.effect && oracle.contained_in_schema_aware(&a.resource, &b.resource)
    };
    let mut removed = vec![false; rules.len()];
    for i in 0..rules.len() {
        if removed[i] {
            continue;
        }
        for j in 0..rules.len() {
            if i == j || removed[j] || rules[i].effect != rules[j].effect {
                continue;
            }
            // rules[j] redundant if contained in the (surviving) rules[i].
            if contained(&rules[j], &rules[i]) {
                removed[j] = true;
            }
        }
    }
    rules
        .iter()
        .zip(&removed)
        .filter(|(_, &r)| !r)
        .map(|(rule, _)| rule.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{hospital_policy, Policy};
    use crate::semantics::accessible_nodes;
    use xac_xml::Document;

    #[test]
    fn table1_reduces_to_table3() {
        let p = hospital_policy();
        let opt = redundancy_elimination(&p);
        let ids: Vec<&str> = opt.rules.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["R1", "R2", "R3", "R5", "R6"], "paper Table 3");
    }

    #[test]
    fn opposite_effects_never_eliminate() {
        let p = Policy::parse(
            "default deny\nconflict deny\nR1 allow //patient\nR3 deny //patient[treatment]\n",
        )
        .unwrap();
        let opt = redundancy_elimination(&p);
        assert_eq!(opt.len(), 2, "R3 ⊑ R1 but with opposite effect");
    }

    #[test]
    fn equivalent_rules_keep_first() {
        let p = Policy::parse(
            "default deny\nconflict deny\nA allow //x[y and z]\nB allow //x[z and y]\n",
        )
        .unwrap();
        let opt = redundancy_elimination(&p);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.rules[0].id, "A");
    }

    #[test]
    fn chain_of_containment_keeps_only_broadest() {
        let p = Policy::parse(
            "default deny\nconflict deny\n\
             A allow //a[b[c]]\nB allow //a[b]\nC allow //a\n",
        )
        .unwrap();
        let opt = redundancy_elimination(&p);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.rules[0].id, "C");
    }

    #[test]
    fn optimization_preserves_semantics() {
        let doc = Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>1</psn><name>a</name>\
             <treatment><regular><med>celecoxib</med><bill>1500</bill></regular></treatment>\
             </patient>\
             <patient><psn>2</psn><name>b</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap();
        let p = hospital_policy();
        let opt = redundancy_elimination(&p);
        assert_eq!(
            accessible_nodes(&doc, &p),
            accessible_nodes(&doc, &opt),
            "redundancy elimination must not change [[P]](T)"
        );
    }

    #[test]
    fn schema_aware_elimination_catches_more() {
        use xac_xml::{Occurs::*, Particle, Schema};
        // c occurs only below b, which occurs only below a.
        let schema = Schema::builder("r")
            .sequence("r", vec![Particle::new("a", Star)])
            .sequence("a", vec![Particle::new("b", Optional)])
            .sequence("b", vec![Particle::new("c", Optional)])
            .text(&["c"])
            .build()
            .unwrap();
        let p = Policy::parse(
            "default deny\nconflict deny\n\
             A allow //a[b]\nB allow //a[.//c]\n",
        )
        .unwrap();
        // Blind: B is not provably contained in A.
        assert_eq!(redundancy_elimination(&p).len(), 2);
        // Schema-aware: every c under a sits inside a b, so B ⊑ A.
        let opt = crate::optimizer::redundancy_elimination_with_schema(&p, &schema);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.rules[0].id, "A");
    }

    #[test]
    fn unrelated_rules_untouched() {
        let p = Policy::parse(
            "default deny\nconflict deny\nA allow //a\nB allow //b\nC deny //c\n",
        )
        .unwrap();
        let opt = redundancy_elimination(&p);
        assert_eq!(opt.len(), 3);
    }
}
