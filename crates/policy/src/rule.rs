//! Access control rules.
//!
//! The paper's general rule form is `(requester, resource, action, effect,
//! scope)`; like the paper (§3) we fix the requester and action, take the
//! rule scope to be the node itself (explicit rules, no inheritance), and
//! keep the `(resource, effect)` pair.

use std::fmt;
use xac_xpath::Path;

/// The effect of a rule: grant (`+`) or deny (`−`) access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Effect {
    /// Positive rule: the nodes in scope become accessible.
    Allow,
    /// Negative rule: the nodes in scope become inaccessible.
    Deny,
}

impl Effect {
    /// The paper's sign notation.
    pub fn sign(self) -> char {
        match self {
            Effect::Allow => '+',
            Effect::Deny => '-',
        }
    }

    /// The opposite effect.
    pub fn opposite(self) -> Effect {
        match self {
            Effect::Allow => Effect::Deny,
            Effect::Deny => Effect::Allow,
        }
    }
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Effect::Allow => f.write_str("allow"),
            Effect::Deny => f.write_str("deny"),
        }
    }
}

/// An access control rule `R = (resource, effect)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Human-readable identifier (`R1`, `R2`, … in the paper's tables).
    pub id: String,
    /// The XPath expression designating the nodes in scope.
    pub resource: Path,
    /// Grant or deny.
    pub effect: Effect,
}

impl Rule {
    /// Construct a rule; the resource must be an absolute path.
    pub fn new(id: impl Into<String>, resource: Path, effect: Effect) -> Self {
        assert!(resource.absolute, "rule resources are absolute XPath expressions");
        Rule { id: id.into(), resource, effect }
    }

    /// Parse the resource from text.
    pub fn parse(
        id: impl Into<String>,
        resource: &str,
        effect: Effect,
    ) -> crate::error::Result<Self> {
        let path = xac_xpath::parse(resource)?;
        if !path.absolute {
            return Err(crate::error::Error::Invalid(format!(
                "rule resource `{resource}` must be absolute"
            )));
        }
        Ok(Rule::new(id, path, effect))
    }

    /// True when this rule is contained in `other` per the paper's §5.1
    /// definition: equal effects and resource containment.
    pub fn contained_in(&self, other: &Rule) -> bool {
        self.effect == other.effect && self.resource.contained_in(&other.resource)
    }

    /// Schema-aware variant of [`Rule::contained_in`]: containment is
    /// tested on documents valid under `schema` (the §8 "schema-aware
    /// optimizations"), catching redundancies the schema-blind test
    /// cannot see.
    pub fn contained_in_with_schema(&self, other: &Rule, schema: &xac_xml::Schema) -> bool {
        self.effect == other.effect
            && xac_xpath::contained_in_with_schema(&self.resource, &other.resource, schema)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.id, self.effect, self.resource)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signs_and_opposites() {
        assert_eq!(Effect::Allow.sign(), '+');
        assert_eq!(Effect::Deny.sign(), '-');
        assert_eq!(Effect::Allow.opposite(), Effect::Deny);
        assert_eq!(Effect::Deny.opposite(), Effect::Allow);
    }

    #[test]
    fn parse_and_display() {
        let r = Rule::parse("R1", "//patient", Effect::Allow).unwrap();
        assert_eq!(r.to_string(), "R1 allow //patient");
        assert!(Rule::parse("R2", "relative/path", Effect::Deny).is_err());
        assert!(Rule::parse("R3", "//bad[", Effect::Deny).is_err());
    }

    #[test]
    fn rule_containment_requires_same_effect() {
        let narrow = Rule::parse("a", "//patient[treatment]", Effect::Allow).unwrap();
        let broad = Rule::parse("b", "//patient", Effect::Allow).unwrap();
        let broad_deny = Rule::parse("c", "//patient", Effect::Deny).unwrap();
        assert!(narrow.contained_in(&broad));
        assert!(!broad.contained_in(&narrow));
        assert!(!narrow.contained_in(&broad_deny), "opposite effects never contain");
    }
}
