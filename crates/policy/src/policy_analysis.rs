//! Precomputed static-analysis context for a `(policy, schema)` pair.
//!
//! The Fig. 8 Trigger algorithm is pure static analysis, yet the free
//! [`crate::trigger`] function re-derives everything on every call: each
//! rule resource is re-expanded through the schema, every expansion pair
//! is re-tested for containment, and callers must juggle a separately
//! built [`DependencyGraph`]. In an update-heavy workload (the paper's
//! Fig. 12 experiment runs Trigger once per update) that repeated work
//! dominates the static-analysis cost.
//!
//! [`PolicyAnalysis`] hoists everything update-independent out of the
//! per-call path, computing it once at build time:
//!
//! * the §5.3 rule expansions, one `Vec<Path>` per rule;
//! * the dependency graph (Fig. 7) with its transitive closure;
//! * a shared [`ContainmentOracle`], so even the update-dependent
//!   containment tests are answered from cache after the first update
//!   that asks them.
//!
//! Per update, only the update path's own expansion remains — the rest is
//! table lookups. Results are *identical* to the free-function pipeline
//! (`DependencyGraph::build` + [`crate::trigger`]); this type changes the
//! cost model, never the answers.

use crate::dependency::DependencyGraph;
use crate::policy::Policy;
use crate::trigger::{expand_update, trigger_with_expansions};
use xac_xml::Schema;
use xac_xpath::{expand, ContainmentOracle, OracleStats, Path};

/// Everything Trigger needs, computed once per `(policy, schema)`.
pub struct PolicyAnalysis {
    policy: Policy,
    schema: Option<Schema>,
    /// Per-rule §5.3 expansions, indexed like `policy.rules`.
    expansions: Vec<Vec<Path>>,
    graph: DependencyGraph,
    oracle: ContainmentOracle,
}

impl PolicyAnalysis {
    /// Build the analysis. The dependency graph uses schema-*blind*
    /// containment (matching [`DependencyGraph::build`] and the paper's
    /// published algorithm); the schema, when given, drives rule
    /// expansion — exactly the contract of the free [`crate::trigger`].
    pub fn build(policy: &Policy, schema: Option<&Schema>) -> PolicyAnalysis {
        Self::assemble(policy, schema, false)
    }

    /// Build with schema-aware dependency edges (the §8 extension,
    /// matching [`DependencyGraph::build_with_schema`]): dependencies
    /// that only hold on schema-valid documents are captured too.
    pub fn build_schema_aware(policy: &Policy, schema: &Schema) -> PolicyAnalysis {
        Self::assemble(policy, Some(schema), true)
    }

    fn assemble(policy: &Policy, schema: Option<&Schema>, schema_aware: bool) -> PolicyAnalysis {
        let oracle = match schema {
            Some(s) if schema_aware => ContainmentOracle::with_schema(s.clone()),
            _ => ContainmentOracle::new(),
        };
        let graph = DependencyGraph::build_with_oracle(policy, &oracle);
        let expansions = policy.rules.iter().map(|r| expand(&r.resource, schema)).collect();
        PolicyAnalysis {
            policy: policy.clone(),
            schema: schema.cloned(),
            expansions,
            graph,
            oracle,
        }
    }

    /// The analyzed policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The schema rules were expanded through, if any.
    pub fn schema(&self) -> Option<&Schema> {
        self.schema.as_ref()
    }

    /// The precomputed dependency graph.
    pub fn graph(&self) -> &DependencyGraph {
        &self.graph
    }

    /// The cached §5.3 expansion of rule `i`.
    pub fn rule_expansions(&self, i: usize) -> &[Path] {
        &self.expansions[i]
    }

    /// All cached rule expansions, indexed like `policy.rules`.
    pub fn expansions(&self) -> &[Vec<Path>] {
        &self.expansions
    }

    /// The shared containment oracle (for further analysis sharing the
    /// same memo tables, e.g. the re-annotation planner).
    pub fn oracle(&self) -> &ContainmentOracle {
        &self.oracle
    }

    /// Containment-cache counters, for perf reports.
    pub fn oracle_stats(&self) -> OracleStats {
        self.oracle.stats()
    }

    /// Fig. 8 Trigger against the precomputed context: indices (into
    /// `policy.rules`) of the rules this update may invalidate. Identical
    /// output to `trigger(policy, &DependencyGraph::build(policy), u, schema)`.
    pub fn trigger(&self, update: &Path) -> Vec<usize> {
        let update_expansions = {
            let _span = xac_obs::span("trigger.expand");
            expand_update(update, self.schema.as_ref())
        };
        let _span = xac_obs::span("trigger.select");
        trigger_with_expansions(&self.expansions, &self.graph, &update_expansions, &self.oracle)
    }

    /// Convenience: triggered rule ids, for logs and tests.
    pub fn triggered_ids(&self, update: &Path) -> Vec<&str> {
        self.trigger(update)
            .into_iter()
            .map(|i| self.policy.rules[i].id.as_str())
            .collect()
    }
}

impl std::fmt::Debug for PolicyAnalysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyAnalysis")
            .field("rules", &self.policy.rules.len())
            .field("schema", &self.schema.is_some())
            .field("oracle", &self.oracle.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::redundancy_elimination;
    use crate::policy::hospital_policy;
    use crate::trigger::trigger;
    use xac_xml::{Occurs::*, Particle};

    fn hospital_schema() -> Schema {
        Schema::builder("hospital")
            .sequence("hospital", vec![Particle::new("dept", Plus)])
            .sequence(
                "dept",
                vec![Particle::new("patients", One), Particle::new("staffinfo", One)],
            )
            .sequence("patients", vec![Particle::new("patient", Star)])
            .sequence("staffinfo", vec![Particle::new("staff", Star)])
            .sequence(
                "patient",
                vec![
                    Particle::new("psn", One),
                    Particle::new("name", One),
                    Particle::new("treatment", Optional),
                ],
            )
            .choice(
                "treatment",
                vec![
                    Particle::new("regular", Optional),
                    Particle::new("experimental", Optional),
                ],
            )
            .sequence("regular", vec![Particle::new("med", One), Particle::new("bill", One)])
            .sequence(
                "experimental",
                vec![Particle::new("test", One), Particle::new("bill", One)],
            )
            .choice("staff", vec![Particle::new("nurse", One), Particle::new("doctor", One)])
            .sequence(
                "nurse",
                vec![
                    Particle::new("sid", One),
                    Particle::new("name", One),
                    Particle::new("phone", One),
                ],
            )
            .sequence(
                "doctor",
                vec![
                    Particle::new("sid", One),
                    Particle::new("name", One),
                    Particle::new("phone", One),
                ],
            )
            .text(&["psn", "name", "med", "bill", "test", "sid", "phone"])
            .build()
            .unwrap()
    }

    const UPDATES: &[&str] = &[
        "//patient/treatment",
        "//treatment",
        "//staffinfo/staff",
        "//patient",
        "//regular/med",
        "//patient/name",
        "//dept",
        "//experimental",
        "//patient/treatment/regular/bill",
        "//nurse/phone",
    ];

    /// The precomputed path answers exactly like the free-function
    /// pipeline, across the whole hospital workload — with and without a
    /// schema, optimized and raw policy.
    #[test]
    fn matches_free_trigger_on_hospital_workload() {
        let schema = hospital_schema();
        for policy in [hospital_policy(), redundancy_elimination(&hospital_policy())] {
            let graph = DependencyGraph::build(&policy);
            for schema_opt in [None, Some(&schema)] {
                let analysis = PolicyAnalysis::build(&policy, schema_opt);
                for u in UPDATES {
                    let update = xac_xpath::parse(u).unwrap();
                    assert_eq!(
                        analysis.trigger(&update),
                        trigger(&policy, &graph, &update, schema_opt),
                        "diverged on update {u} (schema: {})",
                        schema_opt.is_some(),
                    );
                }
            }
        }
    }

    /// Repeat calls hit the memo tables: the second pass over the same
    /// workload performs zero fresh containment computations.
    #[test]
    fn repeat_updates_are_answered_from_cache() {
        let schema = hospital_schema();
        let policy = redundancy_elimination(&hospital_policy());
        let analysis = PolicyAnalysis::build(&policy, Some(&schema));
        for u in UPDATES {
            analysis.trigger(&xac_xpath::parse(u).unwrap());
        }
        let first_pass = analysis.oracle_stats();
        for u in UPDATES {
            analysis.trigger(&xac_xpath::parse(u).unwrap());
        }
        let second_pass = analysis.oracle_stats();
        assert_eq!(second_pass.misses, first_pass.misses, "no new homomorphism tests");
        assert!(second_pass.hits > first_pass.hits);
    }

    /// The schema-aware build mirrors `DependencyGraph::build_with_schema`.
    #[test]
    fn schema_aware_build_matches_schema_aware_graph() {
        let schema = hospital_schema();
        let policy = redundancy_elimination(&hospital_policy());
        let reference = DependencyGraph::build_with_schema(&policy, &schema);
        let analysis = PolicyAnalysis::build_schema_aware(&policy, &schema);
        for i in 0..policy.rules.len() {
            assert_eq!(analysis.graph().depends(i), reference.depends(i));
            assert_eq!(analysis.graph().neighbours(i), reference.neighbours(i));
        }
        for u in UPDATES {
            let update = xac_xpath::parse(u).unwrap();
            assert_eq!(
                analysis.trigger(&update),
                trigger(&policy, &reference, &update, Some(&schema)),
                "schema-aware divergence on {u}",
            );
        }
    }

    #[test]
    fn triggered_ids_convenience() {
        let policy = Policy::parse(
            "default deny\nconflict deny\nR1 allow //patient\nR3 deny //patient[treatment]\n",
        )
        .unwrap();
        let analysis = PolicyAnalysis::build(&policy, None);
        let update = xac_xpath::parse("//patient/treatment").unwrap();
        assert_eq!(analysis.triggered_ids(&update), vec!["R1", "R3"]);
    }

    #[test]
    fn empty_policy_analysis() {
        let policy = Policy::parse("default deny\nconflict deny\n").unwrap();
        let analysis = PolicyAnalysis::build(&policy, None);
        assert!(analysis.trigger(&xac_xpath::parse("//anything").unwrap()).is_empty());
        assert!(analysis.graph().is_empty());
    }
}
