//! **Annotation-Queries** (paper §5.2, Fig. 5).
//!
//! To annotate a stored document we compile the policy into one
//! backend-neutral query: the resources of the granting rules are
//! `UNION`ed, those of the denying rules are `UNION`ed, and depending on
//! `(ds, cr)` one side (possibly `EXCEPT` the other) selects the nodes
//! whose annotation differs from the default. Backends render this to SQL
//! (relational) or evaluate it as node-set algebra (native XML); the
//! [`AnnotationQuery::evaluate`] method is the reference evaluation.
//!
//! Storing only the non-default side is the paper's space optimization:
//! "we choose to annotate the accessible (inaccessible) nodes for policies
//! with deny (grant) default semantics respectively".

use crate::policy::{ConflictResolution, DefaultSemantics, Policy};
use crate::rule::{Effect, Rule};
use std::collections::BTreeSet;
use xac_xml::{Document, NodeId};
use xac_xpath::{eval, Path};

/// Which set-algebra shape the query takes (Fig. 5's four outcomes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryShape {
    /// `grants EXCEPT denies` — `ds = −`, `cr = −`.
    GrantsExceptDenies,
    /// `grants` — `ds = −`, `cr = +`.
    Grants,
    /// `denies` — `ds = +`, `cr = −`.
    Denies,
    /// `denies EXCEPT grants` — `ds = +`, `cr = +`.
    DeniesExceptGrants,
}

/// The compiled annotation query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotationQuery {
    /// The set-algebra shape.
    pub shape: QueryShape,
    /// Resources whose union forms the selected side.
    pub include: Vec<Path>,
    /// Resources whose union is subtracted (empty for the two
    /// `EXCEPT`-free shapes).
    pub except: Vec<Path>,
    /// The sign written on selected nodes — always the opposite of the
    /// policy default, so unselected nodes need no explicit annotation.
    pub mark: Effect,
}

impl AnnotationQuery {
    /// Compile a whole policy (Fig. 5 verbatim).
    pub fn from_policy(policy: &Policy) -> AnnotationQuery {
        Self::from_rules(policy.default_semantics, policy.conflict_resolution, &policy.rules)
    }

    /// Compile a subset of rules under the same `(ds, cr)` — used by the
    /// re-annotator, which builds the query from the triggered rules only.
    pub fn from_rules(
        ds: DefaultSemantics,
        cr: ConflictResolution,
        rules: &[Rule],
    ) -> AnnotationQuery {
        let grants: Vec<Path> = rules
            .iter()
            .filter(|r| r.effect == Effect::Allow)
            .map(|r| r.resource.clone())
            .collect();
        let denies: Vec<Path> = rules
            .iter()
            .filter(|r| r.effect == Effect::Deny)
            .map(|r| r.resource.clone())
            .collect();
        match (ds, cr) {
            (DefaultSemantics::Deny, ConflictResolution::DenyOverrides) => AnnotationQuery {
                shape: QueryShape::GrantsExceptDenies,
                include: grants,
                except: denies,
                mark: Effect::Allow,
            },
            (DefaultSemantics::Deny, ConflictResolution::AllowOverrides) => AnnotationQuery {
                shape: QueryShape::Grants,
                include: grants,
                except: Vec::new(),
                mark: Effect::Allow,
            },
            (DefaultSemantics::Allow, ConflictResolution::DenyOverrides) => AnnotationQuery {
                shape: QueryShape::Denies,
                include: denies,
                except: Vec::new(),
                mark: Effect::Deny,
            },
            (DefaultSemantics::Allow, ConflictResolution::AllowOverrides) => AnnotationQuery {
                shape: QueryShape::DeniesExceptGrants,
                include: denies,
                except: grants,
                mark: Effect::Deny,
            },
        }
    }

    /// Reference evaluation: the nodes to annotate with [`Self::mark`].
    pub fn evaluate(&self, doc: &Document) -> BTreeSet<NodeId> {
        let mut selected: BTreeSet<NodeId> = BTreeSet::new();
        for p in &self.include {
            selected.extend(eval(doc, p));
        }
        if !self.except.is_empty() {
            let mut sub: BTreeSet<NodeId> = BTreeSet::new();
            for p in &self.except {
                sub.extend(eval(doc, p));
            }
            selected.retain(|n| !sub.contains(n));
        }
        selected
    }

    /// Render the query in the paper's notation, e.g.
    /// `(Q1 UNION Q2) EXCEPT (Q3 UNION Q5)`.
    pub fn describe(&self) -> String {
        let side = |paths: &[Path]| {
            let inner: Vec<String> = paths.iter().map(|p| p.to_string()).collect();
            format!("({})", inner.join(" UNION "))
        };
        if self.except.is_empty() {
            side(&self.include)
        } else {
            format!("{} EXCEPT {}", side(&self.include), side(&self.except))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{hospital_policy, Policy};
    use crate::semantics::accessible_nodes;
    use xac_xml::Document;

    fn figure2() -> Document {
        Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>033</psn><name>john doe</name>\
             <treatment><regular><med>enoxaparin</med><bill>700</bill></regular></treatment>\
             </patient>\
             <patient><psn>042</psn><name>jane doe</name>\
             <treatment><experimental><test>regression hypnosis</test><bill>1600</bill></experimental></treatment>\
             </patient>\
             <patient><psn>099</psn><name>joy smith</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap()
    }

    #[test]
    fn shapes_match_fig5() {
        let mk = |ds: &str, cr: &str| {
            let p = Policy::parse(&format!(
                "default {ds}\nconflict {cr}\nA allow //a\nD deny //d\n"
            ))
            .unwrap();
            AnnotationQuery::from_policy(&p)
        };
        assert_eq!(mk("deny", "deny").shape, QueryShape::GrantsExceptDenies);
        assert_eq!(mk("deny", "allow").shape, QueryShape::Grants);
        assert_eq!(mk("allow", "deny").shape, QueryShape::Denies);
        assert_eq!(mk("allow", "allow").shape, QueryShape::DeniesExceptGrants);
        assert_eq!(mk("deny", "deny").mark, Effect::Allow);
        assert_eq!(mk("allow", "allow").mark, Effect::Deny);
    }

    /// Annotating `evaluate()` with `mark` and defaulting the rest must
    /// reproduce `accessible_nodes` for all four `(ds, cr)` combinations.
    #[test]
    fn query_agrees_with_reference_semantics() {
        let doc = figure2();
        for ds in ["deny", "allow"] {
            for cr in ["deny-overrides", "allow-overrides"] {
                let p = Policy::parse(&format!(
                    "default {ds}\nconflict {cr}\n\
                     R1 allow //patient\nR3 deny //patient[treatment]\n\
                     R6 allow //regular\nR5 deny //patient[.//experimental]\n"
                ))
                .unwrap();
                let q = AnnotationQuery::from_policy(&p);
                let selected = q.evaluate(&doc);
                let accessible: std::collections::BTreeSet<_> = doc
                    .all_elements()
                    .filter(|&n| {
                        if selected.contains(&n) {
                            q.mark == Effect::Allow
                        } else {
                            p.default_semantics.default_effect() == Effect::Allow
                        }
                    })
                    .collect();
                assert_eq!(
                    accessible,
                    accessible_nodes(&doc, &p),
                    "mismatch for ds={ds} cr={cr}"
                );
            }
        }
    }

    #[test]
    fn describe_renders_union_except() {
        let p = hospital_policy();
        let q = AnnotationQuery::from_policy(&crate::optimizer::redundancy_elimination(&p));
        let s = q.describe();
        assert_eq!(
            s,
            "(//patient UNION //patient/name UNION //regular) \
             EXCEPT (//patient[treatment] UNION //patient[.//experimental])"
                .replace("  ", " ")
        );
    }

    #[test]
    fn empty_rule_sets() {
        let p = Policy::parse("default deny\nconflict deny\n").unwrap();
        let q = AnnotationQuery::from_policy(&p);
        assert!(q.include.is_empty());
        let doc = figure2();
        assert!(q.evaluate(&doc).is_empty(), "nothing selected, everything default-denied");
    }
}
