//! Rule dependency graphs (paper §5.3, Fig. 7).
//!
//! When an update changes the scope of a rule `R`, every rule of the
//! *opposite* effect whose scope is containment-related to `R`'s may also
//! need re-evaluation: under deny-overrides, deleting the nodes that made
//! a negative rule apply can re-expose nodes granted by a positive rule
//! (the paper's `//patient[treatment]` / `//patient` example). The
//! dependency graph has an edge between rules `r` and `n` of opposite
//! effect whenever `r ⊑ n ∨ n ⊑ r ∨ r = n`; **Depend-Resolve** closes the
//! relation transitively with a DFS, so triggering one rule pulls in its
//! whole dependency component.

use crate::policy::Policy;
use std::collections::BTreeSet;
use xac_xpath::ContainmentOracle;

/// The dependency graph over a policy's rules, by rule index.
#[derive(Debug, Clone)]
pub struct DependencyGraph {
    /// Direct containment-related opposite-effect neighbours.
    neighbours: Vec<Vec<usize>>,
    /// Transitive closure (`r.depends` of Fig. 7), excluding the rule
    /// itself.
    depends: Vec<Vec<usize>>,
}

impl DependencyGraph {
    /// Build the graph for a policy (the `Depend` algorithm).
    pub fn build(policy: &Policy) -> DependencyGraph {
        Self::build_with_oracle(policy, &ContainmentOracle::new())
    }

    /// Build the graph with schema-aware containment: dependencies that
    /// only hold on schema-valid documents (e.g. a rule testing
    /// `.//experimental` against one testing `treatment`) are captured
    /// too, making the Trigger closure more complete.
    pub fn build_with_schema(policy: &Policy, schema: &xac_xml::Schema) -> DependencyGraph {
        Self::build_with_oracle(policy, &ContainmentOracle::with_schema(schema.clone()))
    }

    /// Build the graph through a caller-supplied [`ContainmentOracle`] —
    /// schema-aware exactly when the oracle holds a schema. Sharing the
    /// oracle with the optimizer and Trigger means the pairwise pass here
    /// re-answers from cache instead of re-running homomorphism tests.
    pub fn build_with_oracle(policy: &Policy, oracle: &ContainmentOracle) -> DependencyGraph {
        let contained = |a: &crate::rule::Rule, b: &crate::rule::Rule| {
            oracle.contained_in_schema_aware(&a.resource, &b.resource)
        };
        let n = policy.rules.len();
        let mut neighbours: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (&policy.rules[i], &policy.rules[j]);
                if a.effect == b.effect {
                    continue;
                }
                let related = contained(a, b) || contained(b, a);
                if related {
                    neighbours[i].push(j);
                    neighbours[j].push(i);
                }
            }
        }

        // Depend-Resolve: DFS from each rule collecting reachable rules.
        let mut depends: Vec<Vec<usize>> = Vec::with_capacity(n);
        for start in 0..n {
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            let mut stack: Vec<usize> = neighbours[start].clone();
            while let Some(r) = stack.pop() {
                if r == start || !seen.insert(r) {
                    continue;
                }
                stack.extend(neighbours[r].iter().copied());
            }
            depends.push(seen.into_iter().collect());
        }
        DependencyGraph { neighbours, depends }
    }

    /// Direct neighbours of rule `i`.
    pub fn neighbours(&self, i: usize) -> &[usize] {
        &self.neighbours[i]
    }

    /// All rules (transitively) dependent on rule `i`, excluding `i`.
    pub fn depends(&self, i: usize) -> &[usize] {
        &self.depends[i]
    }

    /// Number of rules covered.
    pub fn len(&self) -> usize {
        self.depends.len()
    }

    /// True for the empty policy.
    pub fn is_empty(&self) -> bool {
        self.depends.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{hospital_policy, Policy};

    fn idx(policy: &Policy, id: &str) -> usize {
        policy.rules.iter().position(|r| r.id == id).unwrap()
    }

    #[test]
    fn paper_example_r1_r3() {
        // R3 ⊑ R1 with opposite effects: each depends on the other.
        let p = Policy::parse(
            "default deny\nconflict deny\nR1 allow //patient\nR3 deny //patient[treatment]\n",
        )
        .unwrap();
        let g = DependencyGraph::build(&p);
        assert_eq!(g.depends(0), &[1]);
        assert_eq!(g.depends(1), &[0]);
    }

    #[test]
    fn same_effect_rules_are_independent() {
        let p = Policy::parse(
            "default deny\nconflict deny\nA allow //patient\nB allow //patient[treatment]\n",
        )
        .unwrap();
        let g = DependencyGraph::build(&p);
        assert!(g.depends(0).is_empty());
        assert!(g.depends(1).is_empty());
    }

    #[test]
    fn unrelated_rules_are_independent() {
        let p = Policy::parse("default deny\nconflict deny\nA allow //a\nB deny //b\n").unwrap();
        let g = DependencyGraph::build(&p);
        assert!(g.depends(0).is_empty());
        assert!(g.depends(1).is_empty());
    }

    #[test]
    fn closure_hops_across_effects() {
        // C ⊑ B ⊑ A with alternating effects: A's component is {B, C}.
        let p = Policy::parse(
            "default deny\nconflict deny\n\
             A allow //a\nB deny //a[b]\nC allow //a[b[c]]\n",
        )
        .unwrap();
        let g = DependencyGraph::build(&p);
        assert_eq!(g.depends(0), &[1, 2]);
        assert_eq!(g.depends(1), &[0, 2]);
        assert_eq!(g.depends(2), &[0, 1]);
        // Direct neighbours: A–B and B–C, but not A–C (same effect).
        assert_eq!(g.neighbours(0), &[1]);
        assert_eq!(g.neighbours(1), &[0, 2]);
    }

    #[test]
    fn schema_aware_dependencies_catch_more() {
        use xac_xml::{Occurs::*, Particle, Schema};
        let schema = Schema::builder("r")
            .sequence("r", vec![Particle::new("a", Star)])
            .sequence("a", vec![Particle::new("b", Optional)])
            .sequence("b", vec![Particle::new("c", Optional)])
            .text(&["c"])
            .build()
            .unwrap();
        let p = Policy::parse(
            "default deny\nconflict deny\nA allow //a[b]\nB deny //a[.//c]\n",
        )
        .unwrap();
        let blind = DependencyGraph::build(&p);
        assert!(blind.depends(0).is_empty(), "blind test sees no relation");
        let aware = DependencyGraph::build_with_schema(&p, &schema);
        assert_eq!(aware.depends(0), &[1], "under the schema, B ⊑ A");
        assert_eq!(aware.depends(1), &[0]);
    }

    #[test]
    fn hospital_policy_dependencies() {
        let p = crate::optimizer::redundancy_elimination(&hospital_policy());
        let g = DependencyGraph::build(&p);
        let r1 = idx(&p, "R1");
        let r3 = idx(&p, "R3");
        let r5 = idx(&p, "R5");
        // R3 ⊑ R1 and R5 ⊑ R1 (opposite effects): R1's component is {R3, R5}.
        let deps: Vec<&str> = g.depends(r1).iter().map(|&i| p.rules[i].id.as_str()).collect();
        assert_eq!(deps, vec!["R3", "R5"]);
        assert!(g.depends(r3).contains(&r1));
        assert!(g.depends(r5).contains(&r1));
        // R2 (//patient/name) is containment-unrelated to the negatives.
        let r2 = idx(&p, "R2");
        assert!(g.depends(r2).is_empty());
    }
}
