//! Reference evaluation of policy semantics (paper Table 2).
//!
//! `[[P]](T)` — the set of accessible nodes — is defined case-by-case on
//! the default semantics `ds` and conflict resolution `cr`:
//!
//! | `ds` | `cr` | `[[P]](T)` |
//! |------|------|------------|
//! | `+`  | `+`  | `U(T) − ([[D]](T) − [[A]](T))` |
//! | `−`  | `+`  | `[[A]](T)` |
//! | `+`  | `−`  | `U(T) − [[D]](T)` |
//! | `−`  | `−`  | `[[A]](T) − [[D]](T)` |
//!
//! where `U(T)` is all element nodes, `[[A]](T)` the union of positive rule
//! scopes and `[[D]](T)` the union of negative rule scopes.
//!
//! This module evaluates the semantics directly on the tree. Storage
//! backends implement the same semantics through their own query engines;
//! integration tests cross-check them against this reference.

use crate::policy::{ConflictResolution, DefaultSemantics, Policy};
use std::collections::BTreeSet;
use xac_xml::{Document, NodeId};
use xac_xpath::eval;

/// The accessible element nodes of `doc` under `policy`.
pub fn accessible_nodes(doc: &Document, policy: &Policy) -> BTreeSet<NodeId> {
    let grants = union_of_scopes(doc, policy, crate::rule::Effect::Allow);
    let denies = union_of_scopes(doc, policy, crate::rule::Effect::Deny);
    let universe = || doc.all_elements().collect::<BTreeSet<_>>();

    match (policy.default_semantics, policy.conflict_resolution) {
        (DefaultSemantics::Allow, ConflictResolution::AllowOverrides) => {
            let mut out = universe();
            for n in denies.difference(&grants) {
                out.remove(n);
            }
            out
        }
        (DefaultSemantics::Deny, ConflictResolution::AllowOverrides) => grants,
        (DefaultSemantics::Allow, ConflictResolution::DenyOverrides) => {
            let mut out = universe();
            for n in &denies {
                out.remove(n);
            }
            out
        }
        (DefaultSemantics::Deny, ConflictResolution::DenyOverrides) => {
            grants.difference(&denies).copied().collect()
        }
    }
}

/// Nodes in the scope of some rule with the given effect.
fn union_of_scopes(
    doc: &Document,
    policy: &Policy,
    effect: crate::rule::Effect,
) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    for rule in policy.rules.iter().filter(|r| r.effect == effect) {
        out.extend(eval(doc, &rule.resource));
    }
    out
}

/// Is a specific node accessible? Convenience wrapper over
/// [`accessible_nodes`] for spot checks.
pub fn is_accessible(doc: &Document, policy: &Policy, node: NodeId) -> bool {
    accessible_nodes(doc, policy).contains(&node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{hospital_policy, Policy};

    /// The paper's Figure 2 document (three patients).
    fn figure2() -> Document {
        Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>033</psn><name>john doe</name>\
             <treatment><regular><med>enoxaparin</med><bill>700</bill></regular></treatment>\
             </patient>\
             <patient><psn>042</psn><name>jane doe</name>\
             <treatment><experimental><test>regression hypnosis</test><bill>1600</bill></experimental></treatment>\
             </patient>\
             <patient><psn>099</psn><name>joy smith</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap()
    }

    fn accessible_names(doc: &Document, policy: &Policy) -> Vec<(String, String)> {
        accessible_nodes(doc, policy)
            .into_iter()
            .map(|n| (doc.name(n).unwrap().to_string(), doc.text_of(n)))
            .collect()
    }

    #[test]
    fn figure2_annotations_match_paper() {
        // The paper's Figure 2 shows: names all "+", third patient "+",
        // first/second patients "−" (they have treatments), regular "+"
        // (R6), its bill "+"? — the figure marks regular's bill with "+"
        // only where shown; we check the principled set.
        let doc = figure2();
        let policy = hospital_policy();
        let acc = accessible_names(&doc, &policy);

        // All three names are accessible (R2; R4 redundant).
        let names: Vec<&str> = acc
            .iter()
            .filter(|(n, _)| n == "name")
            .map(|(_, v)| v.as_str())
            .collect();
        assert_eq!(names, vec!["john doe", "jane doe", "joy smith"]);

        // Only the third patient (no treatment) is accessible.
        let patients = acc.iter().filter(|(n, _)| n == "patient").count();
        assert_eq!(patients, 1);

        // The regular treatment is accessible (R6), experimental is not.
        assert_eq!(acc.iter().filter(|(n, _)| n == "regular").count(), 1);
        assert_eq!(acc.iter().filter(|(n, _)| n == "experimental").count(), 0);

        // Default-deny: psn, treatment, med, bill, test, hospital, dept,
        // patients, staffinfo are all inaccessible.
        for blocked in ["psn", "treatment", "med", "bill", "test", "hospital", "dept"] {
            assert_eq!(
                acc.iter().filter(|(n, _)| n == blocked).count(),
                0,
                "{blocked} should be denied by default"
            );
        }
    }

    #[test]
    fn four_semantics_combinations() {
        let doc = Document::parse_str("<r><a/><b/><c/></r>").unwrap();
        let total = doc.element_count(); // r, a, b, c
        let rules = "X1 allow //a\nX2 deny //a\nX3 deny //b\n";

        let mk = |ds: &str, cr: &str| {
            Policy::parse(&format!("default {ds}\nconflict {cr}\n{rules}")).unwrap()
        };

        // ds=+, cr=+ : U − (D − A) = everything except b.
        let p = mk("allow", "allow-overrides");
        assert_eq!(accessible_nodes(&doc, &p).len(), total - 1);

        // ds=−, cr=+ : A = {a}.
        let p = mk("deny", "allow-overrides");
        assert_eq!(accessible_nodes(&doc, &p).len(), 1);

        // ds=+, cr=− : U − D = everything except a and b.
        let p = mk("allow", "deny-overrides");
        assert_eq!(accessible_nodes(&doc, &p).len(), total - 2);

        // ds=−, cr=− : A − D = ∅ (a is both granted and denied).
        let p = mk("deny", "deny-overrides");
        assert_eq!(accessible_nodes(&doc, &p).len(), 0);
    }

    #[test]
    fn empty_policy_follows_default() {
        let doc = figure2();
        let deny = Policy::parse("default deny\nconflict deny\n").unwrap();
        assert!(accessible_nodes(&doc, &deny).is_empty());
        let allow = Policy::parse("default allow\nconflict deny\n").unwrap();
        assert_eq!(accessible_nodes(&doc, &allow).len(), doc.element_count());
    }
}
