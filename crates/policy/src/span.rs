//! Source spans for policy text: where each rule — and each qualifier
//! inside its resource expression — sits in the `.pol` file.
//!
//! The [`crate::Policy`] AST deliberately carries no positions (it is
//! `Eq` and round-trips through `to_text`), so diagnostics and repair
//! diffs that want to point into the *original* source re-scan it here.
//! The scan is purely lexical and mirrors the line discipline of
//! [`crate::Policy::parse`]: one rule per line, `#` comments and blanks
//! skipped, the rule id as first token. Qualifiers are the depth-1
//! `[...]` groups of the resource text; nested brackets stay part of
//! their enclosing group. All lines and columns are 1-based.

/// The span of one qualifier (`[...]` group) inside a rule's resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualifierSpan {
    /// 1-based column of the opening `[`.
    pub col_start: usize,
    /// 1-based column of the closing `]`.
    pub col_end: usize,
    /// The qualifier body, brackets excluded.
    pub text: String,
}

/// The source location of one rule line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSpan {
    /// The rule id (first token of the line).
    pub id: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column where the resource expression starts.
    pub resource_col: usize,
    /// Depth-1 qualifier groups of the resource, left to right.
    pub qualifiers: Vec<QualifierSpan>,
}

impl RuleSpan {
    /// The first qualifier span, if the resource has one.
    pub fn first_qualifier(&self) -> Option<&QualifierSpan> {
        self.qualifiers.first()
    }
}

/// Scan policy source for the span of every rule line. Lines that do
/// not look like rules (headers, comments, blanks, malformed lines) are
/// skipped — the scan never fails, it only reports what it can anchor.
pub fn rule_spans(source: &str) -> Vec<RuleSpan> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let head = parts.next().unwrap_or_default();
        if head == "default" || head == "conflict" {
            continue;
        }
        // Skip the effect token; what remains is the resource.
        if parts.next().is_none() {
            continue;
        }
        let Some(resource) = parts.next().map(str::trim_start) else {
            continue;
        };
        if resource.is_empty() {
            continue;
        }
        let resource_offset = match raw.find(resource) {
            Some(o) => o,
            None => continue,
        };
        out.push(RuleSpan {
            id: head.to_string(),
            line: idx + 1,
            resource_col: resource_offset + 1,
            qualifiers: qualifier_spans(resource, resource_offset),
        });
    }
    out
}

/// Depth-1 bracket groups of `resource`, with columns shifted by the
/// resource's offset into its raw line.
fn qualifier_spans(resource: &str, offset: usize) -> Vec<QualifierSpan> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut in_string = false;
    for (i, ch) in resource.char_indices() {
        match ch {
            '"' => in_string = !in_string,
            '[' if !in_string => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            ']' if !in_string => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    out.push(QualifierSpan {
                        col_start: offset + start + 1,
                        col_end: offset + i + 1,
                        text: resource[start + 1..i].to_string(),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_cover_rules_and_qualifiers() {
        let src = "# header\ndefault deny\nconflict deny-overrides\n\
                   R1 allow //patient\n\
                   R3 deny  //patient[treatment]\n\
                   R8 allow //regular[bill > 1000][med = \"x\"]\n";
        let spans = rule_spans(src);
        assert_eq!(spans.len(), 3);
        assert_eq!((spans[0].id.as_str(), spans[0].line), ("R1", 4));
        assert!(spans[0].qualifiers.is_empty());

        let r3 = &spans[1];
        assert_eq!((r3.id.as_str(), r3.line), ("R3", 5));
        assert_eq!(r3.resource_col, 10, "two spaces after `deny`");
        let q = r3.first_qualifier().unwrap();
        assert_eq!(q.text, "treatment");
        assert_eq!(&src.lines().nth(4).unwrap()[q.col_start - 1..q.col_end], "[treatment]");

        let r8 = &spans[2];
        assert_eq!(r8.qualifiers.len(), 2);
        assert_eq!(r8.qualifiers[0].text, "bill > 1000");
        assert_eq!(r8.qualifiers[1].text, "med = \"x\"");
    }

    #[test]
    fn nested_and_quoted_brackets_stay_inside_their_group() {
        let spans = rule_spans("default deny\nconflict deny\nR1 allow //a[b[c]]/d[e = \"[x]\"]\n");
        let r1 = &spans[0];
        assert_eq!(r1.qualifiers.len(), 2);
        assert_eq!(r1.qualifiers[0].text, "b[c]");
        assert_eq!(r1.qualifiers[1].text, "e = \"[x]\"");
    }

    #[test]
    fn non_rule_lines_are_skipped() {
        let spans = rule_spans("default deny\nconflict deny\n# note\n\nbroken\nR1 allow //a\n");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].id, "R1");
        assert_eq!(spans[0].line, 6);
    }
}
