//! The **Trigger** algorithm (paper §5.3, Fig. 8).
//!
//! Given an update `u` — an XPath expression designating the nodes being
//! inserted or deleted — Trigger selects the rules whose annotations may
//! be invalidated:
//!
//! 1. each rule is *expanded* ([`xac_xpath::expand`]) into the linear
//!    paths to every node it constrains, with descendant axes inside
//!    predicates rewritten through the schema;
//! 2. a rule fires when some expansion `x` satisfies
//!    `x ⊑ u ∨ u ⊑ x ∨ x ≡ u`;
//! 3. the fired set is closed over the [`DependencyGraph`], pulling in
//!    opposite-effect rules related by containment.
//!
//! The result is the rule subset handed to the re-annotator, which resets
//! and recomputes only the scopes of those rules. Complexity is
//! `O(n · h)` containment tests for `n` rules and expansion sets bounded
//! by the schema height `h`.

use crate::dependency::DependencyGraph;
use crate::policy::Policy;
use std::collections::BTreeSet;
use xac_xml::Schema;
use xac_xpath::{expand, ContainmentOracle, Path};

/// Indices (into `policy.rules`) of the rules an update triggers.
pub fn trigger(
    policy: &Policy,
    graph: &DependencyGraph,
    update: &Path,
    schema: Option<&Schema>,
) -> Vec<usize> {
    let expansions: Vec<Vec<Path>> =
        policy.rules.iter().map(|r| expand(&r.resource, schema)).collect();
    // The update path is expanded exactly like a rule resource. Fig. 8
    // compares rule expansions against the bare update, which misses
    // updates carrying predicates (`//treatment[experimental]` is
    // containment-incomparable with `//patient/treatment` even though
    // deleting it changes R5's scope); comparing expansion sets on both
    // sides closes that hole while staying a containment test.
    trigger_with_expansions(&expansions, graph, &expand_update(update, schema), &ContainmentOracle::new())
}

/// Expand an update path for triggering, exactly as rule resources are.
pub fn expand_update(update: &Path, schema: Option<&Schema>) -> Vec<Path> {
    assert!(update.absolute, "updates are absolute XPath expressions");
    expand(update, schema)
}

/// The Fig. 8 core over *precomputed* rule expansions: [`crate::PolicyAnalysis`]
/// expands every rule once at build time and replays this per update, so
/// the per-call cost collapses to (memoized) containment tests plus the
/// dependency closure. Firing containment is schema-blind, exactly as in
/// [`trigger`] — the schema's influence is confined to the expansions.
pub fn trigger_with_expansions(
    expansions: &[Vec<Path>],
    graph: &DependencyGraph,
    update_expansions: &[Path],
    oracle: &ContainmentOracle,
) -> Vec<usize> {
    let mut fired: BTreeSet<usize> = BTreeSet::new();
    for (i, rule_expansions) in expansions.iter().enumerate() {
        let hits = rule_expansions.iter().any(|x| {
            update_expansions
                .iter()
                .any(|u| oracle.contained_in(x, u) || oracle.contained_in(u, x))
        });
        if hits {
            fired.insert(i);
        }
    }
    // Dependency closure.
    let direct: Vec<usize> = fired.iter().copied().collect();
    for i in direct {
        fired.extend(graph.depends(i).iter().copied());
    }
    fired.into_iter().collect()
}

/// Convenience: triggered rule ids, for logs and tests.
pub fn triggered_ids<'p>(
    policy: &'p Policy,
    graph: &DependencyGraph,
    update: &Path,
    schema: Option<&Schema>,
) -> Vec<&'p str> {
    trigger(policy, graph, update, schema)
        .into_iter()
        .map(|i| policy.rules[i].id.as_str())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::redundancy_elimination;
    use crate::policy::{hospital_policy, Policy};
    use xac_xml::{Occurs::*, Particle, Schema};

    fn hospital_schema() -> Schema {
        Schema::builder("hospital")
            .sequence("hospital", vec![Particle::new("dept", Plus)])
            .sequence(
                "dept",
                vec![Particle::new("patients", One), Particle::new("staffinfo", One)],
            )
            .sequence("patients", vec![Particle::new("patient", Star)])
            .sequence("staffinfo", vec![Particle::new("staff", Star)])
            .sequence(
                "patient",
                vec![
                    Particle::new("psn", One),
                    Particle::new("name", One),
                    Particle::new("treatment", Optional),
                ],
            )
            .choice(
                "treatment",
                vec![
                    Particle::new("regular", Optional),
                    Particle::new("experimental", Optional),
                ],
            )
            .sequence("regular", vec![Particle::new("med", One), Particle::new("bill", One)])
            .sequence(
                "experimental",
                vec![Particle::new("test", One), Particle::new("bill", One)],
            )
            .choice("staff", vec![Particle::new("nurse", One), Particle::new("doctor", One)])
            .sequence(
                "nurse",
                vec![
                    Particle::new("sid", One),
                    Particle::new("name", One),
                    Particle::new("phone", One),
                ],
            )
            .sequence(
                "doctor",
                vec![
                    Particle::new("sid", One),
                    Particle::new("name", One),
                    Particle::new("phone", One),
                ],
            )
            .text(&["psn", "name", "med", "bill", "test", "sid", "phone"])
            .build()
            .unwrap()
    }

    fn run(policy: &Policy, update: &str, schema: Option<&Schema>) -> Vec<String> {
        let g = DependencyGraph::build(policy);
        let u = xac_xpath::parse(update).unwrap();
        triggered_ids(policy, &g, &u, schema)
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn paper_example_delete_patient_treatment() {
        // Deleting //patient/treatment must trigger R3 (its expansion
        // contains //patient/treatment) and, through the dependency graph,
        // the positive rule R1 (§5.3's first example).
        let p = Policy::parse(
            "default deny\nconflict deny\nR1 allow //patient\nR3 deny //patient[treatment]\n",
        )
        .unwrap();
        let ids = run(&p, "//patient/treatment", None);
        assert_eq!(ids, vec!["R1", "R3"]);
    }

    #[test]
    fn paper_example_delete_all_treatments_needs_schema() {
        // §5.3's second example: deleting //treatment must trigger R5
        // (//patient[.//experimental]) — only the schema-expanded rule
        // mentions a path related to //treatment.
        let p = Policy::parse(
            "default deny\nconflict deny\n\
             R1 allow //patient\nR5 deny //patient[.//experimental]\n",
        )
        .unwrap();
        let schema = hospital_schema();
        let with = run(&p, "//treatment", Some(&schema));
        assert_eq!(with, vec!["R1", "R5"], "schema expansion makes R5 fire, pulling in R1");
    }

    #[test]
    fn unrelated_update_triggers_nothing() {
        let p = redundancy_elimination(&hospital_policy());
        let schema = hospital_schema();
        let ids = run(&p, "//staffinfo/staff", Some(&schema));
        assert!(ids.is_empty(), "staff updates do not affect patient rules, got {ids:?}");
    }

    #[test]
    fn update_containing_rule_scope_triggers() {
        // u = //patient contains the scope of R1 and (by expansion
        // prefixes) relates to R3's //patient component.
        let p = redundancy_elimination(&hospital_policy());
        let schema = hospital_schema();
        let ids = run(&p, "//patient", Some(&schema));
        assert!(ids.contains(&"R1".to_string()));
        assert!(ids.contains(&"R3".to_string()));
        assert!(ids.contains(&"R5".to_string()));
        assert!(ids.contains(&"R2".to_string()), "//patient/name prefix relates to //patient");
    }

    #[test]
    fn hospital_med_update_triggers_value_rule() {
        let p = hospital_policy(); // unoptimized: R7 still present
        let schema = hospital_schema();
        let ids = run(&p, "//regular/med", Some(&schema));
        assert!(ids.contains(&"R7".to_string()), "the med-testing rule fires: {ids:?}");
        // The update's own expansion includes the `//regular` prefix, so
        // the other regular-scoped rules (R6, R8) fire too — a sound
        // over-approximation that keeps subtree deletions covered.
        assert!(ids.contains(&"R6".to_string()), "{ids:?}");
        // An update on an unrelated subtree still triggers nothing.
        let none = run(&p, "//staffinfo/staff", Some(&schema));
        assert!(none.is_empty(), "staff updates are unrelated, got {none:?}");
    }

    #[test]
    fn empty_policy() {
        let p = Policy::parse("default deny\nconflict deny\n").unwrap();
        let ids = run(&p, "//anything", None);
        assert!(ids.is_empty());
    }
}
