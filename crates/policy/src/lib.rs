//! # xac-policy
//!
//! The access-control framework of the **xmlac** system (paper §3 and §5):
//! rule-based policies over XML documents, their set semantics, and the
//! static analyses that make materialized enforcement practical.
//!
//! * [`rule`] — access control rules `(resource, effect)` where the
//!   resource is an XPath expression in the fragment of
//!   [`xac_xpath`] and the effect grants (`+`) or denies (`−`) access;
//! * [`policy`] — policies `P = (ds, cr, A, D)` combining a default
//!   semantics, a conflict-resolution strategy and the rule sets, plus a
//!   small text format for policy files;
//! * [`semantics`] — the reference evaluation of `[[P]](T)` (Table 2),
//!   used to cross-check every storage backend;
//! * [`optimizer`] — **Redundancy-Elimination** (Fig. 4): same-effect
//!   rules contained in another rule are dropped;
//! * [`annotation_query`] — **Annotation-Queries** (Fig. 5): compiles a
//!   policy into a backend-neutral `UNION`/`EXCEPT` query over rule
//!   resources, later rendered to SQL or evaluated natively;
//! * [`dependency`] — **Depend/Depend-Resolve** (Fig. 7): the dependency
//!   graph linking opposite-effect rules related by containment;
//! * [`trigger`] — **Trigger** (Fig. 8): given an update path, selects the
//!   rules whose scopes must be re-annotated, using rule expansion and the
//!   dependency closure;
//! * [`policy_analysis`] — [`PolicyAnalysis`], the precomputed Trigger
//!   context: rule expansions, dependency graph and a shared containment
//!   oracle built once per `(policy, schema)` so per-update analysis is
//!   (memoized) lookups, not recomputation;
//! * [`span`] — source spans for `.pol` text: per-rule line/column plus
//!   the spans of qualifier (`[...]`) groups, so diagnostics and repair
//!   diffs can point at the exact predicate.

pub mod analysis;
pub mod annotation_query;
pub mod dependency;
pub mod error;
pub mod optimizer;
pub mod policy;
pub mod policy_analysis;
pub mod rule;
pub mod semantics;
pub mod span;
pub mod trigger;

pub use analysis::{analyze, PolicyReport, RuleStats};
pub use annotation_query::{AnnotationQuery, QueryShape};
pub use dependency::DependencyGraph;
pub use error::{Error, Result};
pub use optimizer::{
    redundancy_elimination, redundancy_elimination_with_oracle,
    redundancy_elimination_with_schema,
};
pub use policy::{ConflictResolution, DefaultSemantics, Policy};
pub use policy_analysis::PolicyAnalysis;
pub use rule::{Effect, Rule};
pub use semantics::accessible_nodes;
pub use span::{rule_spans, QualifierSpan, RuleSpan};
pub use trigger::trigger;
