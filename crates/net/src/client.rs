//! Blocking TCP client for the wire protocol.
//!
//! [`NetClient::connect`] performs the preamble + hello/welcome
//! handshake; [`NetClient::request`] sends one [`Request`] frame and
//! returns the server's answer as a [`Response`] — typed error frames
//! come back as [`Response::Error`], so a caller sees exactly the value
//! the in-process `serve_as` path would have produced (wire errors that
//! break the conversation itself are [`WireError`]s instead).
//!
//! The client doubles as the network fault harness: a
//! [`FaultPlan`](xac_core::FaultPlan) carrying the client-side
//! [`FaultPoint::NET`](xac_core::FaultPoint) points makes the *next*
//! request misbehave on the wire — stall mid-frame past the server's
//! read timeout (`net_slow_client`), disconnect half way through a
//! frame (`net_mid_frame_disconnect`), or declare a payload above the
//! server's frame cap (`net_oversized_frame`). The armed
//! [`FaultAction`](xac_core::FaultAction) is ignored for these points:
//! the point itself is the behavior.

use crate::wire::{self, Frame, WireError, WireTrace, MAX_FRAME};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;
use xac_core::{FaultPlan, FaultPoint};
use xac_obs::TraceContext;
use xac_serve::{ErrorKind, Request, Response, Role};

/// A connected, handshaken client session.
pub struct NetClient {
    stream: TcpStream,
    role: Role,
    backend: String,
    welcome_epoch: u64,
    plan: FaultPlan,
    /// How long `net_slow_client` stalls mid-frame. Must exceed the
    /// server's read timeout for the fault to be observable.
    stall: Duration,
    /// Set once the conversation is unrecoverable (server closed after
    /// a protocol error, or an injected disconnect).
    dead: bool,
    /// Whether requests mint and carry a trace context (on by default;
    /// the overhead benchmark turns it off to measure the delta).
    propagate: bool,
    /// The context minted for the most recent request.
    last_trace: Option<TraceContext>,
}

impl NetClient {
    /// Connect and handshake as `role`. A typed error frame in place of
    /// `Welcome` (admission refused, unknown role at a future version…)
    /// surfaces as [`WireError::Rejected`].
    pub fn connect(addr: impl ToSocketAddrs, role: Role) -> Result<NetClient, WireError> {
        NetClient::connect_with(addr, role, FaultPlan::new(), Duration::from_millis(200))
    }

    /// [`NetClient::connect`] with a fault plan whose
    /// [`FaultPoint::NET`] points this client will fire, and the
    /// mid-frame stall duration for `net_slow_client`.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        role: Role,
        plan: FaultPlan,
        stall: Duration,
    ) -> Result<NetClient, WireError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        // Bound every read so a wedged server cannot hang the client;
        // generous relative to the server's own timeouts.
        stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
        wire::write_preamble(&mut stream)?;
        wire::write_frame(&mut stream, &Frame::Hello { role })?;
        match wire::read_frame(&mut stream)? {
            Frame::Welcome { backend, epoch } => Ok(NetClient {
                stream,
                role,
                backend,
                welcome_epoch: epoch,
                plan,
                stall,
                dead: false,
                propagate: true,
                last_trace: None,
            }),
            Frame::Error { kind, message } => Err(WireError::Rejected { kind, message }),
            other => {
                Err(WireError::Unexpected { wanted: "welcome", got: other.kind_name() })
            }
        }
    }

    /// The session role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The serving backend's name, from the welcome frame.
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// The epoch published when the session was accepted.
    pub fn welcome_epoch(&self) -> u64 {
        self.welcome_epoch
    }

    /// True once the conversation broke (no further requests will
    /// succeed; reconnect instead).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Take the remaining fault plan out of this session — a net fault
    /// kills its session, so a harness that reconnects must carry the
    /// unfired specs over to the replacement connection.
    pub fn take_plan(&mut self) -> FaultPlan {
        std::mem::replace(&mut self.plan, FaultPlan::new())
    }

    /// Enable or disable trace-context propagation (on by default).
    /// With it off, requests go out as bare v1-shaped frames — the
    /// overhead benchmark's control arm.
    pub fn set_propagation(&mut self, on: bool) {
        self.propagate = on;
    }

    /// The trace context the *last* request was sent under (`None`
    /// before any request, or with propagation off).
    pub fn last_trace(&self) -> Option<TraceContext> {
        self.last_trace
    }

    /// Send one request, wait for the answer. Typed error frames are
    /// returned as [`Response::Error`]; rate-limited requests leave the
    /// session usable, any other error frame ends it.
    ///
    /// With propagation on (the default), each request mints a fresh
    /// [`TraceContext`], sends it as the frame's v2 trailing field, and
    /// wraps the send in a `net.client_send` span carrying the same
    /// trace id the server's spans will carry — one id links both ends
    /// of the wire.
    pub fn request(&mut self, req: &Request) -> Result<Response, WireError> {
        if self.dead {
            return Err(WireError::Closed);
        }
        let ctx = if self.propagate { Some(TraceContext::mint()) } else { None };
        self.last_trace = ctx;
        let _guard = ctx.map(xac_obs::trace::enter);
        let bytes = Frame::Request(req.clone(), ctx.map(WireTrace::from_context)).to_bytes();
        if self.plan.fire_at(FaultPoint::NetOversizedFrame).is_some() {
            return self.send_oversized();
        }
        if self.plan.fire_at(FaultPoint::NetMidFrameDisconnect).is_some() {
            return self.disconnect_mid_frame(&bytes);
        }
        if self.plan.fire_at(FaultPoint::NetSlowClient).is_some() {
            return self.send_slowly(&bytes);
        }
        {
            let _span = xac_obs::span("net.client_send");
            self.stream.write_all(&bytes)?;
        }
        self.read_answer()
    }

    /// All-or-nothing read.
    pub fn query(&mut self, query: &str) -> Result<Response, WireError> {
        self.request(&Request::query(query))
    }

    /// Guarded delete.
    pub fn delete(&mut self, path: &str) -> Result<Response, WireError> {
        self.request(&Request::delete(path))
    }

    /// Guarded insert.
    pub fn insert(
        &mut self,
        parent: &str,
        name: &str,
        text: Option<String>,
    ) -> Result<Response, WireError> {
        self.request(&Request::insert(parent, name, text))
    }

    /// Engine status.
    pub fn status(&mut self) -> Result<Response, WireError> {
        self.request(&Request::Status)
    }

    /// Engine metrics (admin only).
    pub fn metrics(&mut self) -> Result<Response, WireError> {
        self.request(&Request::Metrics)
    }

    /// Prometheus exposition over the wire (admin only).
    pub fn scrape(&mut self) -> Result<Response, WireError> {
        self.request(&Request::Scrape)
    }

    /// The server's most recent `n` flight records (admin only).
    pub fn tail(&mut self, n: u32) -> Result<Response, WireError> {
        self.request(&Request::tail(n))
    }

    /// Clean close: best-effort goodbye frame, then drop the socket.
    pub fn close(mut self) {
        if !self.dead {
            let _ = wire::write_frame(&mut self.stream, &Frame::Goodbye);
        }
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    fn read_answer(&mut self) -> Result<Response, WireError> {
        match wire::read_frame(&mut self.stream) {
            Ok(Frame::Response(resp)) => Ok(resp),
            Ok(Frame::Error { kind, message }) => {
                // The server keeps the session after a rate-limit
                // refusal; every other error frame precedes its close.
                if kind != ErrorKind::RateLimited {
                    self.dead = true;
                }
                Ok(Response::Error { kind, message })
            }
            Ok(other) => {
                self.dead = true;
                Err(WireError::Unexpected { wanted: "response", got: other.kind_name() })
            }
            Err(e) => {
                self.dead = true;
                Err(e)
            }
        }
    }

    /// `net_oversized_frame`: declare a payload above the server's cap.
    /// The server must refuse from the header alone with a typed
    /// protocol error — which we read back as the answer.
    fn send_oversized(&mut self) -> Result<Response, WireError> {
        let mut header = Vec::with_capacity(5);
        header.extend_from_slice(&((MAX_FRAME + 1) as u32).to_be_bytes());
        header.push(wire::tag::REQUEST);
        self.stream.write_all(&header)?;
        let answer = self.read_answer();
        self.dead = true;
        answer
    }

    /// `net_mid_frame_disconnect`: send half the frame, then vanish.
    /// There is no answer to read — the request never happened; the
    /// caller observes the torn conversation as [`WireError::Closed`].
    fn disconnect_mid_frame(&mut self, bytes: &[u8]) -> Result<Response, WireError> {
        let half = (bytes.len() / 2).max(5);
        let _ = self.stream.write_all(&bytes[..half.min(bytes.len())]);
        let _ = self.stream.shutdown(Shutdown::Both);
        self.dead = true;
        Err(WireError::Closed)
    }

    /// `net_slow_client`: send half the frame, stall, then finish. If
    /// the stall exceeds the server's read timeout the answer is its
    /// typed timeout error (already in our receive buffer) and
    /// `read_answer` marks the session dead; a stall the server
    /// tolerates is served normally and the session stays usable.
    fn send_slowly(&mut self, bytes: &[u8]) -> Result<Response, WireError> {
        let half = (bytes.len() / 2).max(5).min(bytes.len());
        self.stream.write_all(&bytes[..half])?;
        std::thread::sleep(self.stall);
        // The tail may hit a closed socket (EPIPE) — that's expected;
        // the server's error frame is still readable.
        let _ = self.stream.write_all(&bytes[half..]);
        self.read_answer()
    }
}

/// Split a mixed fault plan into its backend-side and client-side
/// halves: specs at [`FaultPoint::NET`] points go to the wire client,
/// everything else to the engine's [`FaultingBackend`]
/// (xac-core) decorator. Fired counts start at zero in both halves.
pub fn split_net_plan(plan: &FaultPlan) -> (FaultPlan, FaultPlan) {
    let mut backend = FaultPlan::new();
    let mut net = FaultPlan::new();
    for spec in plan.specs() {
        if spec.point.is_net() {
            net.push(spec.clone());
        } else {
            backend.push(spec.clone());
        }
    }
    (backend, net)
}

/// Raw-socket helper for protocol-robustness tests: connect, write
/// exactly `bytes`, then read whatever the server answers until it
/// closes (bounded by `timeout`). Returns the raw answer bytes.
pub fn raw_exchange(
    addr: impl ToSocketAddrs,
    bytes: &[u8],
    timeout: Duration,
) -> std::io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.write_all(bytes)?;
    let _ = stream.shutdown(Shutdown::Write);
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

impl std::fmt::Debug for NetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetClient")
            .field("role", &self.role)
            .field("backend", &self.backend)
            .field("welcome_epoch", &self.welcome_epoch)
            .field("dead", &self.dead)
            .finish()
    }
}
