//! # xac-net
//!
//! Network serving layer over [`xac_serve`]: a from-scratch
//! length-prefixed binary wire protocol ([`wire`]), a multi-threaded
//! TCP server fronting a [`ServeEngine`](xac_serve::ServeEngine)
//! ([`server`]), a blocking client that doubles as the network fault
//! harness ([`client`]), and per-role token-bucket rate limiting
//! ([`limiter`]).
//!
//! The layer is deliberately *thin*: the engine's unified
//! [`Request`](xac_serve::Request)/[`Response`](xac_serve::Response)
//! API is the entire semantic surface, and the wire protocol is a pure
//! codec over it. The server performs admission, handshake, and rate
//! limiting, then forwards each request to
//! [`ServeEngine::serve_as`](xac_serve::ServeEngine::serve_as) — it
//! never interprets queries, checks access, or touches metrics
//! accounting itself, which is what makes a response over a socket
//! byte-identical to the same request served in process.
//!
//! ```
//! use std::sync::Arc;
//! use xac_net::{NetClient, NetServer, ServerConfig};
//! use xac_serve::{BackendKind, Response, Role, ServeEngine};
//! use xac_policy::policy::hospital_policy;
//!
//! let schema = xac_core::hospital_schema_for_docs();
//! let doc = xac_xml::Document::parse_str(
//!     "<hospital><dept><patients>\
//!      <patient><psn>1</psn><name>a</name></patient>\
//!      </patients><staffinfo/></dept></hospital>").unwrap();
//! let system = xac_core::System::builder(schema, hospital_policy(), doc)
//!     .build().unwrap();
//! let engine = Arc::new(
//!     ServeEngine::for_kind(Arc::new(system), BackendKind::Native).unwrap());
//! let server = NetServer::start(engine, ServerConfig::default()).unwrap();
//! let mut client = NetClient::connect(server.local_addr(), Role::Reader).unwrap();
//! match client.query("//patient/name").unwrap() {
//!     Response::Decision { granted, .. } => assert!(granted),
//!     other => panic!("unexpected response: {other:?}"),
//! }
//! client.close();
//! server.shutdown();
//! ```

pub mod client;
pub mod limiter;
pub mod server;
pub mod wire;

pub use client::{raw_exchange, split_net_plan, NetClient};
pub use limiter::TokenBucket;
pub use server::{NetServer, ServerConfig};
pub use wire::{Frame, WireError, WireTrace, MAGIC, MAX_FRAME, MIN_VERSION, VERSION};
