//! The length-prefixed binary wire protocol.
//!
//! A connection opens with a fixed **preamble** the client sends raw
//! (before any frame), so a server can reject a stray non-xmlac client
//! from the first six bytes:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "XACN"
//! 4       2     protocol version, u16 big-endian (currently 2)
//! ```
//!
//! The server accepts any version in `[MIN_VERSION, VERSION]` — a v1
//! client talks to a v2 server unchanged, because the only v2 addition
//! is an *optional trailing field* on request frames (the trace
//! context, below) that v1 clients simply never send.
//!
//! Everything after the preamble is **frames**, in both directions:
//!
//! ```text
//! offset  size  field
//! 0       4     payload length n, u32 big-endian (tag excluded)
//! 4       1     frame tag
//! 5       n     payload
//! ```
//!
//! Declared payload lengths above [`MAX_FRAME`] are rejected before any
//! allocation — an attacker-controlled header can never size a buffer.
//! Within payloads, integers are big-endian, strings are `u32` length +
//! UTF-8 bytes, options are a presence byte, bools one byte. Trailing
//! bytes after a decoded payload are a protocol error: every frame
//! parses to exactly one [`Frame`] or fails with a [`WireError`].
//!
//! The frame vocabulary mirrors the serving engine's unified API
//! ([`Request`]/[`Response`]): the wire layer is a codec over those two
//! enums plus a three-frame session envelope (`Hello`/`Welcome`/
//! `Goodbye`) and a typed `Error` frame whose kind byte is
//! [`ErrorKind::code`] — the same closed vocabulary the in-process path
//! uses, so a decoded error frame *is* a [`Response::Error`].

use std::io::{Read, Write};
use xac_serve::{ErrorKind, Request, Response, Role};

/// First four bytes of every connection.
pub const MAGIC: [u8; 4] = *b"XACN";

/// Protocol version the preamble carries: version 2 adds the optional
/// trailing [`WireTrace`] field on request frames.
pub const VERSION: u16 = 2;

/// Oldest protocol version the server still accepts. Version-1 frames
/// are a strict subset of version 2 (no trailing trace context), so one
/// decoder serves both.
pub const MIN_VERSION: u16 = 1;

/// Hard cap on a frame's declared payload length. Bigger declarations
/// are rejected from the header alone ([`WireError::Oversized`]).
pub const MAX_FRAME: usize = 1 << 20;

/// Frame tags (the byte after the length prefix).
pub mod tag {
    /// Client → server: role handshake.
    pub const HELLO: u8 = 1;
    /// Server → client: handshake accepted.
    pub const WELCOME: u8 = 2;
    /// Client → server: one [`xac_serve::Request`].
    pub const REQUEST: u8 = 3;
    /// Server → client: one [`xac_serve::Response`].
    pub const RESPONSE: u8 = 4;
    /// Server → client: typed error (kind byte + message).
    pub const ERROR: u8 = 5;
    /// Client → server: clean close.
    pub const GOODBYE: u8 = 6;
}

/// Everything that can go wrong on the wire. Transport failures are
/// kept distinct from the in-band [`Response::Error`]s: a `WireError`
/// means the *conversation* broke, not that a request was answered
/// negatively.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Underlying socket error; `kind` preserves the io classification
    /// (timeouts surface as `WouldBlock`/`TimedOut` — see
    /// [`WireError::is_timeout`]).
    Io {
        /// The io error kind.
        kind: std::io::ErrorKind,
        /// Rendered detail.
        detail: String,
    },
    /// The peer closed cleanly at a frame boundary.
    Closed,
    /// The preamble's first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The preamble's version word was outside
    /// `[MIN_VERSION, VERSION]`.
    Version {
        /// The version the peer announced.
        got: u16,
    },
    /// A frame header declared a payload above [`MAX_FRAME`].
    Oversized {
        /// The declared payload length.
        declared: usize,
    },
    /// A frame carried an unknown tag byte.
    UnknownTag(u8),
    /// The payload did not decode (truncated mid-frame, bad UTF-8,
    /// unknown enum code, trailing bytes…).
    Malformed(String),
    /// A well-formed frame arrived where the session state machine
    /// expected a different one.
    Unexpected {
        /// What the state machine wanted.
        wanted: &'static str,
        /// What actually arrived.
        got: &'static str,
    },
    /// The server answered the handshake with a typed error frame
    /// instead of `Welcome` (admission refused, unknown role, …).
    Rejected {
        /// The error frame's kind.
        kind: ErrorKind,
        /// The error frame's message.
        message: String,
    },
}

impl WireError {
    /// True when the io error is a read-timeout expiry (both spellings
    /// the platform may use for `set_read_timeout`).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io { kind: std::io::ErrorKind::WouldBlock, .. }
                | WireError::Io { kind: std::io::ErrorKind::TimedOut, .. }
        )
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io { detail, .. } => write!(f, "io error: {detail}"),
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::BadMagic(m) => {
                write!(f, "bad magic {m:02x?} (expected `XACN`)")
            }
            WireError::Version { got } => {
                write!(
                    f,
                    "protocol version {got} unsupported (accepting {MIN_VERSION}..={VERSION})"
                )
            }
            WireError::Oversized { declared } => write!(
                f,
                "frame declares {declared} payload bytes, cap is {MAX_FRAME}"
            ),
            WireError::UnknownTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
            WireError::Unexpected { wanted, got } => {
                write!(f, "expected a {wanted} frame, got {got}")
            }
            WireError::Rejected { kind, message } => {
                write!(f, "handshake rejected ({kind}): {message}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io { kind: e.kind(), detail: e.to_string() }
    }
}

/// The trace context a version-2 request frame may carry: 16 bytes of
/// trace id plus the client's sending span id, appended to the request
/// payload as three big-endian `u64` words (`trace_id` high half, low
/// half, `parent_span`). Absence — a v1 frame, or a v2 client with
/// propagation off — decodes as `None`; a *partial* trailer is
/// malformed, never silently ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTrace {
    /// 128-bit trace id minted by the client ([`xac_obs::TraceContext`]).
    pub trace_id: u128,
    /// Span id of the client-side send span, the server's parent.
    pub parent_span: u64,
}

impl WireTrace {
    /// The wire form of an [`xac_obs::TraceContext`].
    pub fn from_context(ctx: xac_obs::TraceContext) -> WireTrace {
        WireTrace { trace_id: ctx.trace_id, parent_span: ctx.span_id }
    }

    /// Re-enterable context on the receiving side.
    pub fn to_context(self) -> xac_obs::TraceContext {
        xac_obs::TraceContext { trace_id: self.trace_id, span_id: self.parent_span }
    }
}

/// One frame of the protocol, either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: the role this session requests.
    Hello {
        /// Requested session role.
        role: Role,
    },
    /// Server → client: handshake accepted; identifies the engine.
    Welcome {
        /// The serving backend's name, e.g. `native/xml`.
        backend: String,
        /// Epoch published at accept time.
        epoch: u64,
    },
    /// Client → server: one request, with the optional v2 trace
    /// context.
    Request(Request, Option<WireTrace>),
    /// Server → client: one response.
    Response(Response),
    /// Server → client: typed error. Kind byte is [`ErrorKind::code`].
    Error {
        /// What went wrong.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// Client → server: clean close.
    Goodbye,
}

impl Frame {
    /// The frame's name for state-machine errors and logs.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::Welcome { .. } => "welcome",
            Frame::Request(..) => "request",
            Frame::Response(_) => "response",
            Frame::Error { .. } => "error",
            Frame::Goodbye => "goodbye",
        }
    }

    /// The frame's tag byte.
    pub fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => tag::HELLO,
            Frame::Welcome { .. } => tag::WELCOME,
            Frame::Request(..) => tag::REQUEST,
            Frame::Response(_) => tag::RESPONSE,
            Frame::Error { .. } => tag::ERROR,
            Frame::Goodbye => tag::GOODBYE,
        }
    }

    /// Encode the payload (everything after the tag byte).
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Hello { role } => put_str(&mut out, role.name()),
            Frame::Welcome { backend, epoch } => {
                put_u64(&mut out, *epoch);
                put_str(&mut out, backend);
            }
            Frame::Request(req, trace) => {
                encode_request(&mut out, req);
                if let Some(t) = trace {
                    put_u64(&mut out, (t.trace_id >> 64) as u64);
                    put_u64(&mut out, t.trace_id as u64);
                    put_u64(&mut out, t.parent_span);
                }
            }
            Frame::Response(resp) => encode_response(&mut out, resp),
            Frame::Error { kind, message } => {
                out.push(kind.code());
                put_str(&mut out, message);
            }
            Frame::Goodbye => {}
        }
        out
    }

    /// Serialize the whole frame: header, tag, payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(5 + payload.len());
        put_u32(&mut out, payload.len() as u32);
        out.push(self.tag());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode a frame from its tag byte and payload.
    pub fn decode(tag_byte: u8, payload: &[u8]) -> Result<Frame, WireError> {
        let mut c = Cursor::new(payload);
        let frame = match tag_byte {
            tag::HELLO => {
                let spelling = c.take_str()?;
                let role = Role::parse(&spelling)
                    .map_err(|e| WireError::Malformed(e.to_string()))?;
                Frame::Hello { role }
            }
            tag::WELCOME => {
                let epoch = c.take_u64()?;
                let backend = c.take_str()?;
                Frame::Welcome { backend, epoch }
            }
            tag::REQUEST => {
                let req = decode_request(&mut c)?;
                // v2's optional trailing trace context: absent on v1
                // frames (and v2 frames with propagation off). Present
                // means exactly three u64 words — a truncated trailer
                // fails in `take_u64`, surplus bytes in `finish`.
                let trace = if c.remaining() > 0 {
                    let hi = c.take_u64()?;
                    let lo = c.take_u64()?;
                    let parent_span = c.take_u64()?;
                    Some(WireTrace {
                        trace_id: (hi as u128) << 64 | lo as u128,
                        parent_span,
                    })
                } else {
                    None
                };
                Frame::Request(req, trace)
            }
            tag::RESPONSE => Frame::Response(decode_response(&mut c)?),
            tag::ERROR => {
                let code = c.take_u8()?;
                let kind = ErrorKind::from_code(code).ok_or_else(|| {
                    WireError::Malformed(format!("unknown error kind code {code}"))
                })?;
                let message = c.take_str()?;
                Frame::Error { kind, message }
            }
            tag::GOODBYE => Frame::Goodbye,
            other => return Err(WireError::UnknownTag(other)),
        };
        c.finish()?;
        Ok(frame)
    }
}

/// Send the connection preamble (client side, once, before any frame).
pub fn write_preamble(w: &mut impl Write) -> Result<(), WireError> {
    let mut bytes = [0u8; 6];
    bytes[..4].copy_from_slice(&MAGIC);
    bytes[4..].copy_from_slice(&VERSION.to_be_bytes());
    w.write_all(&bytes)?;
    Ok(())
}

/// Send a preamble carrying a specific version (cross-version tests;
/// real clients use [`write_preamble`]).
pub fn write_preamble_versioned(w: &mut impl Write, version: u16) -> Result<(), WireError> {
    let mut bytes = [0u8; 6];
    bytes[..4].copy_from_slice(&MAGIC);
    bytes[4..].copy_from_slice(&version.to_be_bytes());
    w.write_all(&bytes)?;
    Ok(())
}

/// Read and validate the preamble (server side). Returns the version
/// the peer negotiated — any of `[MIN_VERSION, VERSION]` is accepted,
/// so v1 clients keep working against a v2 server.
pub fn read_preamble(r: &mut impl Read) -> Result<u16, WireError> {
    let mut magic = [0u8; 4];
    read_exact_or(r, &mut magic, "truncated preamble")?;
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let mut version = [0u8; 2];
    read_exact_or(r, &mut version, "truncated preamble")?;
    let got = u16::from_be_bytes(version);
    if !(MIN_VERSION..=VERSION).contains(&got) {
        return Err(WireError::Version { got });
    }
    Ok(got)
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    w.write_all(&frame.to_bytes())?;
    Ok(())
}

/// Read one frame. A clean close *between* frames is [`WireError::Closed`];
/// a close inside a frame (header or payload half-read) is
/// [`WireError::Malformed`] — the two are distinguished so a server can
/// tell a polite goodbye-less disconnect from a torn frame.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    read_frame_timed(r).map(|(frame, _)| frame)
}

/// [`read_frame`] that also reports how long the *decode* took — the
/// time from the last payload byte being in memory to the typed
/// [`Frame`] existing. Network wait is excluded, so the duration is the
/// server's decode phase, not the client's think time.
pub fn read_frame_timed(
    r: &mut impl Read,
) -> Result<(Frame, std::time::Duration), WireError> {
    let mut header = [0u8; 4];
    // First byte by hand: read() returning 0 here is the only place a
    // disconnect counts as clean.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(WireError::Closed),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    header[0] = first[0];
    read_exact_or(r, &mut header[1..], "truncated frame header")?;
    let declared = u32::from_be_bytes(header) as usize;
    if declared > MAX_FRAME {
        return Err(WireError::Oversized { declared });
    }
    let mut tag_byte = [0u8; 1];
    read_exact_or(r, &mut tag_byte, "truncated frame header")?;
    let mut payload = vec![0u8; declared];
    read_exact_or(r, &mut payload, "truncated frame payload")?;
    let started = std::time::Instant::now();
    let frame = Frame::decode(tag_byte[0], &payload)?;
    Ok((frame, started.elapsed()))
}

/// `read_exact` that reports a mid-frame disconnect as a malformed
/// frame rather than a bare io error.
fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    context: &str,
) -> Result<(), WireError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Malformed(format!("{context} (peer disconnected mid-frame)"))
        } else {
            e.into()
        }
    })
}

// ---- payload codecs ----------------------------------------------------

fn encode_request(out: &mut Vec<u8>, req: &Request) {
    match req {
        Request::Query { query } => {
            out.push(1);
            put_str(out, query);
        }
        Request::Delete { path } => {
            out.push(2);
            put_str(out, path);
        }
        Request::Insert { parent, name, text } => {
            out.push(3);
            put_str(out, parent);
            put_str(out, name);
            put_opt_str(out, text.as_deref());
        }
        Request::Status => out.push(4),
        Request::Metrics => out.push(5),
        Request::Scrape => out.push(6),
        Request::Tail { n } => {
            out.push(7);
            put_u32(out, *n);
        }
        Request::Analyze { deny_warnings, fix } => {
            out.push(8);
            put_bool(out, *deny_warnings);
            put_bool(out, *fix);
        }
        // Request is #[non_exhaustive]; a new variant must get a wire
        // code here before anything can send it.
        other => unreachable!("unencodable request variant {other:?}"),
    }
}

fn decode_request(c: &mut Cursor<'_>) -> Result<Request, WireError> {
    match c.take_u8()? {
        1 => Ok(Request::Query { query: c.take_str()? }),
        2 => Ok(Request::Delete { path: c.take_str()? }),
        3 => Ok(Request::Insert {
            parent: c.take_str()?,
            name: c.take_str()?,
            text: c.take_opt_str()?,
        }),
        4 => Ok(Request::Status),
        5 => Ok(Request::Metrics),
        6 => Ok(Request::Scrape),
        7 => Ok(Request::Tail { n: c.take_u32()? }),
        8 => Ok(Request::Analyze {
            deny_warnings: c.take_bool()?,
            fix: c.take_bool()?,
        }),
        code => Err(WireError::Malformed(format!("unknown request code {code}"))),
    }
}

fn encode_response(out: &mut Vec<u8>, resp: &Response) {
    match resp {
        Response::Decision { granted, nodes, epoch } => {
            out.push(1);
            put_bool(out, *granted);
            put_u64(out, *nodes);
            put_u64(out, *epoch);
        }
        Response::Update { applied, removed, inserted, sign_writes, denied_nodes, epoch } => {
            out.push(2);
            put_bool(out, *applied);
            put_u64(out, *removed);
            put_u64(out, *inserted);
            put_u64(out, *sign_writes);
            put_u64(out, *denied_nodes);
            put_u64(out, *epoch);
        }
        Response::Status { backend, epoch, accessible, quarantined } => {
            out.push(3);
            put_str(out, backend);
            put_u64(out, *epoch);
            put_u64(out, *accessible);
            put_bool(out, *quarantined);
        }
        Response::Metrics { rendered } => {
            out.push(4);
            put_str(out, rendered);
        }
        Response::Error { kind, message } => {
            out.push(5);
            out.push(kind.code());
            put_str(out, message);
        }
        Response::Scrape { exposition } => {
            out.push(6);
            put_str(out, exposition);
        }
        Response::Tail { records } => {
            out.push(7);
            put_u32(out, records.len() as u32);
            for r in records {
                put_u64(out, (r.trace_id >> 64) as u64);
                put_u64(out, r.trace_id as u64);
                put_str(out, &r.verb);
                put_str(out, &r.backend);
                put_str(out, &r.outcome);
                put_u64(out, r.epoch);
                put_u64(out, r.decode_us);
                put_u64(out, r.queue_us);
                put_u64(out, r.execute_us);
                put_u64(out, r.total_us);
                put_u64(out, r.seq);
            }
        }
        Response::Analysis { exit_code, report_json, repairs, diff } => {
            out.push(8);
            out.push(*exit_code);
            put_str(out, report_json);
            put_u32(out, *repairs);
            put_opt_str(out, diff.as_deref());
        }
        other => unreachable!("unencodable response variant {other:?}"),
    }
}

fn decode_response(c: &mut Cursor<'_>) -> Result<Response, WireError> {
    match c.take_u8()? {
        1 => Ok(Response::Decision {
            granted: c.take_bool()?,
            nodes: c.take_u64()?,
            epoch: c.take_u64()?,
        }),
        2 => Ok(Response::Update {
            applied: c.take_bool()?,
            removed: c.take_u64()?,
            inserted: c.take_u64()?,
            sign_writes: c.take_u64()?,
            denied_nodes: c.take_u64()?,
            epoch: c.take_u64()?,
        }),
        3 => Ok(Response::Status {
            backend: c.take_str()?,
            epoch: c.take_u64()?,
            accessible: c.take_u64()?,
            quarantined: c.take_bool()?,
        }),
        4 => Ok(Response::Metrics { rendered: c.take_str()? }),
        5 => {
            let code = c.take_u8()?;
            let kind = ErrorKind::from_code(code).ok_or_else(|| {
                WireError::Malformed(format!("unknown error kind code {code}"))
            })?;
            Ok(Response::Error { kind, message: c.take_str()? })
        }
        6 => Ok(Response::Scrape { exposition: c.take_str()? }),
        7 => {
            let count = c.take_u32()? as usize;
            // Each record is ≥ 76 bytes on the wire; reject counts the
            // payload cannot possibly hold before allocating.
            if count > c.remaining() / 76 {
                return Err(WireError::Malformed(format!(
                    "tail declares {count} records, payload cannot hold them"
                )));
            }
            let mut records = Vec::with_capacity(count);
            for _ in 0..count {
                let hi = c.take_u64()?;
                let lo = c.take_u64()?;
                records.push(xac_obs::FlightRecord {
                    trace_id: (hi as u128) << 64 | lo as u128,
                    verb: c.take_str()?,
                    backend: c.take_str()?,
                    outcome: c.take_str()?,
                    epoch: c.take_u64()?,
                    decode_us: c.take_u64()?,
                    queue_us: c.take_u64()?,
                    execute_us: c.take_u64()?,
                    total_us: c.take_u64()?,
                    seq: c.take_u64()?,
                });
            }
            Ok(Response::Tail { records })
        }
        8 => Ok(Response::Analysis {
            exit_code: c.take_u8()?,
            report_json: c.take_str()?,
            repairs: c.take_u32()?,
            diff: c.take_opt_str()?,
        }),
        code => Err(WireError::Malformed(format!("unknown response code {code}"))),
    }
}

// ---- primitive writers/readers -----------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

/// Bounds-checked payload reader: every decode failure is a
/// [`WireError::Malformed`] naming what was being read.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(WireError::Malformed(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ))),
        }
    }

    fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn take_bool(&mut self) -> Result<bool, WireError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::Malformed(format!("bad bool byte {b}"))),
        }
    }

    fn take_str(&mut self) -> Result<String, WireError> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string is not UTF-8".into()))
    }

    fn take_opt_str(&mut self) -> Result<Option<String>, WireError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.take_str()?)),
            b => Err(WireError::Malformed(format!("bad option byte {b}"))),
        }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = frame.to_bytes();
        let mut r = &bytes[..];
        assert_eq!(read_frame(&mut r).unwrap(), frame);
        assert!(r.is_empty(), "frame must consume exactly its bytes");
    }

    #[test]
    fn every_frame_kind_round_trips() {
        round_trip(Frame::Hello { role: Role::Writer });
        round_trip(Frame::Welcome { backend: "native/xml".into(), epoch: 7 });
        round_trip(Frame::Request(Request::query("//patient/name"), None));
        round_trip(Frame::Request(Request::delete("//treatment"), None));
        round_trip(Frame::Request(
            Request::insert("//patient", "note", Some("x".into())),
            None,
        ));
        round_trip(Frame::Request(Request::insert("//patient", "note", None), None));
        round_trip(Frame::Request(Request::Status, None));
        round_trip(Frame::Request(Request::Metrics, None));
        round_trip(Frame::Request(Request::Scrape, None));
        round_trip(Frame::Request(Request::tail(32), None));
        round_trip(Frame::Request(
            Request::Analyze { deny_warnings: true, fix: false },
            None,
        ));
        round_trip(Frame::Request(
            Request::Analyze { deny_warnings: false, fix: true },
            None,
        ));
        let trace = WireTrace { trace_id: 0xfeed_beef_dead_cafe_0123 << 16 | 7, parent_span: 42 };
        round_trip(Frame::Request(Request::query("//psn"), Some(trace)));
        round_trip(Frame::Request(Request::Status, Some(trace)));
        round_trip(Frame::Response(Response::Decision { granted: true, nodes: 3, epoch: 1 }));
        round_trip(Frame::Response(Response::Update {
            applied: false,
            removed: 0,
            inserted: 0,
            sign_writes: 0,
            denied_nodes: 2,
            epoch: 9,
        }));
        round_trip(Frame::Response(Response::Status {
            backend: "rel/row".into(),
            epoch: 3,
            accessible: 11,
            quarantined: false,
        }));
        round_trip(Frame::Response(Response::Metrics { rendered: "reads 5\n".into() }));
        round_trip(Frame::Response(Response::Scrape {
            exposition: "# TYPE x counter\nx 1\n".into(),
        }));
        round_trip(Frame::Response(Response::Tail { records: vec![] }));
        round_trip(Frame::Response(Response::Tail {
            records: vec![xac_obs::FlightRecord {
                trace_id: 0xabcdu128 << 64 | 0x1234,
                verb: "query".into(),
                backend: "native/xml".into(),
                outcome: "granted".into(),
                epoch: 5,
                decode_us: 3,
                queue_us: 0,
                execute_us: 210,
                total_us: 215,
                seq: 17,
            }],
        }));
        round_trip(Frame::Response(Response::Analysis {
            exit_code: 0,
            report_json: "{\"diagnostics\": []}".into(),
            repairs: 0,
            diff: None,
        }));
        round_trip(Frame::Response(Response::Analysis {
            exit_code: 5,
            report_json: "{}".into(),
            repairs: 2,
            diff: Some("--- p.pol\n+++ p.pol (repaired)\n".into()),
        }));
        round_trip(Frame::Response(Response::Error {
            kind: ErrorKind::Quarantined,
            message: "read-only".into(),
        }));
        round_trip(Frame::Error { kind: ErrorKind::RateLimited, message: "slow down".into() });
        round_trip(Frame::Goodbye);
    }

    #[test]
    fn preamble_round_trips_and_rejects_impostors() {
        let mut buf = Vec::new();
        write_preamble(&mut buf).unwrap();
        assert_eq!(buf.len(), 6);
        assert_eq!(read_preamble(&mut &buf[..]), Ok(VERSION));

        // A v1 preamble still negotiates: v2's only addition is the
        // optional trailing trace context v1 clients never send.
        let mut v1 = Vec::new();
        write_preamble_versioned(&mut v1, 1).unwrap();
        assert_eq!(read_preamble(&mut &v1[..]), Ok(1));

        let mut http = &b"GET / HTTP/1.1\r\n"[..];
        assert_eq!(
            read_preamble(&mut http),
            Err(WireError::BadMagic(*b"GET "))
        );

        for bad in [0u16, 3, 99] {
            let mut future = Vec::from(MAGIC);
            future.extend_from_slice(&bad.to_be_bytes());
            assert_eq!(
                read_preamble(&mut &future[..]),
                Err(WireError::Version { got: bad })
            );
        }
    }

    #[test]
    fn truncated_trace_context_is_malformed_not_ignored() {
        // A full v2 request frame payload, then cut the 24-byte trace
        // trailer at every prefix length: each cut must be Malformed —
        // a partial context is never silently dropped.
        let trace = WireTrace { trace_id: 77, parent_span: 8 };
        let full = Frame::Request(Request::query("//a"), Some(trace)).encode_payload();
        let bare = Frame::Request(Request::query("//a"), None).encode_payload();
        assert_eq!(full.len(), bare.len() + 24);
        for cut in 1..24 {
            let payload = &full[..bare.len() + cut];
            match Frame::decode(tag::REQUEST, payload) {
                Err(WireError::Malformed(_)) => {}
                other => panic!("cut {cut}: expected Malformed, got {other:?}"),
            }
        }
        // The intact trailer round-trips, and its absence decodes None.
        assert_eq!(
            Frame::decode(tag::REQUEST, &full).unwrap(),
            Frame::Request(Request::query("//a"), Some(trace))
        );
        assert_eq!(
            Frame::decode(tag::REQUEST, &bare).unwrap(),
            Frame::Request(Request::query("//a"), None)
        );
    }

    #[test]
    fn wire_trace_context_round_trips() {
        let ctx = xac_obs::TraceContext::mint();
        let wt = WireTrace::from_context(ctx);
        assert_eq!(wt.to_context(), ctx);
    }

    #[test]
    fn oversized_header_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_be_bytes());
        bytes.push(tag::REQUEST);
        assert_eq!(
            read_frame(&mut &bytes[..]),
            Err(WireError::Oversized { declared: u32::MAX as usize })
        );
    }

    #[test]
    fn clean_close_vs_torn_frame_are_distinct() {
        assert_eq!(read_frame(&mut &[][..]), Err(WireError::Closed));
        let whole = Frame::Request(Request::query("//a"), None).to_bytes();
        for cut in 1..whole.len() {
            match read_frame(&mut &whole[..cut]) {
                Err(WireError::Malformed(_)) => {}
                other => panic!("cut at {cut}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_tags_codes_and_trailing_bytes_are_malformed() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 0);
        bytes.push(0x7f);
        assert_eq!(read_frame(&mut &bytes[..]), Err(WireError::UnknownTag(0x7f)));

        assert!(matches!(
            Frame::decode(tag::REQUEST, &[9]),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            Frame::decode(tag::ERROR, &[0, 0, 0, 0, 0]),
            Err(WireError::Malformed(_))
        ));

        let mut padded = Frame::Goodbye.encode_payload();
        padded.push(0);
        assert!(matches!(
            Frame::decode(tag::GOODBYE, &padded),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn hello_with_unknown_role_is_malformed_with_the_shared_message() {
        let mut payload = Vec::new();
        put_str(&mut payload, "root");
        let err = Frame::decode(tag::HELLO, &payload).unwrap_err();
        assert_eq!(
            err,
            WireError::Malformed(
                "system error: unknown role `root` (valid roles: reader, writer, admin)"
                    .into()
            )
        );
    }
}
