//! Per-role token-bucket rate limiting for the TCP server.
//!
//! One bucket per [`Role`](xac_serve::Role): every admitted request
//! takes one token, tokens refill continuously at the configured rate,
//! and the bucket holds at most `capacity` so an idle role can burst
//! but not hoard. An empty bucket answers the request with a typed
//! [`ErrorKind::RateLimited`](xac_serve::ErrorKind) error frame — the
//! connection stays up, only the request is refused.
//!
//! Time is passed in ([`TokenBucket::try_take_at`]) so the refill
//! arithmetic is testable without sleeping; the server calls
//! [`TokenBucket::try_take`], which samples the monotonic clock.

use std::time::{Duration, Instant};

/// A continuous-refill token bucket.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_sec: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket starting full, holding at most `capacity` tokens and
    /// refilling at `refill_per_sec` tokens per second.
    pub fn new(capacity: u32, refill_per_sec: u32) -> TokenBucket {
        TokenBucket {
            capacity: capacity as f64,
            tokens: capacity as f64,
            refill_per_sec: refill_per_sec as f64,
            last: Instant::now(),
        }
    }

    /// Take one token now; `false` when the bucket is empty.
    pub fn try_take(&mut self) -> bool {
        self.try_take_at(Instant::now())
    }

    /// Take one token at an explicit instant (test hook; `now` earlier
    /// than the last observed instant refills nothing).
    pub fn try_take_at(&mut self, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(self.last);
        self.last = now;
        self.tokens =
            (self.tokens + elapsed.as_secs_f64() * self.refill_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (floored; diagnostic only).
    pub fn available(&self) -> u32 {
        self.tokens as u32
    }
}

/// How long until one token will be available, for tests that want to
/// wait out a refill deterministically.
pub fn refill_wait(refill_per_sec: u32) -> Duration {
    Duration::from_secs_f64(1.0 / refill_per_sec.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_drains_then_refills_continuously() {
        let start = Instant::now();
        let mut b = TokenBucket::new(3, 10);
        assert!(b.try_take_at(start));
        assert!(b.try_take_at(start));
        assert!(b.try_take_at(start));
        assert!(!b.try_take_at(start), "capacity exhausted");
        // 100ms at 10 tokens/sec refills exactly one token.
        let later = start + Duration::from_millis(100);
        assert!(b.try_take_at(later));
        assert!(!b.try_take_at(later));
    }

    #[test]
    fn refill_caps_at_capacity() {
        let start = Instant::now();
        let mut b = TokenBucket::new(2, 1000);
        assert!(b.try_take_at(start));
        assert!(b.try_take_at(start));
        // A long idle period must not bank more than `capacity`.
        let much_later = start + Duration::from_secs(60);
        assert!(b.try_take_at(much_later));
        assert!(b.try_take_at(much_later));
        assert!(!b.try_take_at(much_later));
    }

    #[test]
    fn time_never_runs_backwards() {
        let start = Instant::now();
        let mut b = TokenBucket::new(1, 1);
        assert!(b.try_take_at(start + Duration::from_secs(5)));
        // An earlier instant refills nothing (saturating elapsed).
        assert!(!b.try_take_at(start));
    }
}
