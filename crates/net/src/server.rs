//! Multi-threaded TCP server fronting a [`ServeEngine`].
//!
//! One accept thread polls a non-blocking listener; each admitted
//! connection gets its own session thread running the state machine
//! documented in `DESIGN.md` §4h:
//!
//! ```text
//! preamble → hello → welcome → (request → response|error)* → goodbye/close
//! ```
//!
//! The server never re-implements engine semantics: after admission and
//! rate limiting every request is one [`ServeEngine::serve_as`] call,
//! so a response over the wire is the same [`Response`] value the
//! in-process path produces (the loopback differential suite holds the
//! two byte-identical).
//!
//! Defense lines, outermost first:
//!
//! 1. **Admission** — at most `max_connections` concurrent sessions; a
//!    connection beyond the cap is answered with a typed
//!    [`ErrorKind::RateLimited`] error frame and closed.
//! 2. **Read timeout** — every session read is bounded; a stalled or
//!    slow-writing client gets a typed [`ErrorKind::Protocol`] error
//!    frame and the session ends. No client can hold a thread forever.
//! 3. **Frame cap** — oversized declared lengths are refused from the
//!    header ([`wire::MAX_FRAME`]) before any allocation.
//! 4. **Rate limiting** — one token bucket per role; an empty bucket
//!    refuses the request (typed `RateLimited` frame) but keeps the
//!    session open.
//!
//! Shutdown drains: [`NetServer::shutdown`] stops the accept loop, then
//! half-closes every session's *read* side — an in-flight request still
//! writes its response — and waits for the sessions to finish.

use crate::limiter::TokenBucket;
use crate::wire::{self, Frame, WireError};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xac_serve::{ErrorKind, Request, Response, Role, ServeEngine};

/// Tunables for [`NetServer::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 picks a free port (read it back from
    /// [`NetServer::local_addr`]).
    pub listen: String,
    /// Concurrent-session cap (admission control).
    pub max_connections: usize,
    /// Per-read timeout; a client silent mid-frame for longer is cut
    /// off with a typed protocol error.
    pub read_timeout: Duration,
    /// Requests per second allowed per role (bucket capacity equals the
    /// rate, so a full burst of one second is admitted). `None`
    /// disables rate limiting.
    pub rate_limit: Option<u32>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            listen: "127.0.0.1:0".into(),
            max_connections: 64,
            read_timeout: Duration::from_secs(5),
            rate_limit: None,
        }
    }
}

/// State shared between the accept loop and the session threads.
struct Shared {
    engine: Arc<ServeEngine>,
    config: ServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    next_session: AtomicU64,
    /// Socket clones of live sessions, for the drain's read-side
    /// half-close.
    sessions: Mutex<HashMap<u64, TcpStream>>,
    /// Per-role token buckets (present iff rate limiting is on).
    buckets: Mutex<HashMap<&'static str, TokenBucket>>,
}

impl Shared {
    fn counter(name: &str) {
        xac_obs::counter(name).inc();
    }

    /// Admit one request for `role`, refilling from the monotonic
    /// clock. `true` when no limit is configured.
    fn admit_request(&self, role: Role) -> bool {
        let Some(rate) = self.config.rate_limit else { return true };
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        buckets
            .entry(role.name())
            .or_insert_with(|| TokenBucket::new(rate, rate))
            .try_take()
    }
}

/// A running TCP server. Dropping it shuts it down (gracefully, same as
/// [`NetServer::shutdown`]).
pub struct NetServer {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl NetServer {
    /// Bind `config.listen` and start accepting. The engine is shared —
    /// in-process callers may keep using it concurrently.
    pub fn start(engine: Arc<ServeEngine>, config: ServerConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            config,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            next_session: AtomicU64::new(0),
            sessions: Mutex::new(HashMap::new()),
            buckets: Mutex::new(HashMap::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("xac-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(NetServer { shared, accept_thread: Some(accept_thread), local_addr })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live session count.
    pub fn active_sessions(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Graceful shutdown: stop accepting, half-close every session's
    /// read side (in-flight responses still go out), wait for the
    /// sessions to drain (bounded by the read timeout plus slack).
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        {
            let sessions = self.shared.sessions.lock().unwrap_or_else(|e| e.into_inner());
            for stream in sessions.values() {
                // Read side only: a session blocked in read wakes with
                // EOF; one mid-serve still writes its response.
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        let deadline =
            Instant::now() + self.shared.config.read_timeout + Duration::from_secs(1);
        while self.shared.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown_inner();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                Shared::counter("xac_net_connections_total");
                if shared.active.load(Ordering::Acquire) >= shared.config.max_connections {
                    Shared::counter("xac_net_rejected_total{reason=\"admission\"}");
                    refuse(stream, "connection limit reached, try again later");
                    continue;
                }
                let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
                shared.active.fetch_add(1, Ordering::AcqRel);
                if let Ok(clone) = stream.try_clone() {
                    shared
                        .sessions
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(id, clone);
                }
                let session_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("xac-net-session-{id}"))
                    .spawn(move || {
                        session(stream, &session_shared);
                        session_shared
                            .sessions
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .remove(&id);
                        session_shared.active.fetch_sub(1, Ordering::AcqRel);
                    });
                if spawned.is_err() {
                    // Thread spawn failed: undo the registration.
                    shared
                        .sessions
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .remove(&id);
                    shared.active.fetch_sub(1, Ordering::AcqRel);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Refuse a connection pre-handshake with a typed error frame. Best
/// effort — the client may already be gone.
fn refuse(mut stream: TcpStream, message: &str) {
    let frame = Frame::Error { kind: ErrorKind::RateLimited, message: message.into() };
    let _ = stream.write_all(&frame.to_bytes());
    linger_close(stream);
}

/// Lingering close: half-close the write side, then briefly drain
/// whatever the peer already sent. Closing a socket with unread bytes
/// in its receive buffer makes TCP reset the connection, which can
/// destroy an error frame in flight before the peer reads it.
fn linger_close(mut stream: TcpStream) {
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let deadline = Instant::now() + Duration::from_millis(250);
    let mut sink = [0u8; 4096];
    while Instant::now() < deadline {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Send a typed error frame, best effort (the peer may have vanished).
fn send_error(stream: &mut TcpStream, kind: ErrorKind, message: String) {
    let _ = wire::write_frame(stream, &Frame::Error { kind, message });
}

/// Flight-record one wire request: phase breakdown into the always-on
/// recorder, plus the per-verb latency histogram (exemplared with the
/// request's trace id) that `Request::Scrape` exposes and `xmlac top`
/// renders. `response` is `None` for rate-limit refusals, which never
/// reach the engine.
#[allow(clippy::too_many_arguments)]
fn record_flight(
    shared: &Shared,
    req: &Request,
    trace_id: u128,
    decode_dur: Duration,
    queue_dur: Duration,
    execute_dur: Option<Duration>,
    served: Instant,
    response: Option<&Response>,
) {
    let outcome = match response {
        None => "error:rate_limited".to_string(),
        Some(Response::Decision { granted: true, .. }) => "granted".to_string(),
        Some(Response::Decision { granted: false, .. }) => "denied".to_string(),
        Some(Response::Update { applied: true, .. }) => "applied".to_string(),
        Some(Response::Update { applied: false, .. }) => "refused".to_string(),
        Some(Response::Error { kind, .. }) => format!("error:{kind}"),
        Some(_) => "ok".to_string(),
    };
    let total_us = (decode_dur + served.elapsed()).as_micros() as u64;
    xac_obs::flight_recorder().record(xac_obs::FlightRecord {
        trace_id,
        verb: req.verb().to_string(),
        backend: shared.engine.backend_name().to_string(),
        outcome,
        epoch: shared.engine.epoch(),
        decode_us: decode_dur.as_micros() as u64,
        queue_us: queue_dur.as_micros() as u64,
        execute_us: execute_dur.unwrap_or_default().as_micros() as u64,
        total_us,
        seq: 0,
    });
    let key = xac_obs::sample_key("xac_net_request_us", &[("verb", req.verb())]);
    xac_obs::histogram(&key).observe_with_exemplar(total_us, trace_id);
}

/// One session: handshake, then the request/response loop, then a
/// lingering close so the last frame written always reaches the peer.
fn session(stream: TcpStream, shared: &Shared) {
    let mut stream = stream;
    run_session(&mut stream, shared);
    linger_close(stream);
}

/// The session state machine. Every exit path either answered with a
/// typed error frame or saw the peer leave first — the session never
/// panics and never blocks unboundedly (all reads carry the configured
/// timeout).
fn run_session(stream: &mut TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_nodelay(true);

    // Preamble: six raw bytes before any frame.
    if let Err(e) = wire::read_preamble(stream) {
        Shared::counter("xac_net_rejected_total{reason=\"preamble\"}");
        send_error(stream, ErrorKind::Protocol, e.to_string());
        return;
    }

    // Handshake: exactly one hello, answered with welcome.
    let role = match wire::read_frame(stream) {
        Ok(Frame::Hello { role }) => role,
        Ok(other) => {
            Shared::counter("xac_net_rejected_total{reason=\"handshake\"}");
            send_error(
                stream,
                ErrorKind::Protocol,
                WireError::Unexpected { wanted: "hello", got: other.kind_name() }.to_string(),
            );
            return;
        }
        Err(e) => {
            // Covers unknown roles (decoded as Malformed with the shared
            // `unknown role` message), torn frames, and garbage.
            Shared::counter("xac_net_rejected_total{reason=\"handshake\"}");
            send_error(stream, ErrorKind::Protocol, e.to_string());
            return;
        }
    };
    let welcome = Frame::Welcome {
        backend: shared.engine.backend_name().to_string(),
        epoch: shared.engine.epoch(),
    };
    if wire::write_frame(stream, &welcome).is_err() {
        return;
    }
    Shared::counter(&format!("xac_net_sessions_total{{role=\"{}\"}}", role.name()));

    loop {
        match wire::read_frame_timed(stream) {
            Ok((Frame::Request(req, trace), decode_dur)) => {
                // Re-enter the client's trace context (if the frame
                // carried one) so every span and record below shares
                // its trace id. The decode span is backfilled — the
                // context only exists once decode has finished.
                let _ctx = trace.map(|t| xac_obs::trace::enter(t.to_context()));
                xac_obs::trace::record_span("net.server_decode", decode_dur);
                let trace_id = trace.map_or(0, |t| t.trace_id);
                let served = Instant::now();
                let queue_dur;
                {
                    let _span = xac_obs::span("net.queue_wait");
                    let queue_start = Instant::now();
                    let admitted = shared.admit_request(role);
                    queue_dur = queue_start.elapsed();
                    if !admitted {
                        Shared::counter("xac_net_rejected_total{reason=\"rate_limit\"}");
                        record_flight(
                            shared, &req, trace_id, decode_dur, queue_dur, None, served, None,
                        );
                        send_error(
                            stream,
                            ErrorKind::RateLimited,
                            format!(
                                "role `{role}` exceeded {} requests/sec",
                                shared.config.rate_limit.unwrap_or(0)
                            ),
                        );
                        continue;
                    }
                }
                Shared::counter(&format!(
                    "xac_net_requests_total{{verb=\"{}\"}}",
                    req.verb()
                ));
                let execute_start = Instant::now();
                let response = shared.engine.serve_as(role, &req);
                let execute_dur = execute_start.elapsed();
                if matches!(response, Response::Error { .. }) {
                    Shared::counter("xac_net_request_errors_total");
                }
                let sent = wire::write_frame(stream, &Frame::Response(response.clone()));
                record_flight(
                    shared,
                    &req,
                    trace_id,
                    decode_dur,
                    queue_dur,
                    Some(execute_dur),
                    served,
                    Some(&response),
                );
                if sent.is_err() {
                    return;
                }
            }
            Ok((Frame::Goodbye, _)) => return,
            Ok((other, _)) => {
                send_error(
                    stream,
                    ErrorKind::Protocol,
                    WireError::Unexpected { wanted: "request", got: other.kind_name() }
                        .to_string(),
                );
                return;
            }
            // Clean close between frames: the drain path (read side
            // half-closed by shutdown) and impatient clients alike.
            Err(WireError::Closed) => return,
            Err(e) if e.is_timeout() => {
                if shared.shutdown.load(Ordering::Acquire) {
                    send_error(
                        stream,
                        ErrorKind::Shutdown,
                        "server is draining for shutdown".into(),
                    );
                } else {
                    Shared::counter("xac_net_rejected_total{reason=\"timeout\"}");
                    send_error(
                        stream,
                        ErrorKind::Protocol,
                        format!(
                            "read timed out after {:?} mid-session",
                            shared.config.read_timeout
                        ),
                    );
                }
                return;
            }
            Err(e @ (WireError::Oversized { .. }
            | WireError::UnknownTag(_)
            | WireError::Malformed(_))) => {
                Shared::counter("xac_net_rejected_total{reason=\"protocol\"}");
                send_error(stream, ErrorKind::Protocol, e.to_string());
                return;
            }
            Err(_) => return,
        }
    }
}
