//! `xmlac` — command-line front end to the access-control system.
//!
//! ```text
//! xmlac check       --schema h.dtd --doc d.xml
//! xmlac optimize    --policy p.pol [--schema h.dtd]
//! xmlac shred       --schema h.dtd --doc d.xml [--out d.sql]
//! xmlac annotate    --schema h.dtd --policy p.pol --doc d.xml [--backend native|row|column]
//! xmlac query       --schema h.dtd --policy p.pol --doc d.xml --query "//patient" [...]
//! xmlac update      --schema h.dtd --policy p.pol --doc d.xml --delete "//treatment" [--query "//patient"]
//! xmlac serve       --schema h.dtd --policy p.pol --doc d.xml [--listen 127.0.0.1:0] \
//!                   [--data-dir DIR] [--wal sync|nosync] \
//!                   [--addr-file F] [--max-conns N] [--read-timeout-ms N] [--rate-limit N] [--linger-ms N]
//! xmlac client      --addr HOST:PORT [--role reader|writer|admin] \
//!                   [--query XPATH]... [--delete XPATH] [--insert PARENT:NAME[:TEXT]] [status] [metrics]
//! xmlac serve-bench --schema h.dtd --policy p.pol --doc d.xml --query "//patient/name" \
//!                   [--readers 4] [--reads 200] [--delete XPATH] [--fault-plan SPEC|seed:N[xK]] \
//!                   [--data-dir DIR] [--wal sync|nosync] \
//!                   [--net CLIENTS] [--out BENCH_net.json]
//! xmlac analyze     --policy p.pol [--schema h.dtd] [--doc d.xml] \
//!                   [--format text|json] [--deny warn] [--audit-updates N]
//! ```
//!
//! Schemas are DTD files (the Figure 1 subset), policies use the
//! `xac-policy` text format, documents are plain XML.
//!
//! Exit codes: 0 success, 2 usage or system error, 3 the serving engine
//! ended in read-only quarantine, 4 an injected fault surfaced without
//! being absorbed by the degradation ladder, 5 `analyze` found errors,
//! 6 `analyze --deny warn` found warnings, 7 the server refused a
//! request because the session's role may not issue it, 8 the durable
//! storage layer failed (WAL/page I/O, checksum, or a backend-tag
//! mismatch against an existing data dir).
//!
//! `serve` and `serve-bench` take `--data-dir DIR` to run the engine on
//! the durable storage layer (4 KB pager + write-ahead log): guarded
//! updates commit through the WAL, rollback replays the log, and a
//! restart over the same dir recovers the exact committed state.
//! `--wal sync|nosync` picks whether each commit fsyncs (default
//! `sync`).

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xac_core::{AnnotateMode, Backend, System};
use xac_net::{split_net_plan, NetClient, NetServer, ServerConfig};
use xac_policy::Policy;
use xac_serve::{BackendKind, DurabilityConfig, ErrorKind, Request, Response, Role, ServeEngine};
use xac_xml::{parse_dtd, Document, Schema};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("xmlac: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}

/// A CLI failure with the exit code it maps to. Plain `String` errors
/// (usage, I/O, parse) convert at code 2; structured core errors keep
/// their classification so scripts can branch on quarantine (3) vs an
/// unabsorbed injected fault (4) vs a role refusal (7) vs a storage
/// failure (8).
struct CliError {
    message: String,
    code: u8,
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError { message, code: 2 }
    }
}

impl From<xac_core::Error> for CliError {
    fn from(e: xac_core::Error) -> Self {
        let code = match &e {
            xac_core::Error::Quarantined { .. } => 3,
            xac_core::Error::FaultInjected { .. } => 4,
            xac_core::Error::Storage { .. } => 8,
            _ => 2,
        };
        CliError { message: e.to_string(), code }
    }
}

/// The exit code a typed response error maps to (the wire and
/// in-process paths share [`ErrorKind`], so this is the whole mapping).
fn error_kind_code(kind: ErrorKind) -> u8 {
    match kind {
        ErrorKind::Quarantined => 3,
        ErrorKind::FaultInjected => 4,
        ErrorKind::RoleDenied => 7,
        _ => 2,
    }
}

type CliResult<T> = Result<T, CliError>;

struct Args {
    command: String,
    options: BTreeMap<String, String>,
    /// `--query` may repeat.
    queries: Vec<String>,
    /// Bare (non-flag) tokens. Only the `obs`, `vm` and `client`
    /// commands take them (their verbs); everywhere else they are
    /// rejected with the historical usage error.
    positionals: Vec<String>,
}

fn parse_args() -> CliResult<Args> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut options = BTreeMap::new();
    let mut queries = Vec::new();
    let mut positionals = Vec::new();
    while let Some(flag) = argv.next() {
        let Some(key) = flag.strip_prefix("--") else {
            positionals.push(flag);
            continue;
        };
        let key = key.to_string();
        // Presence-only switches: they never consume the next token.
        if matches!(key.as_str(), "fix" | "dry-run") {
            options.insert(key, String::new());
            continue;
        }
        let value = argv
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        if key == "query" {
            queries.push(value);
        } else {
            options.insert(key, value);
        }
    }
    Ok(Args { command, options, queries, positionals })
}

fn usage() -> String {
    "usage: xmlac <check|optimize|shred|annotate|query|update|view|audit|analyze|serve|client|top|serve-bench|obs|vm> \
     [--schema F] [--policy F] [--doc F] [--backend native|row|column] \
     [--annotate-mode paper|batched|compiled] \
     [--query XPATH]... [--delete XPATH] [--insert PARENT:NAME[:TEXT]] \
     [--mode prune|promote] [--readers N] [--reads N] [--out F] \
     [--fault-plan SPEC|seed:N[xK]] \
     [--trace-out F] [--metrics-out F]\n\
     serve   --schema F --policy F --doc F [--listen ADDR] [--addr-file F] \
     [--data-dir DIR] [--wal sync|nosync] \
     [--max-conns N] [--read-timeout-ms N] [--rate-limit N] [--linger-ms N]\n\
     client  --addr HOST:PORT [--role reader|writer|admin] \
     [--query XPATH]... [--delete XPATH] [--insert PARENT:NAME[:TEXT]] \
     [--last N] [--scrape-out F] [status] [metrics] [scrape] [tail] [analyze]\n\
     top     --addr HOST:PORT [--interval-ms N] [--iterations N]\n\
     serve-bench ... [--net CLIENTS] [--out F]\n\
     analyze --policy F [--schema F] [--doc F] [--format text|json] \
     [--deny warn] [--audit-updates N] [--out F] \
     [--fix | --dry-run] [--fix-out F] [--fix-level warn|info]\n\
     obs dump  --schema F --policy F --doc F [--query XPATH]... [--delete XPATH] \
     [--out F] [--trace-out F]\n\
     obs check [--metrics F] [--trace F]\n\
     vm dump   --policy F --schema F [--out F]"
        .to_string()
}

impl Args {
    fn required(&self, key: &str) -> CliResult<&str> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing --{key}\n{}", usage()).into())
    }

    fn schema(&self) -> CliResult<Schema> {
        let path = self.required("schema")?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read schema `{path}`: {e}"))?;
        parse_dtd(&text).map_err(|e| format!("schema `{path}`: {e}").into())
    }

    fn policy(&self) -> CliResult<Policy> {
        let path = self.required("policy")?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read policy `{path}`: {e}"))?;
        Policy::parse(&text).map_err(|e| format!("policy `{path}`: {e}").into())
    }

    fn doc(&self) -> CliResult<Document> {
        let path = self.required("doc")?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read document `{path}`: {e}"))?;
        Document::parse_str(&text).map_err(|e| format!("document `{path}`: {e}").into())
    }

    fn annotate_mode(&self) -> CliResult<AnnotateMode> {
        match self.options.get("annotate-mode") {
            None => Ok(AnnotateMode::default()),
            // The structured core error lists the valid modes.
            Some(value) => AnnotateMode::parse(value).map_err(CliError::from),
        }
    }

    fn backend_kind(&self) -> CliResult<BackendKind> {
        let spelling = self.options.get("backend").map(String::as_str).unwrap_or("native");
        BackendKind::parse(spelling).map_err(CliError::from)
    }

    fn backend(&self) -> CliResult<Box<dyn Backend + Send>> {
        Ok(self.backend_kind()?.make(self.annotate_mode()?))
    }

    fn count(&self, key: &str, default: usize) -> CliResult<usize> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} needs a positive integer, found `{v}`").into()),
        }
    }

    fn build_system(&self) -> CliResult<System> {
        System::builder(self.schema()?, self.policy()?, self.doc()?)
            .annotate_mode(self.annotate_mode()?)
            .build()
            .map_err(CliError::from)
    }

    /// `--data-dir DIR [--wal sync|nosync]`: the durable storage
    /// configuration, or `None` to serve from memory. `--wal` without
    /// `--data-dir` is a usage error (there is no WAL to configure).
    fn durability(&self) -> CliResult<Option<DurabilityConfig>> {
        let Some(dir) = self.options.get("data-dir") else {
            if self.options.contains_key("wal") {
                return Err("--wal needs --data-dir".to_string().into());
            }
            return Ok(None);
        };
        let mut config = DurabilityConfig::new(dir);
        match self.options.get("wal").map(String::as_str) {
            None | Some("sync") => {}
            Some("nosync") => config.sync = false,
            Some(other) => {
                return Err(format!("--wal takes `sync` or `nosync`, found `{other}`").into())
            }
        }
        Ok(Some(config))
    }

    /// `--fault-plan`, split into the backend-side half (armed on the
    /// engine) and the client-side network half.
    fn fault_plans(&self) -> CliResult<(xac_core::FaultPlan, xac_core::FaultPlan)> {
        match self.options.get("fault-plan") {
            Some(spec) => {
                let plan = xac_serve::faults::fault_plan_from_arg(spec)
                    .map_err(|e| format!("--fault-plan `{spec}`: {e}"))?;
                Ok(split_net_plan(&plan))
            }
            None => Ok((xac_core::FaultPlan::new(), xac_core::FaultPlan::new())),
        }
    }
}

fn run() -> CliResult<()> {
    let args = parse_args()?;
    if args.command != "obs" && args.command != "vm" && args.command != "client" {
        if let Some(stray) = args.positionals.first() {
            return Err(format!("expected a --flag, found `{stray}`").into());
        }
    }
    match args.command.as_str() {
        "check" => check(&args),
        "optimize" => optimize(&args),
        "shred" => shred(&args),
        "annotate" => annotate(&args),
        "query" => query(&args),
        "update" => update(&args),
        "view" => view(&args),
        "audit" => audit(&args),
        "analyze" => analyze(&args),
        "serve" => serve(&args),
        "client" => client(&args),
        "top" => top(&args),
        "serve-bench" => serve_bench(&args),
        "obs" => obs(&args),
        "vm" => vm(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage()).into()),
    }
}

fn check(args: &Args) -> CliResult<()> {
    let schema = args.schema()?;
    let doc = args.doc()?;
    schema.validate(&doc).map_err(|e| e.to_string())?;
    println!(
        "ok: {} elements, {} nodes, height {}, conforms to schema rooted at <{}>",
        doc.element_count(),
        doc.len(),
        doc.height(),
        schema.root()
    );
    Ok(())
}

fn optimize(args: &Args) -> CliResult<()> {
    let policy = args.policy()?;
    let report = match args.schema() {
        Ok(schema) => xac_core::optimizer::optimize_with_schema(&policy, &schema),
        Err(_) => xac_core::optimizer::optimize(&policy),
    };
    if report.removed.is_empty() {
        eprintln!("# no redundant rules");
    } else {
        eprintln!("# removed: {}", report.removed.join(", "));
    }
    print!("{}", report.optimized.to_text());
    Ok(())
}

fn shred(args: &Args) -> CliResult<()> {
    let schema = args.schema()?;
    let doc = args.doc()?;
    let mapping = xac_shrex::Mapping::derive(&schema).map_err(|e| e.to_string())?;
    let sql = xac_shrex::shred_to_sql(&doc, &mapping, '-').map_err(|e| e.to_string())?;
    let output = format!("{}{}", mapping.ddl(), sql);
    match args.options.get("out") {
        Some(path) => {
            std::fs::write(path, &output).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {} bytes to {path}", output.len());
        }
        None => print!("{output}"),
    }
    Ok(())
}

fn build_system(args: &Args) -> CliResult<(System, Box<dyn Backend + Send>)> {
    let system = args.build_system()?;
    let mut backend = args.backend()?;
    system.load(backend.as_mut()).map_err(|e| e.to_string())?;
    system.annotate(backend.as_mut()).map_err(|e| e.to_string())?;
    Ok((system, backend))
}

fn annotate(args: &Args) -> CliResult<()> {
    let (system, mut backend) = build_system(args)?;
    let accessible = backend.accessible_count().map_err(|e| e.to_string())?;
    let total = system.prepared().doc.element_count();
    println!(
        "annotated on {}: {accessible}/{total} nodes accessible ({:.1}%), policy `{}` rules after optimization: {}",
        backend.name(),
        100.0 * accessible as f64 / total as f64,
        system.original_policy().len(),
        system.policy().len(),
    );
    Ok(())
}

fn query(args: &Args) -> CliResult<()> {
    if args.queries.is_empty() {
        return Err(format!("query needs at least one --query\n{}", usage()).into());
    }
    let (system, mut backend) = build_system(args)?;
    let mut denied = 0;
    for q in &args.queries {
        let d = system.request(backend.as_mut(), q).map_err(|e| e.to_string())?;
        println!(
            "{:<7} {} ({} nodes)",
            if d.granted() { "GRANTED" } else { "DENIED" },
            q,
            d.node_count()
        );
        if !d.granted() {
            denied += 1;
        }
    }
    if denied > 0 {
        eprintln!("# {denied}/{} requests denied", args.queries.len());
    }
    Ok(())
}

fn update(args: &Args) -> CliResult<()> {
    let (system, mut backend) = build_system(args)?;
    if let Some(expr) = args.options.get("delete") {
        let path = xac_xpath::parse(expr).map_err(|e| e.to_string())?;
        let outcome = system
            .apply_update(backend.as_mut(), &path)
            .map_err(|e| e.to_string())?;
        println!(
            "deleted {} elements; triggered rules {:?}; {} sign writes",
            outcome.removed_elements,
            outcome.plan.triggered_ids(),
            outcome.sign_writes
        );
    }
    if let Some(spec) = args.options.get("insert") {
        let (parent, name, text) = parse_insert_spec(spec)?;
        let path = xac_xpath::parse(parent).map_err(|e| e.to_string())?;
        let outcome = system
            .apply_insert(backend.as_mut(), &path, name, text)
            .map_err(|e| e.to_string())?;
        println!(
            "inserted {} <{name}> elements; triggered rules {:?}; {} sign writes",
            outcome.inserted_elements,
            outcome.plan.triggered_ids(),
            outcome.sign_writes
        );
    }
    if !args.options.contains_key("delete") && !args.options.contains_key("insert") {
        return Err(format!("update needs --delete and/or --insert\n{}", usage()).into());
    }
    for q in &args.queries {
        let d = system.request(backend.as_mut(), q).map_err(|e| e.to_string())?;
        println!(
            "{:<7} {} ({} nodes)",
            if d.granted() { "GRANTED" } else { "DENIED" },
            q,
            d.node_count()
        );
    }
    Ok(())
}

/// `PARENT_XPATH:NAME[:TEXT]`, shared by `update --insert` and
/// `client --insert`.
fn parse_insert_spec(spec: &str) -> CliResult<(&str, &str, Option<&str>)> {
    let mut parts = spec.splitn(3, ':');
    let parent = parts
        .next()
        .filter(|s| !s.is_empty())
        .ok_or("--insert takes PARENT_XPATH:NAME[:TEXT]".to_string())?;
    let name = parts
        .next()
        .filter(|s| !s.is_empty())
        .ok_or("--insert takes PARENT_XPATH:NAME[:TEXT]".to_string())?;
    Ok((parent, name, parts.next()))
}

fn view(args: &Args) -> CliResult<()> {
    let system = args.build_system()?;
    let mode = match args.options.get("mode").map(String::as_str).unwrap_or("prune") {
        "prune" => xac_core::ViewMode::Prune,
        "promote" => xac_core::ViewMode::Promote,
        other => return Err(format!("unknown view mode `{other}` (prune|promote)").into()),
    };
    let view = system.security_view(mode);
    let xml = view.to_pretty_xml();
    match args.options.get("out") {
        Some(path) => {
            std::fs::write(path, &xml).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!(
                "wrote security view ({} of {} elements) to {path}",
                view.element_count(),
                system.prepared().doc.element_count()
            );
        }
        None => print!("{xml}"),
    }
    Ok(())
}

fn audit(args: &Args) -> CliResult<()> {
    let schema = args.schema()?;
    let policy = args.policy()?;
    let doc = args.doc()?;
    schema.validate(&doc).map_err(|e| e.to_string())?;
    let report = xac_policy::analyze(&doc, &policy);
    println!("{:<6} {:<6} {:>8} {:>10}", "rule", "effect", "scope", "exclusive");
    for r in &report.rules {
        println!("{:<6} {:<6} {:>8} {:>10}", r.id, r.effect.to_string(), r.scope, r.exclusive);
    }
    println!(
        "nodes: {} total, {} accessible ({:.1}%), {} conflicted, {} defaulted",
        report.total_nodes,
        report.accessible,
        100.0 * report.coverage(),
        report.conflicted,
        report.defaulted
    );
    if !report.dead_rules().is_empty() {
        println!("dead on this document: {}", report.dead_rules().join(", "));
    }
    Ok(())
}

/// Static policy verification (`xac-analyze`).
///
/// Runs the D1–D5 diagnostic passes over `--policy`, schema-aware when
/// `--schema` is given, and additionally replays the dynamic
/// trigger-soundness audit against `--doc` on all three backends when a
/// document is supplied. Exit code 0 when clean, 5 when any error-level
/// diagnostic is present, 6 when `--deny warn` is set and warnings
/// remain.
fn analyze(args: &Args) -> CliResult<()> {
    let policy_path = args.required("policy")?.to_string();
    let source = std::fs::read_to_string(&policy_path)
        .map_err(|e| format!("cannot read policy `{policy_path}`: {e}"))?;
    let policy = Policy::parse(&source)
        .map_err(|e| format!("policy `{policy_path}`: {e}"))?;
    let schema = match args.options.get("schema") {
        Some(_) => Some(args.schema()?),
        None => None,
    };
    let deny_warnings = match args.options.get("deny").map(String::as_str) {
        None => false,
        Some("warn") | Some("warnings") => true,
        Some(other) => return Err(format!("--deny takes `warn`, found `{other}`").into()),
    };
    let format = args.options.get("format").map(String::as_str).unwrap_or("text");
    if format != "text" && format != "json" {
        return Err(format!("--format takes text|json, found `{format}`").into());
    }
    let fix = args.options.contains_key("fix");
    let dry_run = args.options.contains_key("dry-run");
    if fix && dry_run {
        return Err("--fix and --dry-run are mutually exclusive".to_string().into());
    }
    if fix || dry_run {
        return analyze_fix(args, &policy_path, source, policy, schema, deny_warnings, format, dry_run);
    }
    let mut analyzer = xac_analyze::Analyzer::new(&policy)
        .with_source(&source)
        .named(&policy_path, args.options.get("schema").cloned());
    if let Some(s) = &schema {
        analyzer = analyzer.with_schema(s);
    }
    if args.options.contains_key("audit-updates") {
        analyzer = analyzer.audit_updates(args.count("audit-updates", 16)?);
    }
    let report = match args.options.get("doc") {
        Some(_) => {
            if schema.is_none() {
                return Err("analyze --doc needs --schema (the dynamic audit \
                            replays updates through the full system)"
                    .to_string()
                    .into());
            }
            analyzer.run_with_document(&args.doc()?)
        }
        None => analyzer.run(),
    };
    let rendered = match format {
        "json" => report.to_json(),
        _ => report.to_text(),
    };
    match args.options.get("out") {
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote report to {path}");
        }
        None => print!("{rendered}"),
    }
    analyze_exit(&report, deny_warnings, &policy_path)
}

/// Map a report onto the `analyze` exit-code contract (0 clean, 5
/// errors, 6 warnings under `--deny warn`).
fn analyze_exit(
    report: &xac_analyze::Report,
    deny_warnings: bool,
    policy_path: &str,
) -> CliResult<()> {
    match report.exit_code(deny_warnings) {
        0 => Ok(()),
        code => Err(CliError {
            message: format!(
                "policy `{policy_path}`: {} error(s), {} warning(s){}",
                report.count(xac_analyze::Severity::Error),
                report.count(xac_analyze::Severity::Warning),
                if code == 6 { " (denied by --deny warn)" } else { "" }
            ),
            code,
        }),
    }
}

/// `analyze --fix` / `--dry-run`: synthesize verified repairs on top of
/// the incremental engine, then either rewrite the policy source
/// (`--fix`, honouring `--fix-out`) or print the unified diff and leave
/// the file untouched (`--dry-run`).
///
/// With `--doc` every candidate edit is differentially annotated on all
/// three backends and must keep the sign state byte-identical outside
/// the edit's own element types. The exit code reflects the policy left
/// on disk: post-repair for `--fix`, pre-repair for `--dry-run`.
#[allow(clippy::too_many_arguments)]
fn analyze_fix(
    args: &Args,
    policy_path: &str,
    source: String,
    policy: Policy,
    schema: Option<Schema>,
    deny_warnings: bool,
    format: &str,
    dry_run: bool,
) -> CliResult<()> {
    let doc = match args.options.get("doc") {
        Some(_) => {
            if schema.is_none() {
                return Err("analyze --doc needs --schema (repairs are verified \
                            by differential annotation over the full system)"
                    .to_string()
                    .into());
            }
            Some(args.doc()?)
        }
        None => None,
    };
    let fix_infos = match args.options.get("fix-level").map(String::as_str) {
        None | Some("warn") => false,
        Some("info") => true,
        Some(other) => {
            return Err(format!("--fix-level takes warn|info, found `{other}`").into())
        }
    };
    let mut engine = xac_analyze::IncrementalAnalyzer::new(policy, schema.as_ref())
        .named(policy_path, args.options.get("schema").cloned());
    if args.options.contains_key("audit-updates") {
        engine = engine.audit_updates(args.count("audit-updates", 16)?);
    }
    let before = engine.analyze();
    let cfg = xac_analyze::RepairConfig { deny_warnings, fix_infos };
    let outcome =
        xac_analyze::synthesize(&mut engine, &source, policy_path, doc.as_ref(), &cfg);
    let rendered = match format {
        "json" => outcome.report.to_json(),
        _ => outcome.report.to_text(),
    };
    match args.options.get("out") {
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote report to {path}");
        }
        None => print!("{rendered}"),
    }
    for repair in &outcome.repairs {
        eprintln!("repair [{}] {}", repair.kind.label(), repair.description);
    }
    if dry_run {
        if !outcome.diff.is_empty() {
            print!("{}", outcome.diff);
        }
        return analyze_exit(&before, deny_warnings, policy_path);
    }
    let target = args
        .options
        .get("fix-out")
        .map(String::as_str)
        .unwrap_or(policy_path);
    if !outcome.repairs.is_empty() || args.options.contains_key("fix-out") {
        std::fs::write(target, &outcome.source)
            .map_err(|e| format!("cannot write `{target}`: {e}"))?;
        eprintln!(
            "wrote repaired policy to {target} ({} repair(s))",
            outcome.repairs.len()
        );
    }
    analyze_exit(&outcome.report, deny_warnings, policy_path)
}

/// Observability front end.
///
/// `obs dump` builds the system, runs the given queries (and an
/// optional `--delete` through the re-annotation path) with tracing on,
/// then prints the global metrics registry — oracle hit/miss counters,
/// backend write totals, per-span aggregates — in Prometheus text
/// exposition to stdout or `--out`. `--trace-out` additionally writes
/// the Chrome trace-event JSON of the run.
///
/// `obs check` validates artifacts produced by `obs dump` or
/// `serve-bench`: `--metrics F` must parse as Prometheus exposition
/// (every line `name{labels} value` or `# TYPE`/`# HELP`), `--trace F`
/// must be well-formed JSON. Invalid files exit 2.
fn obs(args: &Args) -> CliResult<()> {
    let verb = args.positionals.first().map(String::as_str).unwrap_or("dump");
    match verb {
        "dump" => obs_dump(args),
        "check" => obs_check(args),
        other => Err(format!("unknown obs verb `{other}` (dump|check)\n{}", usage()).into()),
    }
}

fn obs_dump(args: &Args) -> CliResult<()> {
    xac_obs::trace::set_enabled(true);
    let (system, mut backend) = build_system(args)?;
    for q in &args.queries {
        system.request(backend.as_mut(), q).map_err(|e| e.to_string())?;
    }
    if let Some(expr) = args.options.get("delete") {
        let path = xac_xpath::parse(expr).map_err(|e| e.to_string())?;
        system
            .apply_update(backend.as_mut(), &path)
            .map_err(|e| e.to_string())?;
    }
    xac_obs::trace::set_enabled(false);
    if let Some(path) = args.options.get("trace-out") {
        let json = xac_obs::chrome_trace(&xac_obs::take_events());
        std::fs::write(path, &json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote trace to {path}");
    }
    let text = xac_obs::prometheus_global();
    match args.options.get("out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote metrics to {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn obs_check(args: &Args) -> CliResult<()> {
    if !args.options.contains_key("metrics") && !args.options.contains_key("trace") {
        return Err(format!("obs check needs --metrics and/or --trace\n{}", usage()).into());
    }
    if let Some(path) = args.options.get("metrics") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read metrics `{path}`: {e}"))?;
        xac_obs::validate_prometheus(&text)
            .map_err(|e| format!("metrics `{path}` invalid: {e}"))?;
        println!("metrics ok: {path} ({} lines)", text.lines().count());
    }
    if let Some(path) = args.options.get("trace") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read trace `{path}`: {e}"))?;
        xac_obs::validate_json(&text).map_err(|e| format!("trace `{path}` invalid: {e}"))?;
        // Structural JSON is not enough for a Chrome trace carrying
        // distributed flows: every flow-start must have a matching
        // finish bound by the same id, or the viewer draws dangling
        // arrows.
        xac_obs::validate_flow_pairing(&text)
            .map_err(|e| format!("trace `{path}` flow pairing invalid: {e}"))?;
        println!("trace ok: {path} ({} bytes)", text.len());
    }
    Ok(())
}

fn vm(args: &Args) -> CliResult<()> {
    let verb = args.positionals.first().map(String::as_str).unwrap_or("dump");
    match verb {
        "dump" => vm_dump(args),
        other => Err(format!("unknown vm verb `{other}` (dump)\n{}", usage()).into()),
    }
}

/// Disassemble the bytecode program the compiled annotate mode runs for
/// this (policy, schema) pair — the same optimized annotation query the
/// backends execute, grouped per element type.
fn vm_dump(args: &Args) -> CliResult<()> {
    let policy = args.policy()?;
    let schema = args.schema()?;
    let optimized = xac_core::optimizer::optimize(&policy).optimized;
    let query = xac_policy::AnnotationQuery::from_policy(&optimized);
    let program = xac_vmc::compile_query(&query, Some(&schema))
        .map_err(|e| format!("annotation query is outside the compilable fragment: {e}"))?;
    let listing = xac_vmc::disassemble(&program, Some(&schema));
    match args.options.get("out") {
        Some(path) => {
            std::fs::write(path, &listing)
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote listing to {path}");
        }
        None => print!("{listing}"),
    }
    Ok(())
}

/// Build an engine on the storage the flags select: durable over
/// `--data-dir` (the storage half of `--fault-plan` arms the WAL/page
/// crash seams, the rest the backend) or in-memory otherwise. A reopen
/// that recovered from the log reports what the replay did.
fn engine_on_selected_storage(
    args: &Args,
    system: Arc<System>,
    kind: BackendKind,
    plan: xac_core::FaultPlan,
) -> CliResult<ServeEngine> {
    match args.durability()? {
        Some(config) => {
            let engine = ServeEngine::durable_with_faults(system, kind, &config, plan)?;
            match engine.recovery() {
                Some(r) => println!(
                    "recovered {} from {}: {} ops replayed, {} sign entries, epoch {}, \
                     {} wal bytes truncated, {} torn pages repaired",
                    r.backend,
                    config.data_dir.display(),
                    r.ops_replayed,
                    r.sign_entries,
                    r.last_epoch,
                    r.wal_truncated_bytes,
                    r.torn_pages_repaired,
                ),
                None => println!(
                    "fresh durable boot at {} (wal {})",
                    config.data_dir.display(),
                    if config.sync { "sync" } else { "nosync" },
                ),
            }
            Ok(engine)
        }
        None => {
            if plan.specs().iter().any(|s| s.point.is_storage()) {
                return Err(
                    "--fault-plan: wal_*/page_*/checkpoint_* points arm the durable \
                     storage layer; add --data-dir"
                        .to_string()
                        .into(),
                );
            }
            Ok(ServeEngine::for_kind_with_faults(system, kind, plan)?)
        }
    }
}

/// Build the serving engine for the network commands, arming the
/// backend half of `--fault-plan` (the net half belongs to clients and
/// is rejected here).
fn build_engine(args: &Args) -> CliResult<Arc<ServeEngine>> {
    let (backend_plan, net_plan) = args.fault_plans()?;
    if !net_plan.is_exhausted() {
        return Err(format!(
            "--fault-plan: net_* points are client-side (use `client`/`serve-bench --net`), \
             found `{net_plan}`"
        )
        .into());
    }
    let system = Arc::new(args.build_system()?);
    let kind = args.backend_kind()?;
    Ok(Arc::new(engine_on_selected_storage(args, system, kind, backend_plan)?))
}

fn server_config(args: &Args) -> CliResult<ServerConfig> {
    let mut config = ServerConfig {
        listen: args
            .options
            .get("listen")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:0".to_string()),
        max_connections: args.count("max-conns", 64)?,
        read_timeout: Duration::from_millis(args.count("read-timeout-ms", 5000)? as u64),
        rate_limit: None,
    };
    if args.options.contains_key("rate-limit") {
        config.rate_limit = Some(args.count("rate-limit", 0)? as u32);
    }
    Ok(config)
}

/// Run the TCP server over one engine until killed (or for
/// `--linger-ms`, then drain gracefully — the mode the CI smoke test
/// uses). `--addr-file` publishes the bound address, so scripts can
/// bind port 0 and scrape the real port.
fn serve(args: &Args) -> CliResult<()> {
    let engine = build_engine(args)?;
    let config = server_config(args)?;
    let server = NetServer::start(Arc::clone(&engine), config)
        .map_err(|e| format!("cannot start server: {e}"))?;
    let addr = server.local_addr();
    println!("listening on {addr} ({}, role-gated, epoch {})", engine.backend_name(), engine.epoch());
    if let Some(path) = args.options.get("addr-file") {
        std::fs::write(path, addr.to_string())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    match args.options.get("linger-ms") {
        Some(_) => {
            let ms = args.count("linger-ms", 0)?;
            std::thread::sleep(Duration::from_millis(ms as u64));
            server.shutdown();
            println!("drained and shut down after {ms}ms");
        }
        None => loop {
            // Foreground mode: serve until the process is killed.
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    if let Some(cause) = engine.quarantine_cause() {
        return Err(CliError {
            message: format!(
                "engine quarantined (read-only at epoch {}): {cause}",
                engine.epoch()
            ),
            code: 3,
        });
    }
    Ok(())
}

/// One table row per request outcome.
fn render_response(req: &Request, resp: &Response) -> (String, String, String) {
    match resp {
        Response::Decision { granted, nodes, epoch } => (
            if *granted { "GRANTED" } else { "DENIED" }.to_string(),
            format!("{} ({nodes} nodes)", describe_request(req)),
            epoch.to_string(),
        ),
        Response::Update { applied, removed, inserted, sign_writes, denied_nodes, epoch } => {
            if *applied {
                let changed = if *removed > 0 {
                    format!("removed {removed}")
                } else {
                    format!("inserted {inserted}")
                };
                (
                    "APPLIED".to_string(),
                    format!("{changed}, {sign_writes} sign writes"),
                    epoch.to_string(),
                )
            } else {
                (
                    "REFUSED".to_string(),
                    format!("guard denied {denied_nodes} nodes"),
                    epoch.to_string(),
                )
            }
        }
        Response::Status { backend, epoch, accessible, quarantined } => (
            if *quarantined { "QUARANTINED" } else { "OK" }.to_string(),
            format!("{backend}, {accessible} accessible"),
            epoch.to_string(),
        ),
        Response::Metrics { rendered } => (
            "OK".to_string(),
            format!("{} metric lines", rendered.lines().count()),
            "-".to_string(),
        ),
        Response::Scrape { exposition } => (
            "OK".to_string(),
            format!("{} exposition lines", exposition.lines().count()),
            "-".to_string(),
        ),
        Response::Tail { records } => (
            "OK".to_string(),
            format!("{} flight records", records.len()),
            "-".to_string(),
        ),
        Response::Analysis { exit_code, repairs, .. } => (
            if *exit_code == 0 { "CLEAN".to_string() } else { format!("EXIT({exit_code})") },
            format!("{repairs} verified repair(s)"),
            "-".to_string(),
        ),
        Response::Error { kind, message } => {
            (format!("ERROR({kind})"), message.clone(), "-".to_string())
        }
        other => ("?".to_string(), format!("{other:?}"), "-".to_string()),
    }
}

fn describe_request(req: &Request) -> String {
    match req {
        Request::Query { query } => query.clone(),
        Request::Delete { path } => path.clone(),
        Request::Insert { parent, name, .. } => format!("{parent} <- <{name}>"),
        _ => String::new(),
    }
}

/// Connect to a running server and issue requests, rendering decisions
/// as a table. The worst outcome drives the exit code: role-denied 7,
/// quarantined 3, fault-injected 4, other errors 2; a *denied* query or
/// refused update is a successful answer (exit 0).
fn client(args: &Args) -> CliResult<()> {
    let addr = args.required("addr")?;
    let role = match args.options.get("role") {
        None => Role::Reader,
        Some(spelling) => Role::parse(spelling).map_err(CliError::from)?,
    };
    let mut requests: Vec<Request> = args.queries.iter().map(Request::query).collect();
    if let Some(path) = args.options.get("delete") {
        requests.push(Request::delete(path));
    }
    if let Some(spec) = args.options.get("insert") {
        let (parent, name, text) = parse_insert_spec(spec)?;
        requests.push(Request::insert(parent, name, text.map(str::to_string)));
    }
    for verb in &args.positionals {
        match verb.as_str() {
            "status" => requests.push(Request::Status),
            "metrics" => requests.push(Request::Metrics),
            "scrape" => requests.push(Request::Scrape),
            "tail" => requests.push(Request::tail(args.count("last", 10)? as u32)),
            "analyze" => requests.push(Request::Analyze {
                deny_warnings: matches!(
                    args.options.get("deny").map(String::as_str),
                    Some("warn") | Some("warnings")
                ),
                fix: args.options.contains_key("fix"),
            }),
            other => {
                return Err(format!(
                    "unknown client verb `{other}` (status|metrics|scrape|tail|analyze)"
                )
                .into())
            }
        }
    }
    if requests.is_empty() {
        requests.push(Request::Status);
    }
    let mut session = NetClient::connect(addr, role)
        .map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    println!("connected to {} as `{role}` (epoch {})", session.backend(), session.welcome_epoch());
    println!("{:<8} {:<14} {:<44} {:>6}", "verb", "outcome", "detail", "epoch");
    let mut worst: u8 = 0;
    let mut worst_message = String::new();
    for req in &requests {
        let resp = session
            .request(req)
            .map_err(|e| format!("{} failed on the wire: {e}", req.verb()))?;
        let (outcome, detail, epoch) = render_response(req, &resp);
        println!("{:<8} {:<14} {:<44} {:>6}", req.verb(), outcome, detail, epoch);
        match &resp {
            // The scraped exposition is an artifact, not table content:
            // `--scrape-out F` saves it for `obs check`/CI, otherwise it
            // prints in full after its table row.
            Response::Scrape { exposition } => match args.options.get("scrape-out") {
                Some(path) => {
                    std::fs::write(path, exposition)
                        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                    eprintln!("wrote scrape to {path}");
                }
                None => print!("{exposition}"),
            },
            Response::Tail { records } => {
                for r in records {
                    println!(
                        "  {} {:<8} {:<10} {:<18} epoch {:>4}  decode {:>5}µs  queue {:>5}µs  \
                         execute {:>7}µs  total {:>7}µs",
                        xac_obs::trace::trace_id_hex(r.trace_id),
                        r.verb,
                        r.backend,
                        r.outcome,
                        r.epoch,
                        r.decode_us,
                        r.queue_us,
                        r.execute_us,
                        r.total_us,
                    );
                }
            }
            Response::Analysis { report_json, diff, .. } => {
                print!("{report_json}");
                if let Some(diff) = diff {
                    print!("{diff}");
                }
            }
            _ => {}
        }
        if let Response::Error { kind, message } = &resp {
            let code = error_kind_code(*kind);
            // 7 (role) outranks 2, 3 and 4 outrank 7 as hard failures:
            // pick the first error's code unless a later one is a
            // quarantine/fault classification.
            if worst == 0 || matches!(code, 3 | 4) {
                worst = code;
                worst_message = format!("{kind}: {message}");
            }
        }
    }
    session.close();
    match worst {
        0 => Ok(()),
        code => Err(CliError { message: worst_message, code }),
    }
}

/// Live terminal telemetry over the admin wire plane: poll a running
/// server with `Request::Scrape` + `Request::Tail`, reconstruct the
/// per-verb `xac_net_request_us` histograms from the scraped Prometheus
/// text, and render latency quantiles (sub-bucket interpolated p50,
/// p99, p999), per-backend outcome tallies, and the most recent flight
/// records — refreshed in place like `top(1)`. `--interval-ms` sets the
/// poll cadence (default 1000); `--iterations N` bounds the refreshes
/// (default 0 = run until interrupted), so CI takes one sample with
/// `--iterations 1` and exits.
fn top(args: &Args) -> CliResult<()> {
    let addr = args.required("addr")?;
    let interval = Duration::from_millis(args.count("interval-ms", 1000)? as u64);
    let iterations = args.count("iterations", 0)?;
    let live = iterations != 1;
    let mut session = NetClient::connect(addr, Role::Admin)
        .map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    let backend = session.backend().to_string();
    for iter in 1.. {
        let exposition = match session
            .scrape()
            .map_err(|e| format!("scrape failed on the wire: {e}"))?
        {
            Response::Scrape { exposition } => exposition,
            Response::Error { kind, message } => {
                return Err(CliError {
                    message: format!("{kind}: {message}"),
                    code: error_kind_code(kind),
                })
            }
            other => return Err(format!("unexpected scrape answer: {other:?}").into()),
        };
        let records = match session
            .tail(12)
            .map_err(|e| format!("tail failed on the wire: {e}"))?
        {
            Response::Tail { records } => records,
            Response::Error { kind, message } => {
                return Err(CliError {
                    message: format!("{kind}: {message}"),
                    code: error_kind_code(kind),
                })
            }
            other => return Err(format!("unexpected tail answer: {other:?}").into()),
        };
        if live {
            // Home + clear: repaint in place, like top(1).
            print!("\x1b[H\x1b[2J");
        }
        render_top(&backend, iter, &exposition, &records);
        if iterations != 0 && iter >= iterations {
            break;
        }
        std::thread::sleep(interval);
    }
    session.close();
    Ok(())
}

/// Rebuild per-verb histogram snapshots from scraped
/// `xac_net_request_us_bucket{…}` / `_sum` / `_count` lines. The
/// cumulative `le` samples are de-cumulated back into per-bucket counts
/// so [`HistogramSnapshot::quantile`](xac_obs::HistogramSnapshot) runs
/// on the *client* side — the server ships text, not statistics.
fn parse_verb_histograms(exposition: &str) -> BTreeMap<String, xac_obs::HistogramSnapshot> {
    const FAMILY: &str = "xac_net_request_us";
    let mut cumulative: BTreeMap<String, Vec<(usize, u64)>> = BTreeMap::new();
    let mut sums: BTreeMap<String, u64> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for line in exposition.lines() {
        let Some(rest) = line.strip_prefix(FAMILY) else { continue };
        let Some((kind, rest)) = rest.split_once('{') else { continue };
        let Some((labels, value)) = rest.split_once("} ") else { continue };
        // Drop any OpenMetrics exemplar suffix before reading the value.
        let value = value.split(" # ").next().unwrap_or(value).trim();
        let Ok(value) = value.parse::<u64>() else { continue };
        let mut verb = None;
        let mut le = None;
        for pair in labels.split(',') {
            let Some((k, v)) = pair.split_once('=') else { continue };
            let v = v.trim_matches('"');
            match k {
                "verb" => verb = Some(v.to_string()),
                "le" => le = Some(v.to_string()),
                _ => {}
            }
        }
        let Some(verb) = verb else { continue };
        match kind {
            "_bucket" => {
                let Some(le) = le else { continue };
                // `le` is the inclusive log2 bucket top `(1<<i)-1`;
                // recover the bucket index from it.
                let index = if le == "+Inf" {
                    xac_obs::BUCKETS - 1
                } else {
                    match le.parse::<u64>() {
                        Ok(bound) => (bound + 1).trailing_zeros() as usize,
                        Err(_) => continue,
                    }
                };
                cumulative.entry(verb).or_default().push((index, value));
            }
            "_sum" => {
                sums.insert(verb, value);
            }
            "_count" => {
                counts.insert(verb, value);
            }
            _ => {}
        }
    }
    let mut out = BTreeMap::new();
    for (verb, mut samples) in cumulative {
        samples.sort_unstable();
        let mut buckets = vec![0u64; xac_obs::BUCKETS];
        let mut prev = 0u64;
        for (index, cum) in samples {
            if index < buckets.len() {
                buckets[index] = cum.saturating_sub(prev);
                prev = cum;
            }
        }
        let count = counts.get(&verb).copied().unwrap_or(prev);
        let total = sums.get(&verb).copied().unwrap_or(0);
        out.insert(
            verb,
            xac_obs::HistogramSnapshot { count, total, buckets, exemplars: vec![] },
        );
    }
    out
}

fn render_top(
    backend: &str,
    iter: usize,
    exposition: &str,
    records: &[xac_obs::FlightRecord],
) {
    println!("xmlac top — {backend} (sample {iter})");
    println!();
    println!(
        "{:<10} {:>8} {:>10} {:>9} {:>9} {:>9}",
        "verb", "count", "mean_us", "p50_us", "p99_us", "p999_us"
    );
    let histograms = parse_verb_histograms(exposition);
    if histograms.is_empty() {
        println!("(no xac_net_request_us samples yet — has the server served a request?)");
    }
    for (verb, snap) in &histograms {
        println!(
            "{:<10} {:>8} {:>10.1} {:>9.0} {:>9.0} {:>9.0}",
            verb,
            snap.count,
            snap.mean(),
            snap.quantile(0.50),
            snap.quantile(0.99),
            snap.quantile(0.999),
        );
    }
    // Outcome tallies per (backend, verb) from the flight tail — the
    // recorder sees every wire request, including rate-limited ones
    // that never reach the engine.
    let mut outcomes: BTreeMap<(String, String, String), u64> = BTreeMap::new();
    for r in records {
        *outcomes
            .entry((r.backend.clone(), r.verb.clone(), r.outcome.clone()))
            .or_default() += 1;
    }
    if !outcomes.is_empty() {
        println!();
        println!("{:<12} {:<10} {:<18} {:>6}", "backend", "verb", "outcome", "n");
        for ((backend, verb, outcome), n) in &outcomes {
            println!("{backend:<12} {verb:<10} {outcome:<18} {n:>6}");
        }
    }
    if !records.is_empty() {
        println!();
        println!("recent requests (newest last):");
        for r in records {
            println!(
                "  {} {:<8} {:<18} epoch {:>4}  decode {:>4}µs  queue {:>4}µs  \
                 execute {:>6}µs  total {:>6}µs",
                &xac_obs::trace::trace_id_hex(r.trace_id)[..16],
                r.verb,
                r.outcome,
                r.epoch,
                r.decode_us,
                r.queue_us,
                r.execute_us,
                r.total_us,
            );
        }
    }
}

/// Drive the serving engine: N reader threads issue the given queries
/// against published snapshots while this thread applies guarded
/// updates, then report the engine's metrics. `--fault-plan` arms an
/// injection plan (an explicit spec string or `seed:N[xK]`); a writer
/// error is reported but the run continues so the metrics always print,
/// and the exit code classifies the final state: 3 if the engine ended
/// quarantined, 4 if an injected fault surfaced out of the ladder.
///
/// `--net CLIENTS` switches to the network mode: the same engine is
/// fronted by a real TCP server and CLIENTS socket sessions issue the
/// reads (writes go over a writer session), emitting a `BENCH_net.json`
/// artifact row (`--out` overrides the path).
fn serve_bench(args: &Args) -> CliResult<()> {
    if args.queries.is_empty() {
        return Err(format!("serve-bench needs at least one --query\n{}", usage()).into());
    }
    if args.options.contains_key("net") {
        return serve_bench_net(args);
    }
    // Tracing goes on before the system is built so the annotate /
    // re-annotate phase spans of engine construction are captured too.
    let tracing = args.options.contains_key("trace-out");
    if tracing {
        xac_obs::trace::set_enabled(true);
    }
    let system = Arc::new(args.build_system()?);
    let kind = args.backend_kind()?;
    let plan = match args.options.get("fault-plan") {
        Some(spec) => xac_serve::faults::fault_plan_from_arg(spec)
            .map_err(|e| format!("--fault-plan `{spec}`: {e}"))?,
        None => xac_core::FaultPlan::new(),
    };
    if !plan.is_exhausted() {
        install_injected_panic_silencer();
    }
    let engine = Arc::new(engine_on_selected_storage(args, system, kind, plan)?);
    let readers = args.count("readers", 4)?;
    let reads = args.count("reads", 200)?;
    let paths: Vec<xac_xpath::Path> = args
        .queries
        .iter()
        .map(|q| xac_xpath::parse(q).map_err(|e| format!("--query `{q}`: {e}").into()))
        .collect::<CliResult<_>>()?;
    let delete = match args.options.get("delete") {
        Some(expr) => Some(xac_xpath::parse(expr).map_err(|e| e.to_string())?),
        None => None,
    };
    let mut writer_error: Option<xac_core::Error> = None;
    std::thread::scope(|scope| {
        for _ in 0..readers {
            let engine = Arc::clone(&engine);
            let paths = &paths;
            scope.spawn(move || {
                for i in 0..reads {
                    engine.query(&paths[i % paths.len()]);
                }
            });
        }
        if let Some(update) = &delete {
            match engine.guarded_delete(update) {
                Ok(g) => println!(
                    "writer: guarded delete {} at epoch {}",
                    if g.applied() { "applied" } else { "denied" },
                    engine.epoch()
                ),
                Err(e) => {
                    eprintln!("writer: guarded delete failed: {e}");
                    writer_error = Some(e);
                }
            }
        }
    });
    println!(
        "served {} readers × {} reads on {}",
        readers,
        reads,
        engine.backend_name()
    );
    println!("{}", engine.metrics().render());
    // Telemetry artifacts are written before the exit-code
    // classification below so they exist even for runs that end
    // quarantined or with an unabsorbed fault.
    if tracing {
        xac_obs::trace::set_enabled(false);
    }
    if let Some(path) = args.options.get("trace-out") {
        let json = xac_obs::chrome_trace(&xac_obs::take_events());
        std::fs::write(path, &json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote trace to {path}");
    }
    if let Some(path) = args.options.get("metrics-out") {
        let mut text = engine.metrics().to_prometheus(engine.backend_name());
        text.push_str(&xac_obs::prometheus_global());
        std::fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote metrics to {path}");
    }
    if let Some(cause) = engine.quarantine_cause() {
        return Err(CliError {
            message: format!(
                "engine quarantined (read-only at epoch {}): {cause}",
                engine.epoch()
            ),
            code: 3,
        });
    }
    match writer_error {
        // A rolled-back write: the engine recovered, but the operation
        // was lost — classify it (FaultInjected -> 4) for the caller.
        Some(e) => Err(e.into()),
        None => Ok(()),
    }
}

/// Injected panics are caught and classified by the engine; the default
/// hook's report + backtrace would only bury the real output. Organic
/// panics still report normally.
fn install_injected_panic_silencer() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if xac_core::injected_panic_point(info.payload()).is_none() {
            default_hook(info);
        }
    }));
}

/// Per-client tallies for the network bench.
#[derive(Default)]
struct NetTally {
    granted: u64,
    denied: u64,
    errors: u64,
    wire_errors: u64,
}

/// `serve-bench --net N`: front the engine with a real TCP server and
/// drive it over N client sockets (each issuing `--reads` queries
/// round-robin over the `--query` list), plus one writer session for
/// `--delete`. The net half of `--fault-plan` is armed on the first
/// client, the backend half on the engine. Emits one JSON artifact row
/// (`"bench": "net"`) to `--out` (default `BENCH_net.json`).
fn serve_bench_net(args: &Args) -> CliResult<()> {
    let clients = args.count("net", 4)?.max(1);
    let reads = args.count("reads", 200)?;
    let (backend_plan, net_plan) = args.fault_plans()?;
    if !backend_plan.is_exhausted() {
        install_injected_panic_silencer();
    }
    let system = Arc::new(args.build_system()?);
    let kind = args.backend_kind()?;
    let engine =
        Arc::new(engine_on_selected_storage(args, system, kind, backend_plan)?);
    let mut config = server_config(args)?;
    // Keep the cap above the fleet so admission control never skews the
    // numbers unless explicitly configured.
    if !args.options.contains_key("max-conns") {
        config.max_connections = clients + 8;
    }
    let server = NetServer::start(Arc::clone(&engine), config)
        .map_err(|e| format!("cannot start server: {e}"))?;
    let addr = server.local_addr();
    let started = Instant::now();
    let mut tallies: Vec<NetTally> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let queries = &args.queries;
            let plan = if c == 0 { net_plan.clone() } else { xac_core::FaultPlan::new() };
            handles.push(scope.spawn(move || {
                let mut tally = NetTally::default();
                let Ok(mut session) = NetClient::connect_with(
                    addr,
                    Role::Reader,
                    plan,
                    Duration::from_millis(300),
                ) else {
                    tally.wire_errors += reads as u64;
                    return tally;
                };
                for i in 0..reads {
                    if session.is_dead() {
                        // A net fault tore the session: reconnect —
                        // carrying the unfired fault specs over — so the
                        // bench keeps measuring the server, not the tear.
                        let rest = session.take_plan();
                        match NetClient::connect_with(
                            addr,
                            Role::Reader,
                            rest,
                            Duration::from_millis(300),
                        ) {
                            Ok(s) => session = s,
                            Err(_) => {
                                tally.wire_errors += (reads - i) as u64;
                                break;
                            }
                        }
                    }
                    match session.query(&queries[i % queries.len()]) {
                        Ok(Response::Decision { granted: true, .. }) => tally.granted += 1,
                        Ok(Response::Decision { granted: false, .. }) => tally.denied += 1,
                        Ok(_) => tally.errors += 1,
                        Err(_) => tally.wire_errors += 1,
                    }
                }
                session.close();
                tally
            }));
        }
        tallies = handles.into_iter().map(|h| h.join().unwrap_or_default()).collect();
    });
    let mut updates_applied: u64 = 0;
    let mut updates_refused: u64 = 0;
    let mut writer_error: Option<CliError> = None;
    if let Some(expr) = args.options.get("delete") {
        match NetClient::connect(addr, Role::Writer) {
            Ok(mut writer) => {
                match writer.delete(expr) {
                    Ok(Response::Update { applied: true, epoch, .. }) => {
                        updates_applied += 1;
                        println!("writer: guarded delete applied at epoch {epoch}");
                    }
                    Ok(Response::Update { applied: false, .. }) => {
                        updates_refused += 1;
                        println!("writer: guarded delete denied");
                    }
                    Ok(Response::Error { kind, message }) => {
                        eprintln!("writer: guarded delete failed: {message}");
                        writer_error =
                            Some(CliError { message, code: error_kind_code(kind) });
                    }
                    Ok(other) => {
                        writer_error = Some(CliError {
                            message: format!("unexpected writer response {other:?}"),
                            code: 2,
                        });
                    }
                    Err(e) => {
                        writer_error = Some(CliError {
                            message: format!("writer session broke: {e}"),
                            code: 2,
                        });
                    }
                }
                writer.close();
            }
            Err(e) => {
                writer_error = Some(CliError {
                    message: format!("cannot connect writer session: {e}"),
                    code: 2,
                });
            }
        }
    }
    let elapsed = started.elapsed();
    server.shutdown();
    let total: u64 = tallies
        .iter()
        .map(|t| t.granted + t.denied + t.errors + t.wire_errors)
        .sum();
    let granted: u64 = tallies.iter().map(|t| t.granted).sum();
    let denied: u64 = tallies.iter().map(|t| t.denied).sum();
    let errors: u64 = tallies.iter().map(|t| t.errors).sum();
    let wire_errors: u64 = tallies.iter().map(|t| t.wire_errors).sum();
    let answered = granted + denied + errors;
    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
    let rps = answered as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "net: {clients} clients × {reads} requests over {} = {answered} answered \
         ({granted} granted, {denied} denied, {errors} errors, {wire_errors} wire errors) \
         in {elapsed_ms:.1}ms ({rps:.0} req/s)",
        engine.backend_name()
    );
    println!("{}", engine.metrics().render());
    let out = args
        .options
        .get("out")
        .map(String::as_str)
        .unwrap_or("BENCH_net.json");
    let json = format!(
        "[\n  {{\"bench\": \"net\", \"backend\": \"{}\", \"clients\": {clients}, \
         \"reads_per_client\": {reads}, \"requests_total\": {total}, \
         \"answered\": {answered}, \"granted\": {granted}, \"denied\": {denied}, \
         \"errors\": {errors}, \"wire_errors\": {wire_errors}, \
         \"updates_applied\": {updates_applied}, \"updates_refused\": {updates_refused}, \
         \"elapsed_ms\": {elapsed_ms:.3}, \"requests_per_s\": {rps:.1}}}\n]\n",
        engine.backend_name()
    );
    std::fs::write(out, &json).map_err(|e| format!("cannot write `{out}`: {e}"))?;
    eprintln!("wrote net bench artifact to {out}");
    if let Some(cause) = engine.quarantine_cause() {
        return Err(CliError {
            message: format!(
                "engine quarantined (read-only at epoch {}): {cause}",
                engine.epoch()
            ),
            code: 3,
        });
    }
    match writer_error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}
