//! Physical table storage: row-oriented and column-oriented layouts plus
//! hash indexes.
//!
//! Both layouts share the same logical contract (append / read cell /
//! update cell / tombstone delete, with index maintenance) but expose
//! their natural bulk accessors: [`row::RowTable::row`] hands the row
//! executor a contiguous tuple, [`column::ColTable::column`] hands the
//! column executor a whole column vector.

pub mod column;
pub mod row;

use crate::error::{Error, Result};
use crate::value::Value;
use std::collections::HashMap;

pub use column::{ColTable, ColumnData};
pub use row::RowTable;

/// A hash index over one column. Unique indexes (primary keys) reject
/// duplicate insertions.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    map: HashMap<Value, Vec<usize>>,
    unique: bool,
}

impl HashIndex {
    /// Create an index; `unique` enforces at most one row per key.
    pub fn new(unique: bool) -> Self {
        HashIndex { map: HashMap::new(), unique }
    }

    /// Register `row` under `key`. `NULL` keys are not indexed.
    pub fn insert(&mut self, key: Value, row: usize) -> Result<()> {
        if key.is_null() {
            return Ok(());
        }
        let slot = self.map.entry(key).or_default();
        if self.unique && !slot.is_empty() {
            return Err(Error::exec("unique index violation"));
        }
        slot.push(row);
        Ok(())
    }

    /// Remove the `(key, row)` pairing, if present.
    pub fn remove(&mut self, key: &Value, row: usize) {
        if key.is_null() {
            return;
        }
        if let Some(slot) = self.map.get_mut(key) {
            slot.retain(|&r| r != row);
            if slot.is_empty() {
                self.map.remove(key);
            }
        }
    }

    /// Rows filed under `key`.
    pub fn lookup(&self, key: &Value) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no keys are indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Shared helper: which columns of a schema carry indexes, and whether
/// each is unique.
pub(crate) fn index_plan(schema: &crate::catalog::TableSchema) -> Vec<(usize, bool)> {
    schema
        .columns
        .iter()
        .enumerate()
        .filter(|(_, c)| c.indexed)
        .map(|(i, c)| (i, c.primary_key))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_index_rejects_duplicates() {
        let mut idx = HashIndex::new(true);
        idx.insert(Value::Int(1), 0).unwrap();
        assert!(idx.insert(Value::Int(1), 1).is_err());
        assert_eq!(idx.lookup(&Value::Int(1)), &[0]);
    }

    #[test]
    fn multi_index_accumulates() {
        let mut idx = HashIndex::new(false);
        idx.insert(Value::Int(7), 0).unwrap();
        idx.insert(Value::Int(7), 3).unwrap();
        assert_eq!(idx.lookup(&Value::Int(7)), &[0, 3]);
        idx.remove(&Value::Int(7), 0);
        assert_eq!(idx.lookup(&Value::Int(7)), &[3]);
        idx.remove(&Value::Int(7), 3);
        assert!(idx.lookup(&Value::Int(7)).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn nulls_not_indexed() {
        let mut idx = HashIndex::new(true);
        idx.insert(Value::Null, 0).unwrap();
        idx.insert(Value::Null, 1).unwrap(); // no unique violation
        assert!(idx.lookup(&Value::Null).is_empty());
    }
}
