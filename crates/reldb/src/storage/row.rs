//! Row-oriented table storage (the PostgreSQL-like layout).
//!
//! Tuples live contiguously (`Vec<Vec<Value>>`); deletion tombstones the
//! slot. Appends touch one allocation, reads of a whole tuple are one
//! index away — the access profile of a classic row store.

use super::{index_plan, HashIndex};
use crate::catalog::TableSchema;
use crate::error::{Error, Result};
use crate::value::Value;
use std::collections::BTreeMap;

/// A row-store table.
#[derive(Debug, Clone)]
pub struct RowTable {
    schema: TableSchema,
    rows: Vec<Vec<Value>>,
    live: Vec<bool>,
    live_count: usize,
    indexes: BTreeMap<usize, HashIndex>,
}

impl RowTable {
    /// Create an empty table for the schema.
    pub fn new(schema: TableSchema) -> Self {
        let indexes = index_plan(&schema)
            .into_iter()
            .map(|(col, unique)| (col, HashIndex::new(unique)))
            .collect();
        RowTable { schema, rows: Vec::new(), live: Vec::new(), live_count: 0, indexes }
    }

    /// The table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Live row count.
    pub fn row_count(&self) -> usize {
        self.live_count
    }

    /// Physical slot count (live + tombstoned).
    pub fn capacity(&self) -> usize {
        self.rows.len()
    }

    /// Is the slot live?
    pub fn is_live(&self, row: usize) -> bool {
        self.live.get(row).copied().unwrap_or(false)
    }

    /// Borrow a physical row (caller checks liveness).
    pub fn row(&self, row: usize) -> &[Value] {
        &self.rows[row]
    }

    /// Clone one cell.
    pub fn cell(&self, row: usize, col: usize) -> Value {
        self.rows[row][col].clone()
    }

    /// Append a tuple; returns its slot.
    pub fn append(&mut self, row: Vec<Value>) -> Result<usize> {
        validate_row(&self.schema, &row)?;
        let slot = self.rows.len();
        for (&col, index) in self.indexes.iter_mut() {
            index.insert(row[col].clone(), slot)?;
        }
        self.rows.push(row);
        self.live.push(true);
        self.live_count += 1;
        Ok(slot)
    }

    /// Overwrite one cell, maintaining indexes.
    pub fn update_cell(&mut self, row: usize, col: usize, value: Value) -> Result<()> {
        if !self.is_live(row) {
            return Err(Error::exec("update of a deleted row"));
        }
        if !value.fits(self.schema.columns[col].dtype) {
            return Err(Error::exec(format!(
                "value {value:?} does not fit column `{}`",
                self.schema.columns[col].name
            )));
        }
        if let Some(index) = self.indexes.get_mut(&col) {
            let old = self.rows[row][col].clone();
            index.remove(&old, row);
            index.insert(value.clone(), row)?;
        }
        self.rows[row][col] = value;
        Ok(())
    }

    /// Tombstone a row, maintaining indexes.
    pub fn delete_row(&mut self, row: usize) -> Result<()> {
        if !self.is_live(row) {
            return Err(Error::exec("double delete"));
        }
        for (&col, index) in self.indexes.iter_mut() {
            let key = self.rows[row][col].clone();
            index.remove(&key, row);
        }
        self.live[row] = false;
        self.live_count -= 1;
        Ok(())
    }

    /// Rows filed under `key` in the index on `col` (empty when the column
    /// has no index).
    pub fn index_lookup(&self, col: usize, key: &Value) -> &[usize] {
        self.indexes.get(&col).map(|i| i.lookup(key)).unwrap_or(&[])
    }

    /// Whether `col` carries an index.
    pub fn has_index(&self, col: usize) -> bool {
        self.indexes.contains_key(&col)
    }

    /// Iterate live slots.
    pub fn live_rows(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.rows.len()).filter(move |&r| self.live[r])
    }
}

pub(crate) fn validate_row(schema: &TableSchema, row: &[Value]) -> Result<()> {
    if row.len() != schema.arity() {
        return Err(Error::exec(format!(
            "arity mismatch for `{}`: expected {}, got {}",
            schema.name,
            schema.arity(),
            row.len()
        )));
    }
    for (v, c) in row.iter().zip(&schema.columns) {
        if !v.fits(c.dtype) {
            return Err(Error::exec(format!(
                "value {v:?} does not fit column `{}` of `{}`",
                c.name, schema.name
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Column;
    use crate::value::DataType;

    fn table() -> RowTable {
        RowTable::new(
            TableSchema::new(
                "t",
                vec![
                    Column::new("id", DataType::Int).primary_key(),
                    Column::new("pid", DataType::Int).indexed(),
                    Column::new("v", DataType::Text),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn append_read_update_delete() {
        let mut t = table();
        let r0 = t.append(vec![Value::Int(1), Value::Null, Value::Text("a".into())]).unwrap();
        let r1 = t.append(vec![Value::Int(2), Value::Int(1), Value::Text("b".into())]).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell(r1, 2), Value::Text("b".into()));
        t.update_cell(r1, 2, Value::Text("c".into())).unwrap();
        assert_eq!(t.cell(r1, 2), Value::Text("c".into()));
        t.delete_row(r0).unwrap();
        assert_eq!(t.row_count(), 1);
        assert!(!t.is_live(r0));
        assert!(t.delete_row(r0).is_err());
        assert!(t.update_cell(r0, 2, Value::Null).is_err());
        assert_eq!(t.live_rows().collect::<Vec<_>>(), vec![r1]);
    }

    #[test]
    fn indexes_follow_mutations() {
        let mut t = table();
        t.append(vec![Value::Int(1), Value::Int(9), Value::Null]).unwrap();
        t.append(vec![Value::Int(2), Value::Int(9), Value::Null]).unwrap();
        assert_eq!(t.index_lookup(1, &Value::Int(9)).len(), 2);
        t.update_cell(0, 1, Value::Int(8)).unwrap();
        assert_eq!(t.index_lookup(1, &Value::Int(9)), &[1]);
        assert_eq!(t.index_lookup(1, &Value::Int(8)), &[0]);
        t.delete_row(1).unwrap();
        assert!(t.index_lookup(1, &Value::Int(9)).is_empty());
        assert!(t.has_index(0) && t.has_index(1) && !t.has_index(2));
    }

    #[test]
    fn constraint_violations() {
        let mut t = table();
        t.append(vec![Value::Int(1), Value::Null, Value::Null]).unwrap();
        assert!(
            t.append(vec![Value::Int(1), Value::Null, Value::Null]).is_err(),
            "duplicate primary key"
        );
        assert!(t.append(vec![Value::Int(2), Value::Null]).is_err(), "arity");
        assert!(
            t.append(vec![Value::Text("x".into()), Value::Null, Value::Null]).is_err(),
            "type mismatch"
        );
    }
}
