//! Column-oriented table storage (the MonetDB-like layout).
//!
//! Each column is a dense vector (`Vec<Option<i64>>` / `Vec<Option<String>>`),
//! so scans touch only the columns a query reads, while assembling a full
//! tuple costs one hop per column — the classic column-store trade-off.
//! Per-row `INSERT`s must touch every column vector, which is exactly why
//! the paper measures MonetDB loading slower than PostgreSQL on
//! row-by-row `INSERT` files.

use super::{index_plan, HashIndex};
use crate::catalog::TableSchema;
use crate::error::{Error, Result};
use crate::value::{DataType, Value};
use std::collections::BTreeMap;

/// One column vector.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Integer column; `None` is NULL.
    Int(Vec<Option<i64>>),
    /// Text column; `None` is NULL.
    Text(Vec<Option<String>>),
}

impl ColumnData {
    /// Empty column of the given type.
    pub fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Text => ColumnData::Text(Vec::new()),
        }
    }

    /// Length in slots.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Text(v) => v.len(),
        }
    }

    /// True when no slots exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clone the value at a slot.
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnData::Int(v) => v[i].map(Value::Int).unwrap_or(Value::Null),
            ColumnData::Text(v) => {
                v[i].as_ref().map(|s| Value::Text(s.clone())).unwrap_or(Value::Null)
            }
        }
    }

    /// Push a value (must fit the column type).
    pub fn push(&mut self, value: Value) -> Result<()> {
        match (self, value) {
            (ColumnData::Int(v), Value::Int(i)) => v.push(Some(i)),
            (ColumnData::Int(v), Value::Null) => v.push(None),
            (ColumnData::Text(v), Value::Text(t)) => v.push(Some(t)),
            (ColumnData::Text(v), Value::Null) => v.push(None),
            (_, other) => return Err(Error::exec(format!("type mismatch pushing {other:?}"))),
        }
        Ok(())
    }

    /// Overwrite a slot.
    pub fn set(&mut self, i: usize, value: Value) -> Result<()> {
        match (self, value) {
            (ColumnData::Int(v), Value::Int(x)) => v[i] = Some(x),
            (ColumnData::Int(v), Value::Null) => v[i] = None,
            (ColumnData::Text(v), Value::Text(t)) => v[i] = Some(t),
            (ColumnData::Text(v), Value::Null) => v[i] = None,
            (_, other) => return Err(Error::exec(format!("type mismatch setting {other:?}"))),
        }
        Ok(())
    }
}

/// A column-store table.
#[derive(Debug, Clone)]
pub struct ColTable {
    schema: TableSchema,
    columns: Vec<ColumnData>,
    live: Vec<bool>,
    live_count: usize,
    indexes: BTreeMap<usize, HashIndex>,
}

impl ColTable {
    /// Create an empty table for the schema.
    pub fn new(schema: TableSchema) -> Self {
        let columns = schema.columns.iter().map(|c| ColumnData::new(c.dtype)).collect();
        let indexes = index_plan(&schema)
            .into_iter()
            .map(|(col, unique)| (col, HashIndex::new(unique)))
            .collect();
        ColTable { schema, columns, live: Vec::new(), live_count: 0, indexes }
    }

    /// The table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Live row count.
    pub fn row_count(&self) -> usize {
        self.live_count
    }

    /// Physical slot count.
    pub fn capacity(&self) -> usize {
        self.live.len()
    }

    /// Is the slot live?
    pub fn is_live(&self, row: usize) -> bool {
        self.live.get(row).copied().unwrap_or(false)
    }

    /// Borrow a whole column vector.
    pub fn column(&self, col: usize) -> &ColumnData {
        &self.columns[col]
    }

    /// The liveness bitmap.
    pub fn live_bitmap(&self) -> &[bool] {
        &self.live
    }

    /// Clone one cell.
    pub fn cell(&self, row: usize, col: usize) -> Value {
        self.columns[col].get(row)
    }

    /// Append a tuple (touches every column vector); returns its slot.
    pub fn append(&mut self, row: Vec<Value>) -> Result<usize> {
        super::row::validate_row(&self.schema, &row)?;
        let slot = self.live.len();
        for (&col, index) in self.indexes.iter_mut() {
            index.insert(row[col].clone(), slot)?;
        }
        for (col, value) in row.into_iter().enumerate() {
            self.columns[col].push(value)?;
        }
        self.live.push(true);
        self.live_count += 1;
        Ok(slot)
    }

    /// Overwrite one cell, maintaining indexes.
    pub fn update_cell(&mut self, row: usize, col: usize, value: Value) -> Result<()> {
        if !self.is_live(row) {
            return Err(Error::exec("update of a deleted row"));
        }
        if !value.fits(self.schema.columns[col].dtype) {
            return Err(Error::exec(format!(
                "value {value:?} does not fit column `{}`",
                self.schema.columns[col].name
            )));
        }
        if let Some(index) = self.indexes.get_mut(&col) {
            let old = self.columns[col].get(row);
            index.remove(&old, row);
            index.insert(value.clone(), row)?;
        }
        self.columns[col].set(row, value)
    }

    /// Tombstone a row, maintaining indexes.
    pub fn delete_row(&mut self, row: usize) -> Result<()> {
        if !self.is_live(row) {
            return Err(Error::exec("double delete"));
        }
        for (&col, index) in self.indexes.iter_mut() {
            let key = self.columns[col].get(row);
            index.remove(&key, row);
        }
        self.live[row] = false;
        self.live_count -= 1;
        Ok(())
    }

    /// Rows filed under `key` in the index on `col`.
    pub fn index_lookup(&self, col: usize, key: &Value) -> &[usize] {
        self.indexes.get(&col).map(|i| i.lookup(key)).unwrap_or(&[])
    }

    /// Whether `col` carries an index.
    pub fn has_index(&self, col: usize) -> bool {
        self.indexes.contains_key(&col)
    }

    /// Iterate live slots.
    pub fn live_rows(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.live.len()).filter(move |&r| self.live[r])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Column;

    fn table() -> ColTable {
        ColTable::new(
            TableSchema::new(
                "t",
                vec![
                    Column::new("id", DataType::Int).primary_key(),
                    Column::new("pid", DataType::Int).indexed(),
                    Column::new("v", DataType::Text),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn append_read_update_delete() {
        let mut t = table();
        let r0 = t.append(vec![Value::Int(1), Value::Null, Value::Text("a".into())]).unwrap();
        let r1 = t.append(vec![Value::Int(2), Value::Int(1), Value::Text("b".into())]).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell(r0, 1), Value::Null);
        assert_eq!(t.cell(r1, 2), Value::Text("b".into()));
        t.update_cell(r1, 0, Value::Int(3)).unwrap();
        assert_eq!(t.index_lookup(0, &Value::Int(3)), &[r1]);
        assert!(t.index_lookup(0, &Value::Int(2)).is_empty());
        t.delete_row(r0).unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.capacity(), 2, "tombstoned slot remains");
    }

    #[test]
    fn column_access_is_typed() {
        let mut t = table();
        t.append(vec![Value::Int(1), Value::Null, Value::Text("x".into())]).unwrap();
        match t.column(0) {
            ColumnData::Int(v) => assert_eq!(v, &vec![Some(1)]),
            _ => panic!("id is an int column"),
        }
        match t.column(2) {
            ColumnData::Text(v) => assert_eq!(v, &vec![Some("x".to_string())]),
            _ => panic!("v is a text column"),
        }
    }

    #[test]
    fn type_errors_surface() {
        let mut t = table();
        assert!(t
            .append(vec![Value::Text("no".into()), Value::Null, Value::Null])
            .is_err());
        t.append(vec![Value::Int(1), Value::Null, Value::Null]).unwrap();
        assert!(t.update_cell(0, 0, Value::Text("no".into())).is_err());
    }
}
