//! SQL tokenizer. Keywords are case-insensitive; identifiers keep their
//! case. String literals use single quotes with `''` escaping.

use crate::error::{Error, Result};

/// A token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// Byte offset in the source.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (stored as written).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl TokenKind {
    /// Is this an identifier equal (case-insensitively) to `kw`?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                out.push(Token { kind: TokenKind::LParen, offset: i });
                i += 1;
            }
            b')' => {
                out.push(Token { kind: TokenKind::RParen, offset: i });
                i += 1;
            }
            b',' => {
                out.push(Token { kind: TokenKind::Comma, offset: i });
                i += 1;
            }
            b'.' => {
                out.push(Token { kind: TokenKind::Dot, offset: i });
                i += 1;
            }
            b';' => {
                out.push(Token { kind: TokenKind::Semicolon, offset: i });
                i += 1;
            }
            b'*' => {
                out.push(Token { kind: TokenKind::Star, offset: i });
                i += 1;
            }
            b'=' => {
                out.push(Token { kind: TokenKind::Eq, offset: i });
                i += 1;
            }
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token { kind: TokenKind::Ne, offset: i });
                i += 2;
            }
            b'<' => {
                let (kind, n) = match bytes.get(i + 1) {
                    Some(b'=') => (TokenKind::Le, 2),
                    Some(b'>') => (TokenKind::Ne, 2),
                    _ => (TokenKind::Lt, 1),
                };
                out.push(Token { kind, offset: i });
                i += n;
            }
            b'>' => {
                let (kind, n) = match bytes.get(i + 1) {
                    Some(b'=') => (TokenKind::Ge, 2),
                    _ => (TokenKind::Gt, 1),
                };
                out.push(Token { kind, offset: i });
                i += n;
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(Error::parse(start, "unterminated string literal")),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Advance one UTF-8 code point.
                            let ch_len = utf8_len(bytes[i]);
                            s.push_str(&input[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                out.push(Token { kind: TokenKind::Str(s), offset: start });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = input[start..i]
                    .parse()
                    .map_err(|_| Error::parse(start, "integer literal out of range"))?;
                out.push(Token { kind: TokenKind::Int(n), offset: start });
            }
            b'-' if bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = input[start..i]
                    .parse()
                    .map_err(|_| Error::parse(start, "integer literal out of range"))?;
                out.push(Token { kind: TokenKind::Int(n), offset: start });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(Error::parse(i, format!("unexpected character `{}`", other as char)))
            }
        }
    }
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = tokenize("SELECT a.id FROM t WHERE v = 'x''y' AND n >= -5; -- c").unwrap();
        let kinds: Vec<&TokenKind> = toks.iter().map(|t| &t.kind).collect();
        assert!(matches!(kinds[0], TokenKind::Ident(s) if s == "SELECT"));
        assert!(kinds.iter().any(|k| matches!(k, TokenKind::Str(s) if s == "x'y")));
        assert!(kinds.iter().any(|k| matches!(k, TokenKind::Int(-5))));
        assert!(kinds.iter().any(|k| matches!(k, TokenKind::Ge)));
        assert_eq!(kinds.last(), Some(&&TokenKind::Semicolon));
    }

    #[test]
    fn operators() {
        let toks = tokenize("= != <> < <= > >=").unwrap();
        let kinds: Vec<TokenKind> = toks.into_iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge
            ]
        );
    }

    #[test]
    fn keyword_case_insensitive() {
        let toks = tokenize("select SeLeCt SELECT").unwrap();
        assert!(toks.iter().all(|t| t.kind.is_kw("select")));
    }

    #[test]
    fn errors() {
        assert!(tokenize("'open").is_err());
        assert!(tokenize("a @ b").is_err());
        assert!(tokenize("99999999999999999999").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        let toks = tokenize("'héllo→'").unwrap();
        assert!(matches!(&toks[0].kind, TokenKind::Str(s) if s == "héllo→"));
    }
}
