//! SQL abstract syntax.

use crate::value::{DataType, Value};
use std::fmt;

/// A literal operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Literal {
    /// `NULL`
    Null,
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
}

impl Literal {
    /// Convert to a runtime value.
    pub fn to_value(&self) -> Value {
        match self {
            Literal::Null => Value::Null,
            Literal::Int(i) => Value::Int(*i),
            Literal::Str(s) => Value::Text(s.clone()),
        }
    }
}

/// Comparison operators in `WHERE` clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlCmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl SqlCmpOp {
    /// Apply to an ordering produced by [`Value::sql_cmp`].
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            SqlCmpOp::Eq => ord == Equal,
            SqlCmpOp::Ne => ord != Equal,
            SqlCmpOp::Lt => ord == Less,
            SqlCmpOp::Le => ord != Greater,
            SqlCmpOp::Gt => ord == Greater,
            SqlCmpOp::Ge => ord != Less,
        }
    }

    /// Three-valued application on values (`NULL` makes it false).
    pub fn compare(self, a: &Value, b: &Value) -> bool {
        a.sql_cmp(b).map(|o| self.eval(o)).unwrap_or(false)
    }
}

impl fmt::Display for SqlCmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SqlCmpOp::Eq => "=",
            SqlCmpOp::Ne => "!=",
            SqlCmpOp::Lt => "<",
            SqlCmpOp::Le => "<=",
            SqlCmpOp::Gt => ">",
            SqlCmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A possibly-qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    /// Table alias qualifier (`a` in `a.id`), if any.
    pub qualifier: Option<String>,
    /// Column name.
    pub column: String,
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// One side of a comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// A column reference.
    Col(ColRef),
    /// A literal.
    Lit(Literal),
}

/// A conjunct of the `WHERE` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condition {
    pub left: Operand,
    pub op: SqlCmpOp,
    pub right: Operand,
}

/// A table in the `FROM` list with its alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Catalog table name.
    pub table: String,
    /// Alias (defaults to the table name).
    pub alias: String,
}

/// One item of the projection list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// A plain column reference.
    Column(ColRef),
    /// `COUNT(*)` — number of result rows.
    CountStar,
    /// `COUNT(col)` — number of rows with a non-NULL value.
    Count(ColRef),
}

impl Projection {
    /// True for the aggregate forms.
    pub fn is_aggregate(&self) -> bool {
        !matches!(self, Projection::Column(_))
    }
}

/// A conjunctive `SELECT` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Select {
    /// Projected columns (or a single aggregate).
    pub projections: Vec<Projection>,
    /// `FROM` tables (comma join).
    pub from: Vec<TableRef>,
    /// `WHERE` conjuncts.
    pub conditions: Vec<Condition>,
}

/// The set operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    Union,
    Except,
    Intersect,
}

impl fmt::Display for SetOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetOpKind::Union => f.write_str("UNION"),
            SetOpKind::Except => f.write_str("EXCEPT"),
            SetOpKind::Intersect => f.write_str("INTERSECT"),
        }
    }
}

/// A query expression: a select block or a set operation between two
/// query expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryExpr {
    /// A plain `SELECT`.
    Select(Select),
    /// `left OP right` (set semantics, duplicates eliminated).
    SetOp {
        op: SetOpKind,
        left: Box<QueryExpr>,
        right: Box<QueryExpr>,
    },
}

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub dtype: DataType,
    pub primary_key: bool,
    pub indexed: bool,
}

/// A SQL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE [PRIMARY KEY | INDEX], …)`
    CreateTable { name: String, columns: Vec<ColumnDef> },
    /// `INSERT INTO name (cols) VALUES (…), (…)`
    Insert { table: String, columns: Vec<String>, rows: Vec<Vec<Literal>> },
    /// A query expression.
    Query(QueryExpr),
    /// `UPDATE name SET col = lit [, …] WHERE …`
    Update { table: String, assignments: Vec<(String, Literal)>, conditions: Vec<Condition> },
    /// `DELETE FROM name WHERE …`
    Delete { table: String, conditions: Vec<Condition> },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval() {
        use std::cmp::Ordering::*;
        assert!(SqlCmpOp::Eq.eval(Equal));
        assert!(!SqlCmpOp::Eq.eval(Less));
        assert!(SqlCmpOp::Le.eval(Equal));
        assert!(SqlCmpOp::Le.eval(Less));
        assert!(!SqlCmpOp::Le.eval(Greater));
        assert!(SqlCmpOp::Ne.eval(Greater));
    }

    #[test]
    fn null_comparisons_false() {
        assert!(!SqlCmpOp::Eq.compare(&Value::Null, &Value::Null));
        assert!(!SqlCmpOp::Ne.compare(&Value::Null, &Value::Int(1)));
        assert!(SqlCmpOp::Gt.compare(&Value::Int(2), &Value::Int(1)));
    }

    #[test]
    fn literal_conversion() {
        assert_eq!(Literal::Null.to_value(), Value::Null);
        assert_eq!(Literal::Int(3).to_value(), Value::Int(3));
        assert_eq!(Literal::Str("a".into()).to_value(), Value::Text("a".into()));
    }

    #[test]
    fn colref_display() {
        let c = ColRef { qualifier: Some("a".into()), column: "id".into() };
        assert_eq!(c.to_string(), "a.id");
        let c = ColRef { qualifier: None, column: "id".into() };
        assert_eq!(c.to_string(), "id");
    }
}
