//! Recursive-descent parser over the token stream.

use super::ast::*;
use super::lexer::{tokenize, Token, TokenKind};
use crate::error::{Error, Result};
use crate::value::DataType;

/// Parse a single statement (a trailing `;` is allowed).
pub fn parse_statement(input: &str) -> Result<Statement> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_statement()?;
    p.eat_if(|k| matches!(k, TokenKind::Semicolon));
    if !p.at_end() {
        return Err(p.err_here("trailing tokens after statement"));
    }
    Ok(stmt)
}

/// Parse a `;`-separated script.
pub fn parse_script(input: &str) -> Result<Vec<Statement>> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    while !p.at_end() {
        if p.eat_if(|k| matches!(k, TokenKind::Semicolon)) {
            continue;
        }
        out.push(p.parse_statement()?);
        if !p.at_end() && !p.eat_if(|k| matches!(k, TokenKind::Semicolon)) {
            return Err(p.err_here("expected `;` between statements"));
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn next(&mut self) -> Option<&TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| &t.kind);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, message: impl Into<String>) -> Error {
        let offset = self.tokens.get(self.pos).map(|t| t.offset).unwrap_or(usize::MAX);
        Error::parse(if offset == usize::MAX { 0 } else { offset }, message)
    }

    fn eat_if(&mut self, f: impl Fn(&TokenKind) -> bool) -> bool {
        if self.peek().is_some_and(&f) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        self.eat_if(|k| k.is_kw(kw))
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected keyword `{kw}`")))
        }
    }

    fn expect(&mut self, want: TokenKind, what: &str) -> Result<()> {
        if self.peek() == Some(&want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err_here(format!("expected {what}")))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(TokenKind::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err_here(format!("expected {what}"))),
        }
    }

    fn parse_statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Some(k) if k.is_kw("create") => self.parse_create(),
            Some(k) if k.is_kw("insert") => self.parse_insert(),
            Some(k) if k.is_kw("update") => self.parse_update(),
            Some(k) if k.is_kw("delete") => self.parse_delete(),
            Some(k) if k.is_kw("select") => Ok(Statement::Query(self.parse_query_expr()?)),
            Some(TokenKind::LParen) => Ok(Statement::Query(self.parse_query_expr()?)),
            _ => Err(self.err_here("expected a statement")),
        }
    }

    fn parse_create(&mut self) -> Result<Statement> {
        self.expect_kw("create")?;
        self.expect_kw("table")?;
        let name = self.expect_ident("table name")?;
        self.expect(TokenKind::LParen, "`(`")?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.expect_ident("column name")?;
            let dtype = match self.next() {
                Some(TokenKind::Ident(t)) if t.eq_ignore_ascii_case("int") => DataType::Int,
                Some(TokenKind::Ident(t)) if t.eq_ignore_ascii_case("text") => DataType::Text,
                _ => return Err(self.err_here("expected a type (INT or TEXT)")),
            };
            let mut primary_key = false;
            let mut indexed = false;
            if self.eat_kw("primary") {
                self.expect_kw("key")?;
                primary_key = true;
                indexed = true;
            } else if self.eat_kw("index") {
                indexed = true;
            }
            columns.push(ColumnDef { name: col_name, dtype, primary_key, indexed });
            if self.eat_if(|k| matches!(k, TokenKind::Comma)) {
                continue;
            }
            self.expect(TokenKind::RParen, "`)`")?;
            break;
        }
        Ok(Statement::CreateTable { name, columns })
    }

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.expect_ident("table name")?;
        self.expect(TokenKind::LParen, "`(`")?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.expect_ident("column name")?);
            if self.eat_if(|k| matches!(k, TokenKind::Comma)) {
                continue;
            }
            self.expect(TokenKind::RParen, "`)`")?;
            break;
        }
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect(TokenKind::LParen, "`(`")?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_literal()?);
                if self.eat_if(|k| matches!(k, TokenKind::Comma)) {
                    continue;
                }
                self.expect(TokenKind::RParen, "`)`")?;
                break;
            }
            rows.push(row);
            if !self.eat_if(|k| matches!(k, TokenKind::Comma)) {
                break;
            }
        }
        Ok(Statement::Insert { table, columns, rows })
    }

    fn parse_update(&mut self) -> Result<Statement> {
        self.expect_kw("update")?;
        let table = self.expect_ident("table name")?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident("column name")?;
            self.expect(TokenKind::Eq, "`=`")?;
            let lit = self.parse_literal()?;
            assignments.push((col, lit));
            if !self.eat_if(|k| matches!(k, TokenKind::Comma)) {
                break;
            }
        }
        let conditions = self.parse_where_opt()?;
        Ok(Statement::Update { table, assignments, conditions })
    }

    fn parse_delete(&mut self) -> Result<Statement> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.expect_ident("table name")?;
        let conditions = self.parse_where_opt()?;
        Ok(Statement::Delete { table, conditions })
    }

    fn parse_where_opt(&mut self) -> Result<Vec<Condition>> {
        if !self.eat_kw("where") {
            return Ok(Vec::new());
        }
        let mut out = vec![self.parse_condition()?];
        while self.eat_kw("and") {
            out.push(self.parse_condition()?);
        }
        Ok(out)
    }

    fn parse_condition(&mut self) -> Result<Condition> {
        let left = self.parse_operand()?;
        let op = match self.next() {
            Some(TokenKind::Eq) => SqlCmpOp::Eq,
            Some(TokenKind::Ne) => SqlCmpOp::Ne,
            Some(TokenKind::Lt) => SqlCmpOp::Lt,
            Some(TokenKind::Le) => SqlCmpOp::Le,
            Some(TokenKind::Gt) => SqlCmpOp::Gt,
            Some(TokenKind::Ge) => SqlCmpOp::Ge,
            _ => return Err(self.err_here("expected a comparison operator")),
        };
        let right = self.parse_operand()?;
        Ok(Condition { left, op, right })
    }

    fn parse_operand(&mut self) -> Result<Operand> {
        match self.peek() {
            Some(TokenKind::Int(_)) | Some(TokenKind::Str(_)) => {
                Ok(Operand::Lit(self.parse_literal()?))
            }
            Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case("null") => {
                self.pos += 1;
                Ok(Operand::Lit(Literal::Null))
            }
            Some(TokenKind::Ident(_)) => Ok(Operand::Col(self.parse_colref()?)),
            _ => Err(self.err_here("expected a column or literal")),
        }
    }

    fn parse_projection(&mut self) -> Result<Projection> {
        // `COUNT(...)` — only when followed by `(`, so a column named
        // `count` still works.
        let is_count = matches!(self.peek(), Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case("count"))
            && matches!(self.tokens.get(self.pos + 1).map(|t| &t.kind), Some(TokenKind::LParen));
        if is_count {
            self.pos += 2; // COUNT (
            let proj = if self.eat_if(|k| matches!(k, TokenKind::Star)) {
                Projection::CountStar
            } else {
                Projection::Count(self.parse_colref()?)
            };
            self.expect(TokenKind::RParen, "`)` after COUNT argument")?;
            return Ok(proj);
        }
        Ok(Projection::Column(self.parse_colref()?))
    }

    fn parse_colref(&mut self) -> Result<ColRef> {
        let first = self.expect_ident("column reference")?;
        if self.eat_if(|k| matches!(k, TokenKind::Dot)) {
            let column = self.expect_ident("column name after `.`")?;
            Ok(ColRef { qualifier: Some(first), column })
        } else {
            Ok(ColRef { qualifier: None, column: first })
        }
    }

    fn parse_literal(&mut self) -> Result<Literal> {
        let lit = match self.peek() {
            Some(TokenKind::Int(i)) => Literal::Int(*i),
            Some(TokenKind::Str(s)) => Literal::Str(s.clone()),
            Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case("null") => Literal::Null,
            _ => return Err(self.err_here("expected a literal")),
        };
        self.pos += 1;
        Ok(lit)
    }

    /// `query := primary ((UNION|EXCEPT|INTERSECT) primary)*` — left
    /// associative, equal precedence (parenthesize to group, as the
    /// paper's annotation query does).
    fn parse_query_expr(&mut self) -> Result<QueryExpr> {
        let mut left = self.parse_query_primary()?;
        loop {
            let op = if self.eat_kw("union") {
                SetOpKind::Union
            } else if self.eat_kw("except") {
                SetOpKind::Except
            } else if self.eat_kw("intersect") {
                SetOpKind::Intersect
            } else {
                return Ok(left);
            };
            let right = self.parse_query_primary()?;
            left = QueryExpr::SetOp { op, left: Box::new(left), right: Box::new(right) };
        }
    }

    fn parse_query_primary(&mut self) -> Result<QueryExpr> {
        if self.eat_if(|k| matches!(k, TokenKind::LParen)) {
            let q = self.parse_query_expr()?;
            self.expect(TokenKind::RParen, "`)`")?;
            Ok(q)
        } else {
            Ok(QueryExpr::Select(self.parse_select()?))
        }
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let mut projections = Vec::new();
        loop {
            projections.push(self.parse_projection()?);
            if !self.eat_if(|k| matches!(k, TokenKind::Comma)) {
                break;
            }
        }
        self.expect_kw("from")?;
        let mut from = Vec::new();
        loop {
            let table = self.expect_ident("table name")?;
            // Optional alias: `t alias` or `t AS alias`.
            let mut alias = table.clone();
            if self.eat_kw("as") {
                alias = self.expect_ident("alias")?;
            } else if let Some(TokenKind::Ident(s)) = self.peek() {
                let is_clause_kw = ["where", "union", "except", "intersect", "and"]
                    .iter()
                    .any(|kw| s.eq_ignore_ascii_case(kw));
                if !is_clause_kw {
                    alias = s.clone();
                    self.pos += 1;
                }
            }
            from.push(TableRef { table, alias });
            if !self.eat_if(|k| matches!(k, TokenKind::Comma)) {
                break;
            }
        }
        let conditions = self.parse_where_opt()?;
        Ok(Select { projections, from, conditions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table() {
        let s = parse_statement(
            "CREATE TABLE patient (id INT PRIMARY KEY, pid INT INDEX, v TEXT, s TEXT);",
        )
        .unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "patient");
                assert_eq!(columns.len(), 4);
                assert!(columns[0].primary_key && columns[0].indexed);
                assert!(!columns[1].primary_key && columns[1].indexed);
                assert!(!columns[3].indexed);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn insert_multi_row() {
        let s = parse_statement(
            "INSERT INTO t (id, pid, v) VALUES (1, NULL, 'a'), (2, 1, 'it''s')",
        )
        .unwrap();
        match s {
            Statement::Insert { table, columns, rows } => {
                assert_eq!(table, "t");
                assert_eq!(columns, vec!["id", "pid", "v"]);
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][1], Literal::Null);
                assert_eq!(rows[1][2], Literal::Str("it's".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_with_joins() {
        // The paper's Q1 verbatim.
        let s = parse_statement(
            "SELECT pat1.id FROM patients pats1, patient pat1 WHERE pats1.id = pat1.pid;",
        )
        .unwrap();
        match s {
            Statement::Query(QueryExpr::Select(sel)) => {
                assert_eq!(sel.projections.len(), 1);
                assert_eq!(sel.from.len(), 2);
                assert_eq!(sel.from[0].alias, "pats1");
                assert_eq!(sel.conditions.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn set_ops_with_parens() {
        // The paper's annotation query shape.
        let s = parse_statement(
            "(SELECT id FROM a UNION SELECT id FROM b) EXCEPT (SELECT id FROM c UNION SELECT id FROM d)",
        )
        .unwrap();
        match s {
            Statement::Query(QueryExpr::SetOp { op: SetOpKind::Except, left, right }) => {
                assert!(matches!(*left, QueryExpr::SetOp { op: SetOpKind::Union, .. }));
                assert!(matches!(*right, QueryExpr::SetOp { op: SetOpKind::Union, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn update_and_delete() {
        let s = parse_statement("UPDATE t SET s = '+' WHERE id = 7").unwrap();
        match s {
            Statement::Update { table, assignments, conditions } => {
                assert_eq!(table, "t");
                assert_eq!(assignments, vec![("s".to_string(), Literal::Str("+".into()))]);
                assert_eq!(conditions.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = parse_statement("DELETE FROM t WHERE pid = 3 AND v != 'x'").unwrap();
        match s {
            Statement::Delete { conditions, .. } => assert_eq!(conditions.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn script_parsing() {
        let stmts = parse_script(
            "CREATE TABLE t (id INT);\nINSERT INTO t (id) VALUES (1);\nSELECT id FROM t;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        // Empty statements tolerated.
        assert_eq!(parse_script(";;").unwrap().len(), 0);
    }

    #[test]
    fn as_alias_and_bare_alias() {
        let s = parse_statement("SELECT x.id FROM t AS x WHERE x.id > 1").unwrap();
        match s {
            Statement::Query(QueryExpr::Select(sel)) => assert_eq!(sel.from[0].alias, "x"),
            other => panic!("unexpected {other:?}"),
        }
        let s = parse_statement("SELECT id FROM t WHERE id = 1").unwrap();
        match s {
            Statement::Query(QueryExpr::Select(sel)) => {
                assert_eq!(sel.from[0].alias, "t");
                assert_eq!(sel.conditions.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("CREATE TABLE t (id FLOAT)").is_err());
        assert!(parse_statement("INSERT INTO t VALUES (1)").is_err(), "column list required");
        assert!(parse_statement("SELECT id FROM t WHERE").is_err());
        assert!(parse_statement("SELECT id FROM t garbage garbage").is_err());
        assert!(parse_statement("UPDATE t SET").is_err());
    }
}
