//! The SQL dialect: lexer, AST and recursive-descent parser.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    ColRef, ColumnDef, Condition, Literal, Operand, Projection, QueryExpr, Select, SetOpKind,
    SqlCmpOp, Statement, TableRef,
};
pub use parser::{parse_script, parse_statement};
