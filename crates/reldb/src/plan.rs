//! Logical plans and the planner.
//!
//! The planner turns a parsed query expression into a left-deep tree of
//! scans, hash equi-joins, residual filters and projections. Constant
//! predicates are pushed into the scans; join order is chosen greedily so
//! each join has a connecting equi-predicate whenever one exists (the
//! conjunctive queries produced by the ShreX translation always join
//! along `pid`/`id` chains, so the greedy order follows the XPath steps).

use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::sql::{ColRef, Operand, Projection, QueryExpr, Select, SetOpKind, SqlCmpOp};
use crate::value::Value;

/// A predicate evaluated on plan output offsets.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `col op literal`.
    ColLit { col: usize, op: SqlCmpOp, value: Value },
    /// `col op col` (both offsets into the node's output row).
    ColCol { left: usize, op: SqlCmpOp, right: usize },
}

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan a table, applying pushed-down constant filters
    /// (`(column index, op, literal)` on the table's own schema).
    Scan {
        /// Catalog table name.
        table: String,
        /// Pushed-down constant predicates.
        filters: Vec<(usize, SqlCmpOp, Value)>,
    },
    /// Hash equi-join on one column from each side; output is
    /// `left columns ++ right columns`.
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        /// Key offset in the left output.
        left_col: usize,
        /// Key offset in the right output.
        right_col: usize,
    },
    /// Cartesian product (only when no equi-predicate connects the sides).
    Cross { left: Box<Plan>, right: Box<Plan> },
    /// Residual predicates on the input's output row.
    Filter { input: Box<Plan>, preds: Vec<Pred> },
    /// Keep the listed offsets, renaming them.
    Project { input: Box<Plan>, cols: Vec<usize>, names: Vec<String> },
    /// `COUNT(*)` / `COUNT(col)` over the input: one row, one column.
    /// `col` is the input offset whose non-NULL values are counted
    /// (`None` counts rows).
    Aggregate { input: Box<Plan>, col: Option<usize> },
    /// A statically-empty relation (constant-false predicate).
    Empty { names: Vec<String> },
    /// Set operation with set (duplicate-eliminating) semantics.
    SetOp { kind: SetOpKind, left: Box<Plan>, right: Box<Plan> },
}

impl Plan {
    /// Number of output columns, given the catalog.
    pub fn arity(&self, catalog: &Catalog) -> usize {
        match self {
            Plan::Scan { table, .. } => {
                catalog.table(table).map(|t| t.arity()).unwrap_or(0)
            }
            Plan::Join { left, right, .. } | Plan::Cross { left, right } => {
                left.arity(catalog) + right.arity(catalog)
            }
            Plan::Filter { input, .. } => input.arity(catalog),
            Plan::Project { cols, .. } => cols.len(),
            Plan::Aggregate { .. } => 1,
            Plan::Empty { names } => names.len(),
            Plan::SetOp { left, .. } => left.arity(catalog),
        }
    }
}

impl Plan {
    /// Render the plan as an indented operator tree (the `EXPLAIN`
    /// output).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::Scan { table, filters } => {
                out.push_str(&format!("{pad}Scan {table}"));
                if !filters.is_empty() {
                    let fs: Vec<String> = filters
                        .iter()
                        .map(|(c, op, v)| format!("#{c} {op} {}", v.to_sql_literal()))
                        .collect();
                    out.push_str(&format!(" [{}]", fs.join(" AND ")));
                }
                out.push('\n');
            }
            Plan::Join { left, right, left_col, right_col } => {
                out.push_str(&format!("{pad}HashJoin left.#{left_col} = right.#{right_col}\n"));
                left.render_into(out, depth + 1);
                right.render_into(out, depth + 1);
            }
            Plan::Cross { left, right } => {
                out.push_str(&format!("{pad}CrossProduct\n"));
                left.render_into(out, depth + 1);
                right.render_into(out, depth + 1);
            }
            Plan::Filter { input, preds } => {
                let fs: Vec<String> = preds
                    .iter()
                    .map(|p| match p {
                        Pred::ColLit { col, op, value } => {
                            format!("#{col} {op} {}", value.to_sql_literal())
                        }
                        Pred::ColCol { left, op, right } => format!("#{left} {op} #{right}"),
                    })
                    .collect();
                out.push_str(&format!("{pad}Filter [{}]\n", fs.join(" AND ")));
                input.render_into(out, depth + 1);
            }
            Plan::Project { input, cols, names } => {
                let ps: Vec<String> = cols
                    .iter()
                    .zip(names)
                    .map(|(c, n)| format!("#{c} as {n}"))
                    .collect();
                out.push_str(&format!("{pad}Project [{}]\n", ps.join(", ")));
                input.render_into(out, depth + 1);
            }
            Plan::Aggregate { input, col } => {
                let what = col.map(|c| format!("#{c}")).unwrap_or_else(|| "*".to_string());
                out.push_str(&format!("{pad}Aggregate COUNT({what})\n"));
                input.render_into(out, depth + 1);
            }
            Plan::Empty { .. } => {
                out.push_str(&format!("{pad}Empty\n"));
            }
            Plan::SetOp { kind, left, right } => {
                out.push_str(&format!("{pad}{kind}\n"));
                left.render_into(out, depth + 1);
                right.render_into(out, depth + 1);
            }
        }
    }
}

/// Plan a query expression.
pub fn plan_query(catalog: &Catalog, q: &QueryExpr) -> Result<Plan> {
    match q {
        QueryExpr::Select(sel) => plan_select(catalog, sel),
        QueryExpr::SetOp { op, left, right } => {
            let l = plan_query(catalog, left)?;
            let r = plan_query(catalog, right)?;
            if l.arity(catalog) != r.arity(catalog) {
                return Err(Error::plan(format!(
                    "set operation arity mismatch: {} vs {}",
                    l.arity(catalog),
                    r.arity(catalog)
                )));
            }
            Ok(Plan::SetOp { kind: *op, left: Box::new(l), right: Box::new(r) })
        }
    }
}

/// Resolution context for one `SELECT` block.
struct Scope<'a> {
    catalog: &'a Catalog,
    /// `(alias, table name, arity)` in FROM order.
    tables: Vec<(String, String, usize)>,
}

impl Scope<'_> {
    /// Resolve a column reference to `(table position, column index)`.
    fn resolve(&self, c: &ColRef) -> Result<(usize, usize)> {
        match &c.qualifier {
            Some(q) => {
                let (ti, (_, tname, _)) = self
                    .tables
                    .iter()
                    .enumerate()
                    .find(|(_, (a, _, _))| a == q)
                    .ok_or_else(|| Error::plan(format!("unknown alias `{q}`")))?;
                let schema = self.catalog.require_table(tname)?;
                let ci = schema
                    .column_index(&c.column)
                    .ok_or_else(|| {
                        Error::plan(format!("unknown column `{q}.{}`", c.column))
                    })?;
                Ok((ti, ci))
            }
            None => {
                let mut hit = None;
                for (ti, (_, tname, _)) in self.tables.iter().enumerate() {
                    let schema = self.catalog.require_table(tname)?;
                    if let Some(ci) = schema.column_index(&c.column) {
                        if hit.is_some() {
                            return Err(Error::plan(format!(
                                "ambiguous column `{}`",
                                c.column
                            )));
                        }
                        hit = Some((ti, ci));
                    }
                }
                hit.ok_or_else(|| Error::plan(format!("unknown column `{}`", c.column)))
            }
        }
    }
}

fn plan_select(catalog: &Catalog, sel: &Select) -> Result<Plan> {
    if sel.from.is_empty() {
        return Err(Error::plan("FROM list is empty"));
    }
    let mut tables = Vec::new();
    for tr in &sel.from {
        let schema = catalog.require_table(&tr.table)?;
        if tables.iter().any(|(a, _, _)| a == &tr.alias) {
            return Err(Error::plan(format!("duplicate alias `{}`", tr.alias)));
        }
        tables.push((tr.alias.clone(), tr.table.clone(), schema.arity()));
    }
    let scope = Scope { catalog, tables };

    // Classify conditions.
    let mut scan_filters: Vec<Vec<(usize, SqlCmpOp, Value)>> =
        vec![Vec::new(); scope.tables.len()];
    // (table_a, col_a, table_b, col_b) equi-joins.
    let mut joins: Vec<(usize, usize, usize, usize)> = Vec::new();
    // Residual col-col predicates in (table, col) terms.
    type ColPos = (usize, usize);
    let mut residual: Vec<(ColPos, SqlCmpOp, ColPos)> = Vec::new();

    for cond in &sel.conditions {
        match (&cond.left, &cond.right) {
            (Operand::Lit(a), Operand::Lit(b)) => {
                if !cond.op.compare(&a.to_value(), &b.to_value()) {
                    let names = projection_names(sel);
                    return Ok(Plan::Empty { names });
                }
            }
            (Operand::Col(c), Operand::Lit(l)) => {
                let (ti, ci) = scope.resolve(c)?;
                scan_filters[ti].push((ci, cond.op, l.to_value()));
            }
            (Operand::Lit(l), Operand::Col(c)) => {
                let (ti, ci) = scope.resolve(c)?;
                scan_filters[ti].push((ci, flip(cond.op), l.to_value()));
            }
            (Operand::Col(a), Operand::Col(b)) => {
                let (ta, ca) = scope.resolve(a)?;
                let (tb, cb) = scope.resolve(b)?;
                if ta != tb && cond.op == SqlCmpOp::Eq {
                    joins.push((ta, ca, tb, cb));
                } else {
                    residual.push(((ta, ca), cond.op, (tb, cb)));
                }
            }
        }
    }

    // Greedy left-deep join order.
    let n = scope.tables.len();
    let mut placed: Vec<usize> = Vec::with_capacity(n); // table positions in placement order
    let mut base: Vec<Option<usize>> = vec![None; n]; // output offset base per table
    let mut used_join = vec![false; joins.len()];

    let mk_scan = |ti: usize| Plan::Scan {
        table: scope.tables[ti].1.clone(),
        filters: scan_filters[ti].clone(),
    };

    placed.push(0);
    base[0] = Some(0);
    let mut plan = mk_scan(0);
    let mut width = scope.tables[0].2;

    while placed.len() < n {
        // Find an unused equi-join linking a placed and an unplaced table.
        let next = joins.iter().enumerate().find_map(|(ji, &(ta, ca, tb, cb))| {
            if used_join[ji] {
                return None;
            }
            match (base[ta].is_some(), base[tb].is_some()) {
                (true, false) => Some((ji, ta, ca, tb, cb)),
                (false, true) => Some((ji, tb, cb, ta, ca)),
                _ => None,
            }
        });
        match next {
            Some((ji, placed_t, placed_c, new_t, new_c)) => {
                used_join[ji] = true;
                let right = mk_scan(new_t);
                base[new_t] = Some(width);
                placed.push(new_t);
                let left_col = base[placed_t].expect("placed") + placed_c;
                plan = Plan::Join {
                    left: Box::new(plan),
                    right: Box::new(right),
                    left_col,
                    right_col: new_c,
                };
                width += scope.tables[new_t].2;
            }
            None => {
                // No connecting join: cross product with the first
                // unplaced table.
                let new_t = (0..n).find(|t| base[*t].is_none()).expect("one remains");
                let right = mk_scan(new_t);
                base[new_t] = Some(width);
                placed.push(new_t);
                plan = Plan::Cross { left: Box::new(plan), right: Box::new(right) };
                width += scope.tables[new_t].2;
            }
        }
    }

    // Remaining equi-joins between already-placed tables and residual
    // comparisons become a filter.
    let mut preds: Vec<Pred> = Vec::new();
    for (ji, &(ta, ca, tb, cb)) in joins.iter().enumerate() {
        if !used_join[ji] {
            preds.push(Pred::ColCol {
                left: base[ta].expect("placed") + ca,
                op: SqlCmpOp::Eq,
                right: base[tb].expect("placed") + cb,
            });
        }
    }
    for ((ta, ca), op, (tb, cb)) in residual {
        preds.push(Pred::ColCol {
            left: base[ta].expect("placed") + ca,
            op,
            right: base[tb].expect("placed") + cb,
        });
    }
    if !preds.is_empty() {
        plan = Plan::Filter { input: Box::new(plan), preds };
    }

    // Projection. A single aggregate becomes an Aggregate node; mixing
    // aggregates with plain columns needs GROUP BY, which the dialect
    // does not have.
    if sel.projections.iter().any(Projection::is_aggregate) {
        if sel.projections.len() != 1 {
            return Err(Error::plan(
                "aggregates cannot be mixed with other projections (no GROUP BY)",
            ));
        }
        let col = match &sel.projections[0] {
            Projection::CountStar => None,
            Projection::Count(c) => {
                let (ti, ci) = scope.resolve(c)?;
                Some(base[ti].expect("placed") + ci)
            }
            Projection::Column(_) => unreachable!("is_aggregate checked"),
        };
        return Ok(Plan::Aggregate { input: Box::new(plan), col });
    }
    let mut cols = Vec::new();
    for p in &sel.projections {
        let Projection::Column(c) = p else { unreachable!("aggregates handled above") };
        let (ti, ci) = scope.resolve(c)?;
        cols.push(base[ti].expect("placed") + ci);
    }
    let names = projection_names(sel);
    Ok(Plan::Project { input: Box::new(plan), cols, names })
}

fn projection_names(sel: &Select) -> Vec<String> {
    sel.projections
        .iter()
        .map(|p| match p {
            Projection::Column(c) => c.column.clone(),
            Projection::CountStar | Projection::Count(_) => "count".to_string(),
        })
        .collect()
}

fn flip(op: SqlCmpOp) -> SqlCmpOp {
    match op {
        SqlCmpOp::Eq => SqlCmpOp::Eq,
        SqlCmpOp::Ne => SqlCmpOp::Ne,
        SqlCmpOp::Lt => SqlCmpOp::Gt,
        SqlCmpOp::Le => SqlCmpOp::Ge,
        SqlCmpOp::Gt => SqlCmpOp::Lt,
        SqlCmpOp::Ge => SqlCmpOp::Le,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, Column, TableSchema};
    use crate::sql::parse_statement;
    use crate::sql::Statement;
    use crate::value::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for name in ["a", "b", "c"] {
            c.add_table(
                TableSchema::new(
                    name,
                    vec![
                        Column::new("id", DataType::Int).primary_key(),
                        Column::new("pid", DataType::Int).indexed(),
                        Column::new("v", DataType::Text),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        }
        c
    }

    fn plan(sql: &str) -> Result<Plan> {
        let c = catalog();
        match parse_statement(sql).unwrap() {
            Statement::Query(q) => plan_query(&c, &q),
            other => panic!("not a query: {other:?}"),
        }
    }

    #[test]
    fn pushes_constant_filters_into_scan() {
        let p = plan("SELECT id FROM a WHERE v = 'x' AND id > 3").unwrap();
        match p {
            Plan::Project { input, cols, names } => {
                assert_eq!(cols, vec![0]);
                assert_eq!(names, vec!["id"]);
                match *input {
                    Plan::Scan { table, filters } => {
                        assert_eq!(table, "a");
                        assert_eq!(filters.len(), 2);
                    }
                    other => panic!("expected scan, got {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn builds_join_chain() {
        let p = plan(
            "SELECT y.id FROM a x, b y, c z \
             WHERE x.id = y.pid AND y.id = z.pid AND z.v = 'q'",
        )
        .unwrap();
        // Project over Join(Join(a,b),c); z's filter pushed to its scan.
        match p {
            Plan::Project { input, cols, .. } => {
                assert_eq!(cols, vec![3], "y.id at offset 3 (after a's 3 cols)");
                match *input {
                    Plan::Join { left, right, left_col, right_col } => {
                        assert_eq!(left_col, 3, "y.id");
                        assert_eq!(right_col, 1, "z.pid");
                        assert!(matches!(*left, Plan::Join { .. }));
                        match *right {
                            Plan::Scan { table, filters } => {
                                assert_eq!(table, "c");
                                assert_eq!(filters.len(), 1);
                            }
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn flipped_literal_condition() {
        let p = plan("SELECT id FROM a WHERE 3 < id").unwrap();
        match p {
            Plan::Project { input, .. } => match *input {
                Plan::Scan { filters, .. } => {
                    assert_eq!(filters[0].1, SqlCmpOp::Gt, "3 < id becomes id > 3");
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cross_product_when_unconnected() {
        let p = plan("SELECT x.id FROM a x, b y").unwrap();
        match p {
            Plan::Project { input, .. } => assert!(matches!(*input, Plan::Cross { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn constant_false_becomes_empty() {
        let p = plan("SELECT id FROM a WHERE 1 = 2").unwrap();
        assert!(matches!(p, Plan::Empty { .. }));
        let p = plan("SELECT id FROM a WHERE 1 = 1").unwrap();
        assert!(matches!(p, Plan::Project { .. }), "constant-true dropped");
    }

    #[test]
    fn non_equi_col_col_is_residual_filter() {
        let p = plan("SELECT x.id FROM a x, b y WHERE x.id = y.pid AND x.id < y.id").unwrap();
        match p {
            Plan::Project { input, .. } => match *input {
                Plan::Filter { preds, input } => {
                    assert_eq!(preds.len(), 1);
                    assert!(matches!(*input, Plan::Join { .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn resolution_errors() {
        assert!(plan("SELECT id FROM missing").is_err());
        assert!(plan("SELECT nope FROM a").is_err());
        assert!(plan("SELECT w.id FROM a").is_err());
        assert!(plan("SELECT id FROM a x, b x").is_err(), "duplicate alias");
        assert!(plan("SELECT id FROM a, b").is_err(), "ambiguous bare column");
        assert!(
            plan("SELECT a.id FROM a UNION SELECT b.id, b.pid FROM b").is_err(),
            "set-op arity"
        );
    }

    #[test]
    fn setop_plan_shape() {
        let p = plan("SELECT id FROM a UNION SELECT id FROM b EXCEPT SELECT id FROM c").unwrap();
        // Left-associative: (a UNION b) EXCEPT c.
        match p {
            Plan::SetOp { kind: SetOpKind::Except, left, .. } => {
                assert!(matches!(*left, Plan::SetOp { kind: SetOpKind::Union, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
