//! Tuple-at-a-time execution over row-store tables — the PostgreSQL-like
//! engine. Every operator consumes and produces whole tuples; predicates
//! are evaluated row by row.

use super::{set_op, ResultSet};
use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::plan::{Plan, Pred};
use crate::sql::SqlCmpOp;
use crate::storage::RowTable;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};

/// Execute a plan against row tables.
pub fn execute(
    plan: &Plan,
    catalog: &Catalog,
    tables: &BTreeMap<String, RowTable>,
) -> Result<ResultSet> {
    let rows = eval(plan, tables)?;
    Ok(ResultSet { columns: output_names(plan, catalog), rows })
}

/// Output column names of a plan.
pub(crate) fn output_names(plan: &Plan, catalog: &Catalog) -> Vec<String> {
    match plan {
        Plan::Scan { table, .. } => catalog
            .table(table)
            .map(|t| t.columns.iter().map(|c| c.name.clone()).collect())
            .unwrap_or_default(),
        Plan::Join { left, right, .. } | Plan::Cross { left, right } => {
            let mut n = output_names(left, catalog);
            n.extend(output_names(right, catalog));
            n
        }
        Plan::Filter { input, .. } => output_names(input, catalog),
        Plan::Project { names, .. } => names.clone(),
        Plan::Aggregate { .. } => vec!["count".to_string()],
        Plan::Empty { names } => names.clone(),
        Plan::SetOp { left, .. } => output_names(left, catalog),
    }
}

fn eval(plan: &Plan, tables: &BTreeMap<String, RowTable>) -> Result<Vec<Vec<Value>>> {
    match plan {
        Plan::Scan { table, filters } => {
            let t = tables
                .get(table)
                .ok_or_else(|| Error::exec(format!("missing table `{table}`")))?;
            Ok(scan(t, filters))
        }
        Plan::Join { left, right, left_col, right_col } => {
            let l = eval(left, tables)?;
            let r = eval(right, tables)?;
            Ok(hash_join(l, r, *left_col, *right_col))
        }
        Plan::Cross { left, right } => {
            let l = eval(left, tables)?;
            let r = eval(right, tables)?;
            let mut out = Vec::with_capacity(l.len() * r.len());
            for lr in &l {
                for rr in &r {
                    let mut row = lr.clone();
                    row.extend(rr.iter().cloned());
                    out.push(row);
                }
            }
            Ok(out)
        }
        Plan::Filter { input, preds } => {
            let mut rows = eval(input, tables)?;
            rows.retain(|row| preds.iter().all(|p| pred_holds(p, row)));
            Ok(rows)
        }
        Plan::Project { input, cols, .. } => {
            let rows = eval(input, tables)?;
            Ok(rows
                .into_iter()
                .map(|row| cols.iter().map(|&c| row[c].clone()).collect())
                .collect())
        }
        Plan::Aggregate { input, col } => {
            let rows = eval(input, tables)?;
            let n = match col {
                None => rows.len(),
                Some(c) => rows.iter().filter(|r| !r[*c].is_null()).count(),
            };
            Ok(vec![vec![Value::Int(n as i64)]])
        }
        Plan::Empty { .. } => Ok(Vec::new()),
        Plan::SetOp { kind, left, right } => {
            let l = eval(left, tables)?;
            let r = eval(right, tables)?;
            Ok(set_op(*kind, l, r))
        }
    }
}

fn scan(t: &RowTable, filters: &[(usize, SqlCmpOp, Value)]) -> Vec<Vec<Value>> {
    // Index fast path: an equality filter on an indexed column narrows the
    // candidate rows to the index bucket.
    if let Some((col, _, key)) = filters
        .iter()
        .find(|(col, op, _)| *op == SqlCmpOp::Eq && t.has_index(*col))
        .map(|(c, o, v)| (*c, *o, v))
    {
        return t
            .index_lookup(col, key)
            .iter()
            .copied()
            .filter(|&r| t.is_live(r))
            .filter(|&r| row_passes(t, r, filters))
            .map(|r| t.row(r).to_vec())
            .collect();
    }
    t.live_rows()
        .filter(|&r| row_passes(t, r, filters))
        .map(|r| t.row(r).to_vec())
        .collect()
}

fn row_passes(t: &RowTable, row: usize, filters: &[(usize, SqlCmpOp, Value)]) -> bool {
    filters.iter().all(|(col, op, lit)| op.compare(&t.row(row)[*col], lit))
}

fn pred_holds(pred: &Pred, row: &[Value]) -> bool {
    match pred {
        Pred::ColLit { col, op, value } => op.compare(&row[*col], value),
        Pred::ColCol { left, op, right } => op.compare(&row[*left], &row[*right]),
    }
}

fn hash_join(
    left: Vec<Vec<Value>>,
    right: Vec<Vec<Value>>,
    left_col: usize,
    right_col: usize,
) -> Vec<Vec<Value>> {
    let mut build: HashMap<&Value, Vec<usize>> = HashMap::with_capacity(left.len());
    for (i, row) in left.iter().enumerate() {
        let key = &row[left_col];
        if !key.is_null() {
            build.entry(key).or_default().push(i);
        }
    }
    let mut out = Vec::new();
    for rrow in &right {
        let key = &rrow[right_col];
        if key.is_null() {
            continue;
        }
        if let Some(matches) = build.get(key) {
            for &li in matches {
                let mut row = left[li].clone();
                row.extend(rrow.iter().cloned());
                out.push(row);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, Column, TableSchema};
    use crate::plan::plan_query;
    use crate::sql::{parse_statement, Statement};
    use crate::value::DataType;

    fn setup() -> (Catalog, BTreeMap<String, RowTable>) {
        let mut catalog = Catalog::new();
        let mut tables = BTreeMap::new();
        for name in ["parent", "child"] {
            let schema = TableSchema::new(
                name,
                vec![
                    Column::new("id", DataType::Int).primary_key(),
                    Column::new("pid", DataType::Int).indexed(),
                    Column::new("v", DataType::Text),
                ],
            )
            .unwrap();
            catalog.add_table(schema.clone()).unwrap();
            tables.insert(name.to_string(), RowTable::new(schema));
        }
        let p = tables.get_mut("parent").unwrap();
        p.append(vec![Value::Int(1), Value::Null, Value::Text("p1".into())]).unwrap();
        p.append(vec![Value::Int(2), Value::Null, Value::Text("p2".into())]).unwrap();
        let c = tables.get_mut("child").unwrap();
        c.append(vec![Value::Int(10), Value::Int(1), Value::Text("a".into())]).unwrap();
        c.append(vec![Value::Int(11), Value::Int(1), Value::Text("b".into())]).unwrap();
        c.append(vec![Value::Int(12), Value::Int(2), Value::Text("a".into())]).unwrap();
        (catalog, tables)
    }

    fn run(sql: &str) -> ResultSet {
        let (catalog, tables) = setup();
        let q = match parse_statement(sql).unwrap() {
            Statement::Query(q) => q,
            other => panic!("not a query: {other:?}"),
        };
        let plan = plan_query(&catalog, &q).unwrap();
        execute(&plan, &catalog, &tables).unwrap()
    }

    #[test]
    fn scan_with_filter() {
        let rs = run("SELECT id FROM child WHERE v = 'a'");
        assert_eq!(rs.column_as_int_set(0).into_iter().collect::<Vec<_>>(), vec![10, 12]);
        assert_eq!(rs.columns, vec!["id"]);
    }

    #[test]
    fn index_fast_path_matches_scan() {
        let rs = run("SELECT id FROM child WHERE pid = 1 AND v = 'b'");
        assert_eq!(rs.column_as_ints(0), vec![11]);
    }

    #[test]
    fn join_parent_child() {
        let rs = run(
            "SELECT c.id FROM parent p, child c WHERE p.id = c.pid AND p.v = 'p1'",
        );
        assert_eq!(rs.column_as_int_set(0).into_iter().collect::<Vec<_>>(), vec![10, 11]);
    }

    #[test]
    fn union_except_intersect() {
        let rs = run(
            "SELECT id FROM child WHERE v = 'a' UNION SELECT id FROM child WHERE v = 'b'",
        );
        assert_eq!(rs.column_as_int_set(0).len(), 3);
        let rs = run(
            "(SELECT id FROM child) EXCEPT (SELECT id FROM child WHERE v = 'a')",
        );
        assert_eq!(rs.column_as_ints(0), vec![11]);
        let rs = run(
            "(SELECT id FROM child WHERE pid = 1) INTERSECT (SELECT id FROM child WHERE v = 'a')",
        );
        assert_eq!(rs.column_as_ints(0), vec![10]);
    }

    #[test]
    fn cross_product() {
        let rs = run("SELECT p.id FROM parent p, child c");
        assert_eq!(rs.len(), 6);
    }

    #[test]
    fn nulls_never_join() {
        let rs = run("SELECT c.id FROM parent p, child c WHERE p.pid = c.pid");
        assert!(rs.is_empty(), "parent.pid is NULL and must not match");
    }
}
