//! Column-at-a-time execution over column-store tables — the MonetDB-like
//! engine. Operators work on whole column vectors: scans compute selection
//! vectors against single columns, joins build and probe on key columns
//! and gather the payload columns afterwards. Tuples are only assembled at
//! the result boundary (and inside set operations, which are inherently
//! tuple-keyed).

use super::{set_op, ResultSet};
use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::plan::{Plan, Pred};
use crate::sql::SqlCmpOp;
use crate::storage::{ColTable, ColumnData};
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};

/// A column-major intermediate result.
#[derive(Debug, Clone)]
struct Batch {
    cols: Vec<Vec<Value>>,
    len: usize,
}

impl Batch {
    fn empty(arity: usize) -> Batch {
        Batch { cols: vec![Vec::new(); arity], len: 0 }
    }
}

/// Execute a plan against column tables.
pub fn execute(
    plan: &Plan,
    catalog: &Catalog,
    tables: &BTreeMap<String, ColTable>,
) -> Result<ResultSet> {
    let batch = eval(plan, catalog, tables)?;
    // Transpose to row-major at the boundary.
    let mut rows = Vec::with_capacity(batch.len);
    for i in 0..batch.len {
        rows.push(batch.cols.iter().map(|c| c[i].clone()).collect());
    }
    Ok(ResultSet { columns: super::row_exec::output_names(plan, catalog), rows })
}

#[allow(clippy::only_used_in_recursion)]
fn eval(
    plan: &Plan,
    catalog: &Catalog,
    tables: &BTreeMap<String, ColTable>,
) -> Result<Batch> {
    match plan {
        Plan::Scan { table, filters } => {
            let t = tables
                .get(table)
                .ok_or_else(|| Error::exec(format!("missing table `{table}`")))?;
            Ok(scan(t, filters))
        }
        Plan::Join { left, right, left_col, right_col } => {
            let l = eval(left, catalog, tables)?;
            let r = eval(right, catalog, tables)?;
            Ok(hash_join(l, r, *left_col, *right_col))
        }
        Plan::Cross { left, right } => {
            let l = eval(left, catalog, tables)?;
            let r = eval(right, catalog, tables)?;
            let pairs: Vec<(usize, usize)> = (0..l.len)
                .flat_map(|i| (0..r.len).map(move |j| (i, j)))
                .collect();
            Ok(gather_pairs(&l, &r, &pairs))
        }
        Plan::Filter { input, preds } => {
            let b = eval(input, catalog, tables)?;
            // Vectorized: each predicate refines the selection vector by
            // sweeping whole columns.
            let mut sel: Vec<usize> = (0..b.len).collect();
            for p in preds {
                sel = match p {
                    Pred::ColLit { col, op, value } => sel
                        .into_iter()
                        .filter(|&i| op.compare(&b.cols[*col][i], value))
                        .collect(),
                    Pred::ColCol { left, op, right } => sel
                        .into_iter()
                        .filter(|&i| op.compare(&b.cols[*left][i], &b.cols[*right][i]))
                        .collect(),
                };
            }
            Ok(gather(&b, &sel))
        }
        Plan::Project { input, cols, .. } => {
            let b = eval(input, catalog, tables)?;
            Ok(Batch {
                cols: cols.iter().map(|&c| b.cols[c].clone()).collect(),
                len: b.len,
            })
        }
        Plan::Aggregate { input, col } => {
            let b = eval(input, catalog, tables)?;
            let n = match col {
                None => b.len,
                Some(c) => b.cols[*c].iter().filter(|v| !v.is_null()).count(),
            };
            Ok(Batch { cols: vec![vec![Value::Int(n as i64)]], len: 1 })
        }
        Plan::Empty { names } => Ok(Batch::empty(names.len())),
        Plan::SetOp { kind, left, right } => {
            let l = eval(left, catalog, tables)?;
            let r = eval(right, catalog, tables)?;
            let arity = l.cols.len();
            let rows = set_op(*kind, to_rows(l), to_rows(r));
            Ok(from_rows(rows, arity))
        }
    }
}

fn scan(t: &ColTable, filters: &[(usize, SqlCmpOp, Value)]) -> Batch {
    // Initial selection: index bucket when an equality filter hits an
    // indexed column, the live bitmap otherwise.
    let mut sel: Vec<usize> = if let Some((col, key)) = filters
        .iter()
        .find(|(col, op, _)| *op == SqlCmpOp::Eq && t.has_index(*col))
        .map(|(c, _, v)| (*c, v))
    {
        t.index_lookup(col, key).iter().copied().filter(|&r| t.is_live(r)).collect()
    } else {
        t.live_rows().collect()
    };
    // One column sweep per filter.
    for (col, op, lit) in filters {
        let column = t.column(*col);
        sel.retain(|&r| op.compare(&column.get(r), lit));
    }
    // Gather the surviving rows column by column.
    let cols = (0..t.schema().arity())
        .map(|c| gather_column(t.column(c), &sel))
        .collect();
    Batch { cols, len: sel.len() }
}

fn gather_column(col: &ColumnData, sel: &[usize]) -> Vec<Value> {
    sel.iter().map(|&r| col.get(r)).collect()
}

fn gather(b: &Batch, sel: &[usize]) -> Batch {
    Batch {
        cols: b
            .cols
            .iter()
            .map(|c| sel.iter().map(|&i| c[i].clone()).collect())
            .collect(),
        len: sel.len(),
    }
}

fn gather_pairs(l: &Batch, r: &Batch, pairs: &[(usize, usize)]) -> Batch {
    let mut cols: Vec<Vec<Value>> = Vec::with_capacity(l.cols.len() + r.cols.len());
    for c in &l.cols {
        cols.push(pairs.iter().map(|&(i, _)| c[i].clone()).collect());
    }
    for c in &r.cols {
        cols.push(pairs.iter().map(|&(_, j)| c[j].clone()).collect());
    }
    Batch { cols, len: pairs.len() }
}

fn hash_join(l: Batch, r: Batch, left_col: usize, right_col: usize) -> Batch {
    // Build on the left key column, probe with the right key column —
    // classic column-store join: only key columns are touched until the
    // final gather.
    let mut build: HashMap<&Value, Vec<usize>> = HashMap::with_capacity(l.len);
    for (i, v) in l.cols[left_col].iter().enumerate() {
        if !v.is_null() {
            build.entry(v).or_default().push(i);
        }
    }
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for (j, v) in r.cols[right_col].iter().enumerate() {
        if v.is_null() {
            continue;
        }
        if let Some(matches) = build.get(v) {
            pairs.extend(matches.iter().map(|&i| (i, j)));
        }
    }
    gather_pairs(&l, &r, &pairs)
}

fn to_rows(b: Batch) -> Vec<Vec<Value>> {
    (0..b.len)
        .map(|i| b.cols.iter().map(|c| c[i].clone()).collect())
        .collect()
}

fn from_rows(rows: Vec<Vec<Value>>, arity: usize) -> Batch {
    let mut cols = vec![Vec::with_capacity(rows.len()); arity];
    for row in &rows {
        for (c, v) in row.iter().enumerate() {
            cols[c].push(v.clone());
        }
    }
    Batch { cols, len: rows.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, Column, TableSchema};
    use crate::plan::plan_query;
    use crate::sql::{parse_statement, Statement};
    use crate::value::DataType;

    fn setup() -> (Catalog, BTreeMap<String, ColTable>) {
        let mut catalog = Catalog::new();
        let mut tables = BTreeMap::new();
        for name in ["parent", "child"] {
            let schema = TableSchema::new(
                name,
                vec![
                    Column::new("id", DataType::Int).primary_key(),
                    Column::new("pid", DataType::Int).indexed(),
                    Column::new("v", DataType::Text),
                ],
            )
            .unwrap();
            catalog.add_table(schema.clone()).unwrap();
            tables.insert(name.to_string(), ColTable::new(schema));
        }
        let p = tables.get_mut("parent").unwrap();
        p.append(vec![Value::Int(1), Value::Null, Value::Text("p1".into())]).unwrap();
        p.append(vec![Value::Int(2), Value::Null, Value::Text("p2".into())]).unwrap();
        let c = tables.get_mut("child").unwrap();
        c.append(vec![Value::Int(10), Value::Int(1), Value::Text("a".into())]).unwrap();
        c.append(vec![Value::Int(11), Value::Int(1), Value::Text("b".into())]).unwrap();
        c.append(vec![Value::Int(12), Value::Int(2), Value::Text("a".into())]).unwrap();
        (catalog, tables)
    }

    fn run(sql: &str) -> ResultSet {
        let (catalog, tables) = setup();
        let q = match parse_statement(sql).unwrap() {
            Statement::Query(q) => q,
            other => panic!("not a query: {other:?}"),
        };
        let plan = plan_query(&catalog, &q).unwrap();
        execute(&plan, &catalog, &tables).unwrap()
    }

    #[test]
    fn scan_filter_and_join() {
        let rs = run("SELECT id FROM child WHERE v = 'a'");
        assert_eq!(rs.column_as_int_set(0).into_iter().collect::<Vec<_>>(), vec![10, 12]);
        let rs = run("SELECT c.id FROM parent p, child c WHERE p.id = c.pid AND p.v = 'p1'");
        assert_eq!(rs.column_as_int_set(0).into_iter().collect::<Vec<_>>(), vec![10, 11]);
    }

    #[test]
    fn set_ops_and_cross() {
        let rs = run("(SELECT id FROM child) EXCEPT (SELECT id FROM child WHERE v = 'a')");
        assert_eq!(rs.column_as_ints(0), vec![11]);
        let rs = run("SELECT p.id FROM parent p, child c");
        assert_eq!(rs.len(), 6);
    }

    #[test]
    fn numeric_coercion_in_text_column() {
        let rs = run("SELECT id FROM child WHERE id > 10 AND v != 'zzz'");
        assert_eq!(rs.column_as_int_set(0).into_iter().collect::<Vec<_>>(), vec![11, 12]);
    }
}
