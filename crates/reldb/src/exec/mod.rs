//! Query execution: shared result representation plus the two engines.

pub mod col_exec;
pub mod row_exec;

use crate::value::Value;
use std::collections::BTreeSet;

/// A materialized query result (row-major, like a wire protocol would
/// deliver it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The integers of one output column (non-integers skipped).
    pub fn column_as_ints(&self, col: usize) -> Vec<i64> {
        self.rows.iter().filter_map(|r| r[col].as_int()).collect()
    }

    /// The integers of one output column as a set — the shape the
    /// annotation pipeline consumes (`SELECT … id …` results).
    pub fn column_as_int_set(&self, col: usize) -> BTreeSet<i64> {
        self.rows.iter().filter_map(|r| r[col].as_int()).collect()
    }

    /// Rows sorted lexicographically (stable comparison output for tests).
    pub fn sorted(mut self) -> ResultSet {
        self.rows.sort();
        self
    }
}

/// Set-semantics combination used by both engines for `UNION`/`EXCEPT`/
/// `INTERSECT` (SQL's non-`ALL` forms eliminate duplicates).
pub(crate) fn set_op(
    kind: crate::sql::SetOpKind,
    left: Vec<Vec<Value>>,
    right: Vec<Vec<Value>>,
) -> Vec<Vec<Value>> {
    use crate::sql::SetOpKind::*;
    let l: BTreeSet<Vec<Value>> = left.into_iter().collect();
    let r: BTreeSet<Vec<Value>> = right.into_iter().collect();
    let out: Vec<Vec<Value>> = match kind {
        Union => l.union(&r).cloned().collect(),
        Except => l.difference(&r).cloned().collect(),
        Intersect => l.intersection(&r).cloned().collect(),
    };
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::SetOpKind;

    fn rows(ns: &[i64]) -> Vec<Vec<Value>> {
        ns.iter().map(|&n| vec![Value::Int(n)]).collect()
    }

    #[test]
    fn set_ops_dedup() {
        let l = rows(&[1, 2, 2, 3]);
        let r = rows(&[3, 4]);
        assert_eq!(set_op(SetOpKind::Union, l.clone(), r.clone()), rows(&[1, 2, 3, 4]));
        assert_eq!(set_op(SetOpKind::Except, l.clone(), r.clone()), rows(&[1, 2]));
        assert_eq!(set_op(SetOpKind::Intersect, l, r), rows(&[3]));
    }

    #[test]
    fn result_set_helpers() {
        let rs = ResultSet {
            columns: vec!["id".into()],
            rows: vec![vec![Value::Int(2)], vec![Value::Int(1)], vec![Value::Null]],
        };
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.column_as_ints(0), vec![2, 1]);
        assert_eq!(rs.column_as_int_set(0).into_iter().collect::<Vec<_>>(), vec![1, 2]);
        let sorted = rs.sorted();
        assert_eq!(sorted.rows[0], vec![Value::Null]);
    }
}
