//! The database facade: catalog + storage + SQL entry point.

use crate::catalog::{Catalog, Column, TableSchema};
use crate::error::{Error, Result};
use crate::exec::{col_exec, row_exec, ResultSet};
use crate::plan::plan_query;
use crate::sql::{parse_script, parse_statement, Condition, Operand, SqlCmpOp, Statement};
use crate::storage::{ColTable, RowTable};
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use xac_obs::metrics::Counter;

/// Statements executed, across every engine instance in the process.
fn statements_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_reldb_statements_total"))
}

/// Rows signed through the batched write path, process-wide.
fn batch_sign_rows_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_reldb_batch_sign_rows_total"))
}

/// Physical layout (and matching execution engine) of a database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageKind {
    /// Row store + tuple-at-a-time executor (the PostgreSQL stand-in).
    Row,
    /// Column store + vectorized executor (the MonetDB/SQL stand-in).
    Column,
}

impl StorageKind {
    /// Short label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            StorageKind::Row => "row-store",
            StorageKind::Column => "column-store",
        }
    }
}

#[derive(Clone)]
enum Store {
    Row(BTreeMap<String, RowTable>),
    Col(BTreeMap<String, ColTable>),
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResult {
    /// A query's rows.
    Rows(ResultSet),
    /// Rows affected (INSERT/UPDATE/DELETE) or 0 for DDL.
    Count(usize),
}

impl QueryResult {
    /// The result set, if this was a query.
    pub fn rows(self) -> Option<ResultSet> {
        match self {
            QueryResult::Rows(r) => Some(r),
            QueryResult::Count(_) => None,
        }
    }

    /// The affected-row count, if this was a write.
    pub fn count(self) -> Option<usize> {
        match self {
            QueryResult::Count(c) => Some(c),
            QueryResult::Rows(_) => None,
        }
    }
}

/// An in-memory SQL database.
///
/// `Clone` produces a full table-image snapshot (catalog + every table's
/// storage): the relational half of `Backend::checkpoint`. Cost is linear
/// in the stored data, which the `fault-recovery` benchmark measures.
#[derive(Clone)]
pub struct Database {
    kind: StorageKind,
    catalog: Catalog,
    store: Store,
}

impl Database {
    /// Create an empty database with the chosen layout.
    pub fn new(kind: StorageKind) -> Self {
        let store = match kind {
            StorageKind::Row => Store::Row(BTreeMap::new()),
            StorageKind::Column => Store::Col(BTreeMap::new()),
        };
        Database { kind, catalog: Catalog::new(), store }
    }

    /// The storage kind.
    pub fn kind(&self) -> StorageKind {
        self.kind
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Parse and execute one statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = parse_statement(sql)?;
        statements_total().inc();
        self.run(&stmt)
    }

    /// Parse and execute a `;`-separated script, returning the number of
    /// statements run.
    pub fn execute_script(&mut self, sql: &str) -> Result<usize> {
        let stmts = parse_script(sql)?;
        let n = stmts.len();
        statements_total().add(n as u64);
        for stmt in &stmts {
            self.run(stmt)?;
        }
        Ok(n)
    }

    /// Plan a query and render its operator tree without executing it
    /// (the `EXPLAIN` facility).
    pub fn explain(&self, sql: &str) -> Result<String> {
        match parse_statement(sql)? {
            Statement::Query(q) => Ok(plan_query(&self.catalog, &q)?.render_text()),
            _ => Err(Error::plan("EXPLAIN supports queries only")),
        }
    }

    /// Execute a query and return its rows (errors on non-queries).
    pub fn query(&mut self, sql: &str) -> Result<ResultSet> {
        match self.execute(sql)? {
            QueryResult::Rows(r) => Ok(r),
            QueryResult::Count(_) => Err(Error::exec("statement is not a query")),
        }
    }

    /// Execute a parsed statement.
    pub fn run(&mut self, stmt: &Statement) -> Result<QueryResult> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                let cols = columns
                    .iter()
                    .map(|c| {
                        let mut col = Column::new(c.name.clone(), c.dtype);
                        if c.primary_key {
                            col = col.primary_key();
                        } else if c.indexed {
                            col = col.indexed();
                        }
                        col
                    })
                    .collect();
                let schema = TableSchema::new(name.clone(), cols)?;
                self.catalog.add_table(schema.clone())?;
                match &mut self.store {
                    Store::Row(m) => {
                        m.insert(name.clone(), RowTable::new(schema));
                    }
                    Store::Col(m) => {
                        m.insert(name.clone(), ColTable::new(schema));
                    }
                }
                Ok(QueryResult::Count(0))
            }
            Statement::Insert { table, columns, rows } => {
                let schema = self.catalog.require_table(table)?.clone();
                // Map listed columns to schema positions once.
                let positions: Vec<usize> = columns
                    .iter()
                    .map(|c| {
                        schema.column_index(c).ok_or_else(|| {
                            Error::plan(format!("unknown column `{c}` in `{table}`"))
                        })
                    })
                    .collect::<Result<_>>()?;
                let mut inserted = 0usize;
                for lits in rows {
                    if lits.len() != positions.len() {
                        return Err(Error::exec("VALUES arity differs from column list"));
                    }
                    let mut row = vec![Value::Null; schema.arity()];
                    for (pos, lit) in positions.iter().zip(lits) {
                        row[*pos] = lit.to_value();
                    }
                    self.append_row(table, row)?;
                    inserted += 1;
                }
                Ok(QueryResult::Count(inserted))
            }
            Statement::Query(q) => {
                let plan = plan_query(&self.catalog, q)?;
                let rs = match &self.store {
                    Store::Row(m) => row_exec::execute(&plan, &self.catalog, m)?,
                    Store::Col(m) => col_exec::execute(&plan, &self.catalog, m)?,
                };
                Ok(QueryResult::Rows(rs))
            }
            Statement::Update { table, assignments, conditions } => {
                let schema = self.catalog.require_table(table)?.clone();
                let sets: Vec<(usize, Value)> = assignments
                    .iter()
                    .map(|(c, lit)| {
                        schema
                            .column_index(c)
                            .map(|i| (i, lit.to_value()))
                            .ok_or_else(|| {
                                Error::plan(format!("unknown column `{c}` in `{table}`"))
                            })
                    })
                    .collect::<Result<_>>()?;
                let targets = self.matching_rows(table, &schema, conditions)?;
                for &slot in &targets {
                    for (col, value) in &sets {
                        match &mut self.store {
                            Store::Row(m) => m
                                .get_mut(table)
                                .expect("checked")
                                .update_cell(slot, *col, value.clone())?,
                            Store::Col(m) => m
                                .get_mut(table)
                                .expect("checked")
                                .update_cell(slot, *col, value.clone())?,
                        }
                    }
                }
                Ok(QueryResult::Count(targets.len()))
            }
            Statement::Delete { table, conditions } => {
                let schema = self.catalog.require_table(table)?.clone();
                let targets = self.matching_rows(table, &schema, conditions)?;
                for &slot in &targets {
                    match &mut self.store {
                        Store::Row(m) => m.get_mut(table).expect("checked").delete_row(slot)?,
                        Store::Col(m) => m.get_mut(table).expect("checked").delete_row(slot)?,
                    }
                }
                Ok(QueryResult::Count(targets.len()))
            }
        }
    }

    /// Append a pre-built row (fast path used by bulk loaders and tests).
    pub fn append_row(&mut self, table: &str, row: Vec<Value>) -> Result<usize> {
        match &mut self.store {
            Store::Row(m) => m
                .get_mut(table)
                .ok_or_else(|| Error::exec(format!("missing table `{table}`")))?
                .append(row),
            Store::Col(m) => m
                .get_mut(table)
                .ok_or_else(|| Error::exec(format!("missing table `{table}`")))?
                .append(row),
        }
    }

    /// Batched sign write: set the `s` column of every row whose `id` is
    /// in `ids` to `sign`, in one engine call.
    ///
    /// This is the write path behind the *batched* annotation mode: the
    /// per-tuple Fig. 6 loop issues one `UPDATE … WHERE id = k` string per
    /// tuple, paying SQL parsing, planning and condition evaluation each
    /// time. Here the ids go straight to the primary-key hash index and
    /// the cell writes happen in place — same final table state, same
    /// per-row index maintenance, none of the per-statement overhead.
    pub fn update_signs(&mut self, table: &str, ids: &[i64], sign: char) -> Result<usize> {
        let schema = self.catalog.require_table(table)?;
        let id_col = schema
            .column_index("id")
            .ok_or_else(|| Error::plan(format!("table `{table}` has no `id` column")))?;
        let s_col = schema
            .column_index("s")
            .ok_or_else(|| Error::plan(format!("table `{table}` has no `s` column")))?;
        if !self.has_index(table, id_col) {
            return Err(Error::exec(format!("`{table}.id` is not indexed")));
        }
        let value = Value::Text(sign.to_string());
        let mut updated = 0usize;
        macro_rules! write_batch {
            ($t:expr) => {{
                for &id in ids {
                    let slots = $t.index_lookup(id_col, &Value::Int(id)).to_vec();
                    for slot in slots {
                        if $t.is_live(slot) {
                            $t.update_cell(slot, s_col, value.clone())?;
                            updated += 1;
                        }
                    }
                }
            }};
        }
        match &mut self.store {
            Store::Row(m) => {
                let t = m
                    .get_mut(table)
                    .ok_or_else(|| Error::exec(format!("missing table `{table}`")))?;
                write_batch!(t)
            }
            Store::Col(m) => {
                let t = m
                    .get_mut(table)
                    .ok_or_else(|| Error::exec(format!("missing table `{table}`")))?;
                write_batch!(t)
            }
        }
        batch_sign_rows_total().add(updated as u64);
        Ok(updated)
    }

    /// Vectorized sign reset: set the `s` column of every live row of
    /// `table` to `sign` in one sweep over the column, without SQL
    /// parsing or planning. The compiled annotation mode resets with
    /// this; final table state is byte-identical to
    /// `UPDATE {table} SET s = '{sign}'`.
    pub fn reset_signs(&mut self, table: &str, sign: char) -> Result<usize> {
        let schema = self.catalog.require_table(table)?;
        let s_col = schema
            .column_index("s")
            .ok_or_else(|| Error::plan(format!("table `{table}` has no `s` column")))?;
        let value = Value::Text(sign.to_string());
        let mut updated = 0usize;
        macro_rules! sweep {
            ($t:expr) => {{
                let rows: Vec<usize> = $t.live_rows().collect();
                for row in rows {
                    $t.update_cell(row, s_col, value.clone())?;
                    updated += 1;
                }
            }};
        }
        match &mut self.store {
            Store::Row(m) => {
                let t = m
                    .get_mut(table)
                    .ok_or_else(|| Error::exec(format!("missing table `{table}`")))?;
                sweep!(t)
            }
            Store::Col(m) => {
                let t = m
                    .get_mut(table)
                    .ok_or_else(|| Error::exec(format!("missing table `{table}`")))?;
                sweep!(t)
            }
        }
        batch_sign_rows_total().add(updated as u64);
        Ok(updated)
    }

    /// Live row count of a table.
    pub fn row_count(&self, table: &str) -> Result<usize> {
        match &self.store {
            Store::Row(m) => m
                .get(table)
                .map(|t| t.row_count())
                .ok_or_else(|| Error::exec(format!("missing table `{table}`"))),
            Store::Col(m) => m
                .get(table)
                .map(|t| t.row_count())
                .ok_or_else(|| Error::exec(format!("missing table `{table}`"))),
        }
    }

    /// All live values of one column (used by the annotation loop that
    /// iterates every table's ids).
    pub fn column_values(&self, table: &str, column: &str) -> Result<Vec<Value>> {
        let schema = self.catalog.require_table(table)?;
        let col = schema
            .column_index(column)
            .ok_or_else(|| Error::plan(format!("unknown column `{column}`")))?;
        let out = match &self.store {
            Store::Row(m) => {
                let t = m.get(table).ok_or_else(|| Error::exec("missing table"))?;
                t.live_rows().map(|r| t.cell(r, col)).collect()
            }
            Store::Col(m) => {
                let t = m.get(table).ok_or_else(|| Error::exec("missing table"))?;
                t.live_rows().map(|r| t.cell(r, col)).collect()
            }
        };
        Ok(out)
    }

    /// Slots of live rows matching all conditions in one table, with an
    /// index fast path for `indexed-col = literal`.
    fn matching_rows(
        &self,
        table: &str,
        schema: &TableSchema,
        conditions: &[Condition],
    ) -> Result<Vec<usize>> {
        // Resolve conditions to (col, op, operand) over this table only.
        enum Rhs {
            Lit(Value),
            Col(usize),
        }
        let mut resolved: Vec<(usize, SqlCmpOp, Rhs)> = Vec::new();
        for cond in conditions {
            let (left_col, op, right) = match (&cond.left, &cond.right) {
                (Operand::Col(c), Operand::Lit(l)) => {
                    (self.resolve_local(schema, c)?, cond.op, Rhs::Lit(l.to_value()))
                }
                (Operand::Lit(l), Operand::Col(c)) => (
                    self.resolve_local(schema, c)?,
                    flip(cond.op),
                    Rhs::Lit(l.to_value()),
                ),
                (Operand::Col(a), Operand::Col(b)) => (
                    self.resolve_local(schema, a)?,
                    cond.op,
                    Rhs::Col(self.resolve_local(schema, b)?),
                ),
                (Operand::Lit(_), Operand::Lit(_)) => {
                    return Err(Error::plan(
                        "constant conditions are not supported in UPDATE/DELETE",
                    ))
                }
            };
            resolved.push((left_col, op, right));
        }

        // Candidate slots: index bucket when possible, else all live rows.
        let candidates: Vec<usize> = {
            let index_hit = resolved.iter().find_map(|(col, op, rhs)| match rhs {
                Rhs::Lit(v) if *op == SqlCmpOp::Eq && self.has_index(table, *col) => {
                    Some((*col, v.clone()))
                }
                _ => None,
            });
            match (&self.store, index_hit) {
                (Store::Row(m), Some((col, key))) => {
                    let t = m.get(table).ok_or_else(|| Error::exec("missing table"))?;
                    t.index_lookup(col, &key).to_vec()
                }
                (Store::Col(m), Some((col, key))) => {
                    let t = m.get(table).ok_or_else(|| Error::exec("missing table"))?;
                    t.index_lookup(col, &key).to_vec()
                }
                (Store::Row(m), None) => {
                    m.get(table).ok_or_else(|| Error::exec("missing table"))?.live_rows().collect()
                }
                (Store::Col(m), None) => {
                    m.get(table).ok_or_else(|| Error::exec("missing table"))?.live_rows().collect()
                }
            }
        };

        let cell = |slot: usize, col: usize| -> Value {
            match &self.store {
                Store::Row(m) => m.get(table).expect("checked").cell(slot, col),
                Store::Col(m) => m.get(table).expect("checked").cell(slot, col),
            }
        };
        let live = |slot: usize| -> bool {
            match &self.store {
                Store::Row(m) => m.get(table).expect("checked").is_live(slot),
                Store::Col(m) => m.get(table).expect("checked").is_live(slot),
            }
        };

        Ok(candidates
            .into_iter()
            .filter(|&slot| live(slot))
            .filter(|&slot| {
                resolved.iter().all(|(col, op, rhs)| {
                    let lhs = cell(slot, *col);
                    match rhs {
                        Rhs::Lit(v) => op.compare(&lhs, v),
                        Rhs::Col(rc) => op.compare(&lhs, &cell(slot, *rc)),
                    }
                })
            })
            .collect())
    }

    fn resolve_local(&self, schema: &TableSchema, c: &crate::sql::ColRef) -> Result<usize> {
        if let Some(q) = &c.qualifier {
            if q != &schema.name {
                return Err(Error::plan(format!(
                    "qualifier `{q}` does not match table `{}`",
                    schema.name
                )));
            }
        }
        schema
            .column_index(&c.column)
            .ok_or_else(|| Error::plan(format!("unknown column `{}`", c.column)))
    }

    fn has_index(&self, table: &str, col: usize) -> bool {
        match &self.store {
            Store::Row(m) => m.get(table).map(|t| t.has_index(col)).unwrap_or(false),
            Store::Col(m) => m.get(table).map(|t| t.has_index(col)).unwrap_or(false),
        }
    }
}

fn flip(op: SqlCmpOp) -> SqlCmpOp {
    match op {
        SqlCmpOp::Eq => SqlCmpOp::Eq,
        SqlCmpOp::Ne => SqlCmpOp::Ne,
        SqlCmpOp::Lt => SqlCmpOp::Gt,
        SqlCmpOp::Le => SqlCmpOp::Ge,
        SqlCmpOp::Gt => SqlCmpOp::Lt,
        SqlCmpOp::Ge => SqlCmpOp::Le,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> Vec<Database> {
        vec![Database::new(StorageKind::Row), Database::new(StorageKind::Column)]
    }

    fn load(db: &mut Database) {
        db.execute_script(
            "CREATE TABLE parent (id INT PRIMARY KEY, pid INT INDEX, v TEXT, s TEXT);
             CREATE TABLE child (id INT PRIMARY KEY, pid INT INDEX, v TEXT, s TEXT);
             INSERT INTO parent (id, pid, v, s) VALUES (1, NULL, 'p1', '-'), (2, NULL, 'p2', '-');
             INSERT INTO child (id, pid, v, s) VALUES
               (10, 1, 'a', '-'), (11, 1, 'b', '-'), (12, 2, 'a', '-');",
        )
        .unwrap();
    }

    #[test]
    fn end_to_end_both_engines_agree() {
        let queries = [
            "SELECT id FROM child WHERE v = 'a'",
            "SELECT c.id FROM parent p, child c WHERE p.id = c.pid AND p.v = 'p1'",
            "(SELECT id FROM child) EXCEPT (SELECT id FROM child WHERE v = 'a')",
            "SELECT id FROM parent UNION SELECT id FROM child",
            "SELECT c.id FROM parent p, child c WHERE p.id = c.pid AND c.v != 'a'",
        ];
        for sql in queries {
            let mut results = Vec::new();
            for mut db in both() {
                load(&mut db);
                results.push(db.query(sql).unwrap().sorted());
            }
            assert_eq!(results[0], results[1], "engines disagree on `{sql}`");
        }
    }

    #[test]
    fn update_with_index_fast_path() {
        for mut db in both() {
            load(&mut db);
            let n = db.execute("UPDATE child SET s = '+' WHERE id = 11").unwrap();
            assert_eq!(n, QueryResult::Count(1));
            let rs = db.query("SELECT id FROM child WHERE s = '+'").unwrap();
            assert_eq!(rs.column_as_ints(0), vec![11]);
        }
    }

    #[test]
    fn update_signs_matches_per_tuple_updates() {
        for mut db in both() {
            load(&mut db);
            let n = db.update_signs("child", &[10, 12], '+').unwrap();
            assert_eq!(n, 2);
            let rs = db.query("SELECT id FROM child WHERE s = '+'").unwrap();
            assert_eq!(rs.column_as_int_set(0), [10, 12].into_iter().collect());
            // A per-tuple reference run over the same ids lands on the
            // same table state.
            let mut reference = Database::new(db.kind());
            load(&mut reference);
            for id in [10, 12] {
                reference
                    .execute(&format!("UPDATE child SET s = '+' WHERE id = {id}"))
                    .unwrap();
            }
            assert_eq!(
                db.query("SELECT id, s FROM child").unwrap().sorted(),
                reference.query("SELECT id, s FROM child").unwrap().sorted(),
            );
        }
    }

    #[test]
    fn update_signs_skips_absent_ids_and_checks_schema() {
        for mut db in both() {
            load(&mut db);
            assert_eq!(db.update_signs("child", &[999], '+').unwrap(), 0);
            assert_eq!(db.update_signs("child", &[], '+').unwrap(), 0);
            assert!(db.update_signs("nope", &[1], '+').is_err());
            db.execute("CREATE TABLE bare (id INT PRIMARY KEY)").unwrap();
            assert!(db.update_signs("bare", &[1], '+').is_err(), "no `s` column");
        }
    }

    #[test]
    fn update_signs_maintains_sign_index_queries() {
        for mut db in both() {
            load(&mut db);
            db.update_signs("child", &[10, 11, 12], '+').unwrap();
            db.update_signs("child", &[11], '-').unwrap();
            let rs = db.query("SELECT COUNT(*) FROM child WHERE s = '+'").unwrap();
            assert_eq!(rs.column_as_ints(0), vec![2]);
        }
    }

    #[test]
    fn update_multi_row_predicate() {
        for mut db in both() {
            load(&mut db);
            let n = db.execute("UPDATE child SET s = '+' WHERE v = 'a'").unwrap();
            assert_eq!(n, QueryResult::Count(2));
        }
    }

    #[test]
    fn delete_and_requery() {
        for mut db in both() {
            load(&mut db);
            let n = db.execute("DELETE FROM child WHERE pid = 1").unwrap();
            assert_eq!(n, QueryResult::Count(2));
            assert_eq!(db.row_count("child").unwrap(), 1);
            let rs = db.query("SELECT id FROM child").unwrap();
            assert_eq!(rs.column_as_ints(0), vec![12]);
        }
    }

    #[test]
    fn insert_with_partial_columns() {
        for mut db in both() {
            load(&mut db);
            db.execute("INSERT INTO child (id, pid) VALUES (13, 2)").unwrap();
            let rs = db.query("SELECT v FROM child WHERE id = 13").unwrap();
            assert_eq!(rs.rows[0][0], Value::Null);
        }
    }

    #[test]
    fn primary_key_enforced_via_sql() {
        for mut db in both() {
            load(&mut db);
            assert!(db
                .execute("INSERT INTO child (id, pid) VALUES (10, 1)")
                .is_err());
        }
    }

    #[test]
    fn column_values_helper() {
        for mut db in both() {
            load(&mut db);
            let ids = db.column_values("child", "id").unwrap();
            assert_eq!(ids, vec![Value::Int(10), Value::Int(11), Value::Int(12)]);
            assert!(db.column_values("child", "nope").is_err());
        }
    }

    #[test]
    fn errors_are_reported() {
        for mut db in both() {
            assert!(db.execute("SELECT id FROM nope").is_err());
            assert!(db.execute("UPDATE nope SET a = 1").is_err());
            assert!(db.execute("CREATE TABLE t (id INT); CREATE TABLE t (id INT)").is_err());
        }
    }

    #[test]
    fn explain_renders_operator_tree() {
        let mut db = Database::new(StorageKind::Row);
        load(&mut db);
        let plan = db
            .explain("SELECT c.id FROM parent p, child c WHERE p.id = c.pid AND p.v = 'p1'")
            .unwrap();
        assert!(plan.starts_with("Project"), "{plan}");
        assert!(plan.contains("HashJoin"), "{plan}");
        assert!(plan.contains("Scan parent [#2 = 'p1']"), "{plan}");
        assert!(plan.contains("Scan child"), "{plan}");
        let plan = db.explain("SELECT COUNT(*) FROM child WHERE v = 'a'").unwrap();
        assert!(plan.starts_with("Aggregate COUNT(*)"), "{plan}");
        let plan = db
            .explain("(SELECT id FROM child) EXCEPT (SELECT id FROM child WHERE v = 'a')")
            .unwrap();
        assert!(plan.starts_with("EXCEPT"), "{plan}");
        assert!(db.explain("DELETE FROM child").is_err());
    }

    #[test]
    fn count_aggregates() {
        for mut db in both() {
            load(&mut db);
            let rs = db.query("SELECT COUNT(*) FROM child").unwrap();
            assert_eq!(rs.columns, vec!["count"]);
            assert_eq!(rs.column_as_ints(0), vec![3]);
            let rs = db.query("SELECT COUNT(*) FROM child WHERE v = 'a'").unwrap();
            assert_eq!(rs.column_as_ints(0), vec![2]);
            // COUNT(col) skips NULLs.
            db.execute("INSERT INTO child (id, pid) VALUES (99, 1)").unwrap();
            let rs = db.query("SELECT COUNT(v) FROM child").unwrap();
            assert_eq!(rs.column_as_ints(0), vec![3]);
            let rs = db.query("SELECT COUNT(*) FROM child").unwrap();
            assert_eq!(rs.column_as_ints(0), vec![4]);
            // Joins under the aggregate.
            let rs = db
                .query("SELECT COUNT(c.id) FROM parent p, child c WHERE p.id = c.pid AND p.v = 'p1'")
                .unwrap();
            assert_eq!(rs.column_as_ints(0), vec![3]);
            // Empty input counts zero.
            let rs = db.query("SELECT COUNT(*) FROM child WHERE v = 'zz'").unwrap();
            assert_eq!(rs.column_as_ints(0), vec![0]);
            // Aggregates cannot mix with plain columns.
            assert!(db.query("SELECT COUNT(*), id FROM child").is_err());
        }
    }

    #[test]
    fn count_is_not_a_reserved_word() {
        for mut db in both() {
            db.execute("CREATE TABLE t (count INT PRIMARY KEY)").unwrap();
            db.execute("INSERT INTO t (count) VALUES (5)").unwrap();
            let rs = db.query("SELECT count FROM t").unwrap();
            assert_eq!(rs.column_as_ints(0), vec![5]);
            let rs = db.query("SELECT COUNT(count) FROM t").unwrap();
            assert_eq!(rs.column_as_ints(0), vec![1]);
        }
    }

    #[test]
    fn query_on_write_errors() {
        let mut db = Database::new(StorageKind::Row);
        db.execute("CREATE TABLE t (id INT)").unwrap();
        assert!(db.query("INSERT INTO t (id) VALUES (1)").is_err());
    }
}
