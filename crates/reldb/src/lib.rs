//! # xac-reldb
//!
//! An in-memory relational database built as the storage substrate for the
//! **xmlac** system — the role PostgreSQL and MonetDB/SQL play in the
//! paper *"Controlling Access to XML Documents over XML Native and
//! Relational Databases"* (Koromilas et al., SDM 2009).
//!
//! The crate provides one SQL frontend and **two execution engines** over
//! distinct physical layouts, so that the paper's relational comparison
//! can be reproduced with identical queries:
//!
//! * [`StorageKind::Row`] — a row store executing tuple-at-a-time through
//!   a Volcano-style iterator tree (the PostgreSQL stand-in);
//! * [`StorageKind::Column`] — a column store executing column-at-a-time
//!   with selection vectors (the MonetDB/SQL stand-in).
//!
//! The SQL dialect covers what ShreX-style shredding and the paper's
//! annotation pipeline need: `CREATE TABLE` (with `PRIMARY KEY` / `INDEX`
//! column options), multi-row `INSERT`, conjunctive `SELECT` over multiple
//! tables with equi-joins and constant comparisons, the set operators
//! `UNION` / `EXCEPT` / `INTERSECT` (with parentheses), `UPDATE` and
//! `DELETE`.
//!
//! ```
//! use xac_reldb::{Database, StorageKind, QueryResult};
//!
//! let mut db = Database::new(StorageKind::Row);
//! db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").unwrap();
//! db.execute("INSERT INTO t (id, v) VALUES (1, 'a'), (2, 'b')").unwrap();
//! let r = db.execute("SELECT id FROM t WHERE v = 'b'").unwrap();
//! match r {
//!     QueryResult::Rows(rs) => assert_eq!(rs.column_as_ints(0), vec![2]),
//!     _ => unreachable!(),
//! }
//! ```

pub mod catalog;
pub mod engine;
pub mod error;
pub mod exec;
pub mod plan;
pub mod sql;
pub mod storage;
pub mod value;

pub use catalog::{Catalog, Column, TableSchema};
pub use engine::{Database, QueryResult, StorageKind};
pub use error::{Error, Result};
pub use exec::ResultSet;
pub use value::{DataType, Value};
