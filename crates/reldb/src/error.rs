//! Error type for SQL parsing, planning and execution.

use std::fmt;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Malformed SQL text.
    Parse { offset: usize, message: String },
    /// The statement references something the catalog does not know, or
    /// is semantically invalid (ambiguous column, type mismatch, …).
    Plan(String),
    /// A runtime execution failure (constraint violation, …).
    Exec(String),
}

impl Error {
    pub(crate) fn parse(offset: usize, message: impl Into<String>) -> Self {
        Error::Parse { offset, message: message.into() }
    }

    pub(crate) fn plan(message: impl Into<String>) -> Self {
        Error::Plan(message.into())
    }

    pub(crate) fn exec(message: impl Into<String>) -> Self {
        Error::Exec(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { offset, message } => {
                write!(f, "SQL parse error at byte {offset}: {message}")
            }
            Error::Plan(m) => write!(f, "planning error: {m}"),
            Error::Exec(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
