//! Values and data types.
//!
//! The shredded representation needs only integers (universal identifiers)
//! and text (element values and the `s` sign column); `NULL` appears as
//! the root tuple's parent id. Comparisons follow the same coercion rule
//! as the XPath engine: when both operands look numeric they compare
//! numerically, otherwise lexicographically — so `WHERE v > 1000` works on
//! a `TEXT` column holding `"700"`.

use std::cmp::Ordering;
use std::fmt;

/// Column data types of the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// 64-bit signed integer (`INT`).
    Int,
    /// UTF-8 string (`TEXT`).
    Text,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => f.write_str("INT"),
            DataType::Text => f.write_str("TEXT"),
        }
    }
}

/// A single cell value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// SQL NULL. Compares as unknown (excluded by every predicate).
    Null,
    /// An integer.
    Int(i64),
    /// A string.
    Text(String),
}

impl Value {
    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer content, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The text content, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Does the value fit the declared column type? `NULL` fits anything.
    pub fn fits(&self, dtype: DataType) -> bool {
        matches!(
            (self, dtype),
            (Value::Null, _) | (Value::Int(_), DataType::Int) | (Value::Text(_), DataType::Text)
        )
    }

    /// SQL comparison with numeric coercion. Returns `None` when either
    /// side is `NULL` (three-valued logic: the predicate is unknown).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(coerced_cmp(a, b)),
            (Value::Int(a), Value::Text(b)) => Some(num_text_cmp(*a, b)),
            (Value::Text(a), Value::Int(b)) => Some(num_text_cmp(*b, a).reverse()),
        }
    }

    /// SQL equality (`None` when unknown).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Render as a SQL literal.
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Text(t) => format!("'{}'", t.replace('\'', "''")),
        }
    }
}

fn coerced_cmp(a: &str, b: &str) -> Ordering {
    if let (Ok(x), Ok(y)) = (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
        return x.partial_cmp(&y).unwrap_or(Ordering::Equal);
    }
    a.cmp(b)
}

fn num_text_cmp(a: i64, b: &str) -> Ordering {
    if let Ok(y) = b.trim().parse::<f64>() {
        return (a as f64).partial_cmp(&y).unwrap_or(Ordering::Equal);
    }
    // Fall back to comparing the rendered integer, keeping totality.
    a.to_string().cmp(&b.to_string())
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(t) => f.write_str(t),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn integer_comparison() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(Value::Int(2).sql_eq(&Value::Int(2)), Some(true));
    }

    #[test]
    fn text_numeric_coercion() {
        let a = Value::Text("700".into());
        let b = Value::Text("1000".into());
        assert_eq!(a.sql_cmp(&b), Some(Ordering::Less), "numeric, not lexicographic");
        let a = Value::Text("abc".into());
        let b = Value::Text("abd".into());
        assert_eq!(a.sql_cmp(&b), Some(Ordering::Less));
    }

    #[test]
    fn mixed_int_text_coercion() {
        assert_eq!(Value::Int(1000).sql_cmp(&Value::Text("700".into())), Some(Ordering::Greater));
        assert_eq!(Value::Text("700".into()).sql_cmp(&Value::Int(1000)), Some(Ordering::Less));
        assert_eq!(Value::Int(5).sql_eq(&Value::Text("5".into())), Some(true));
    }

    #[test]
    fn type_fitting() {
        assert!(Value::Int(1).fits(DataType::Int));
        assert!(!Value::Int(1).fits(DataType::Text));
        assert!(Value::Text("x".into()).fits(DataType::Text));
        assert!(Value::Null.fits(DataType::Int));
        assert!(Value::Null.fits(DataType::Text));
    }

    #[test]
    fn literals() {
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
        assert_eq!(Value::Int(-3).to_sql_literal(), "-3");
        assert_eq!(Value::Text("o'hare".into()).to_sql_literal(), "'o''hare'");
    }
}
