//! Catalog: table schemas and column metadata.

use crate::error::{Error, Result};
use crate::value::DataType;
use std::collections::BTreeMap;

/// A column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// `PRIMARY KEY` — unique, hash-indexed.
    pub primary_key: bool,
    /// `INDEX` — non-unique hash index.
    pub indexed: bool,
}

impl Column {
    /// A plain column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column { name: name.into(), dtype, primary_key: false, indexed: false }
    }

    /// Mark as primary key (implies an index).
    pub fn primary_key(mut self) -> Self {
        self.primary_key = true;
        self.indexed = true;
        self
    }

    /// Mark as indexed.
    pub fn indexed(mut self) -> Self {
        self.indexed = true;
        self
    }
}

/// A table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
}

impl TableSchema {
    /// Create a schema, checking column-name uniqueness and that at most
    /// one primary key exists.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Result<Self> {
        let name = name.into();
        let mut seen = std::collections::BTreeSet::new();
        for c in &columns {
            if !seen.insert(c.name.as_str()) {
                return Err(Error::plan(format!(
                    "duplicate column `{}` in table `{name}`",
                    c.name
                )));
            }
        }
        if columns.iter().filter(|c| c.primary_key).count() > 1 {
            return Err(Error::plan(format!("table `{name}` has multiple primary keys")));
        }
        Ok(TableSchema { name, columns })
    }

    /// Index of a column by name.
    pub fn column_index(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == column)
    }

    /// Column metadata by name.
    pub fn column(&self, column: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == column)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the primary key column, if declared.
    pub fn primary_key_index(&self) -> Option<usize> {
        self.columns.iter().position(|c| c.primary_key)
    }

    /// Render as `CREATE TABLE` DDL.
    pub fn to_ddl(&self) -> String {
        let cols: Vec<String> = self
            .columns
            .iter()
            .map(|c| {
                let mut s = format!("{} {}", c.name, c.dtype);
                if c.primary_key {
                    s.push_str(" PRIMARY KEY");
                } else if c.indexed {
                    s.push_str(" INDEX");
                }
                s
            })
            .collect();
        format!("CREATE TABLE {} ({})", self.name, cols.join(", "))
    }
}

/// The set of known tables.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableSchema>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table; errors when the name is taken.
    pub fn add_table(&mut self, schema: TableSchema) -> Result<()> {
        if self.tables.contains_key(&schema.name) {
            return Err(Error::plan(format!("table `{}` already exists", schema.name)));
        }
        self.tables.insert(schema.name.clone(), schema);
        Ok(())
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(name)
    }

    /// Look up a table or fail with a planning error.
    pub fn require_table(&self, name: &str) -> Result<&TableSchema> {
        self.table(name)
            .ok_or_else(|| Error::plan(format!("unknown table `{name}`")))
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables exist.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableSchema {
        TableSchema::new(
            "patient",
            vec![
                Column::new("id", DataType::Int).primary_key(),
                Column::new("pid", DataType::Int).indexed(),
                Column::new("s", DataType::Text),
            ],
        )
        .unwrap()
    }

    #[test]
    fn lookup_and_arity() {
        let t = sample();
        assert_eq!(t.arity(), 3);
        assert_eq!(t.column_index("pid"), Some(1));
        assert_eq!(t.column_index("nope"), None);
        assert_eq!(t.primary_key_index(), Some(0));
        assert!(t.column("id").unwrap().indexed, "primary key implies index");
    }

    #[test]
    fn rejects_duplicates() {
        assert!(TableSchema::new(
            "t",
            vec![Column::new("a", DataType::Int), Column::new("a", DataType::Text)]
        )
        .is_err());
        let two_pks = TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::Int).primary_key(),
                Column::new("b", DataType::Int).primary_key(),
            ],
        );
        assert!(two_pks.is_err());
    }

    #[test]
    fn catalog_registration() {
        let mut c = Catalog::new();
        c.add_table(sample()).unwrap();
        assert!(c.table("patient").is_some());
        assert!(c.require_table("absent").is_err());
        assert!(c.add_table(sample()).is_err(), "duplicate table");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn ddl_round_trip_shape() {
        let t = sample();
        assert_eq!(
            t.to_ddl(),
            "CREATE TABLE patient (id INT PRIMARY KEY, pid INT INDEX, s TEXT)"
        );
    }
}
