//! Property test: the row engine and the column engine are observationally
//! equivalent — identical results for identical SQL over identical data,
//! under randomized schemas, data and query workloads.
//!
//! Seeded hand-rolled generation (no external crates): every run explores
//! the same workloads, and failures name the case index.

use xac_reldb::{Database, StorageKind, Value};

/// Tiny splitmix64 stream keeping this test self-contained and offline.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A randomized two-table database and a batch of queries over it.
struct Workload {
    parents: Vec<(i64, Option<String>)>,
    children: Vec<(i64, i64, Option<String>, i64)>,
    queries: Vec<String>,
}

fn random_text(rng: &mut Rng) -> Option<String> {
    match rng.below(8) {
        0 | 1 => Some("a".to_string()),
        2 | 3 => Some("b".to_string()),
        4 => Some("700".to_string()),
        5 => Some("1600".to_string()),
        _ => None,
    }
}

const QUERY_POOL: &[&str] = &[
    "SELECT id FROM child",
    "SELECT id FROM child WHERE v = 'a'",
    "SELECT id FROM child WHERE n > 1000",
    "SELECT id FROM child WHERE n <= 500 AND v != 'b'",
    "SELECT c.id FROM parent p, child c WHERE p.id = c.pid",
    "SELECT c.id FROM parent p, child c WHERE p.id = c.pid AND p.v = 'a'",
    "(SELECT id FROM child WHERE v = 'a') UNION (SELECT id FROM child WHERE n > 900)",
    "(SELECT id FROM child) EXCEPT (SELECT id FROM child WHERE v = 'b')",
    "(SELECT id FROM child WHERE n > 100) INTERSECT (SELECT id FROM child WHERE v = 'a')",
    "SELECT p.id FROM parent p, child c",
    "SELECT pid FROM child WHERE pid = 3",
    "SELECT COUNT(*) FROM child WHERE n > 500",
    "SELECT COUNT(v) FROM child",
    "SELECT COUNT(c.id) FROM parent p, child c WHERE p.id = c.pid",
];

fn random_workload(rng: &mut Rng) -> Workload {
    let parents = (0..1 + rng.below(7))
        .map(|i| (i as i64 + 1, random_text(rng)))
        .collect();
    let children = (0..rng.below(20))
        .map(|i| {
            (
                100 + i as i64,
                1 + rng.below(7) as i64,
                random_text(rng),
                rng.below(2000) as i64,
            )
        })
        .collect();
    let queries = (0..1 + rng.below(5))
        .map(|_| QUERY_POOL[rng.below(QUERY_POOL.len())].to_string())
        .collect();
    Workload { parents, children, queries }
}

fn build(kind: StorageKind, w: &Workload) -> Database {
    let mut db = Database::new(kind);
    db.execute("CREATE TABLE parent (id INT PRIMARY KEY, v TEXT)").unwrap();
    db.execute("CREATE TABLE child (id INT PRIMARY KEY, pid INT INDEX, v TEXT, n INT)")
        .unwrap();
    for (id, v) in &w.parents {
        let v = v.as_ref().map(|s| Value::Text(s.clone())).unwrap_or(Value::Null);
        db.append_row("parent", vec![Value::Int(*id), v]).unwrap();
    }
    for (id, pid, v, n) in &w.children {
        let v = v.as_ref().map(|s| Value::Text(s.clone())).unwrap_or(Value::Null);
        db.append_row("child", vec![Value::Int(*id), Value::Int(*pid), v, Value::Int(*n)])
            .unwrap();
    }
    db
}

#[test]
fn row_and_column_engines_agree() {
    let mut rng = Rng(0xE1);
    for case in 0..128 {
        let w = random_workload(&mut rng);
        let mut row = build(StorageKind::Row, &w);
        let mut col = build(StorageKind::Column, &w);
        for q in &w.queries {
            let r = row.query(q).unwrap().sorted();
            let c = col.query(q).unwrap().sorted();
            assert_eq!(r, c, "case {case}: engines disagree on `{q}`");
        }
    }
}

#[test]
fn engines_agree_after_mutations() {
    let mut rng = Rng(0xE2);
    for case in 0..128 {
        let w = random_workload(&mut rng);
        let cut = rng.below(2000) as i64;
        let mut row = build(StorageKind::Row, &w);
        let mut col = build(StorageKind::Column, &w);
        for db in [&mut row, &mut col] {
            db.execute(&format!("UPDATE child SET v = 'u' WHERE n > {cut}")).unwrap();
            db.execute(&format!("DELETE FROM child WHERE n <= {}", cut / 2)).unwrap();
        }
        for q in &w.queries {
            let r = row.query(q).unwrap().sorted();
            let c = col.query(q).unwrap().sorted();
            assert_eq!(r, c, "case {case}: post-mutation disagreement on `{q}`");
        }
        assert_eq!(
            row.row_count("child").unwrap(),
            col.row_count("child").unwrap(),
            "case {case}"
        );
    }
}
