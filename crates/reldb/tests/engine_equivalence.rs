//! Property test: the row engine and the column engine are observationally
//! equivalent — identical results for identical SQL over identical data,
//! under randomized schemas, data and query workloads.

use proptest::prelude::*;
use xac_reldb::{Database, StorageKind, Value};

/// A randomized two-table database and a batch of queries over it.
#[derive(Debug, Clone)]
struct Workload {
    parents: Vec<(i64, Option<String>)>,
    children: Vec<(i64, i64, Option<String>, i64)>,
    queries: Vec<String>,
}

fn arb_text() -> impl Strategy<Value = Option<String>> {
    proptest::option::of(prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("700".to_string()),
        Just("1600".to_string()),
    ])
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    let parents = proptest::collection::vec(arb_text(), 1..8).prop_map(|vs| {
        vs.into_iter()
            .enumerate()
            .map(|(i, v)| (i as i64 + 1, v))
            .collect::<Vec<_>>()
    });
    let children = (proptest::collection::vec((1i64..8, arb_text(), 0i64..2000), 0..20))
        .prop_map(|rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, (pid, v, n))| (100 + i as i64, pid, v, n))
                .collect::<Vec<_>>()
        });
    let query = prop_oneof![
        Just("SELECT id FROM child".to_string()),
        Just("SELECT id FROM child WHERE v = 'a'".to_string()),
        Just("SELECT id FROM child WHERE n > 1000".to_string()),
        Just("SELECT id FROM child WHERE n <= 500 AND v != 'b'".to_string()),
        Just("SELECT c.id FROM parent p, child c WHERE p.id = c.pid".to_string()),
        Just("SELECT c.id FROM parent p, child c WHERE p.id = c.pid AND p.v = 'a'".to_string()),
        Just(
            "(SELECT id FROM child WHERE v = 'a') UNION (SELECT id FROM child WHERE n > 900)"
                .to_string()
        ),
        Just(
            "(SELECT id FROM child) EXCEPT (SELECT id FROM child WHERE v = 'b')".to_string()
        ),
        Just(
            "(SELECT id FROM child WHERE n > 100) INTERSECT (SELECT id FROM child WHERE v = 'a')"
                .to_string()
        ),
        Just("SELECT p.id FROM parent p, child c".to_string()),
        Just("SELECT pid FROM child WHERE pid = 3".to_string()),
        Just("SELECT COUNT(*) FROM child WHERE n > 500".to_string()),
        Just("SELECT COUNT(v) FROM child".to_string()),
        Just("SELECT COUNT(c.id) FROM parent p, child c WHERE p.id = c.pid".to_string()),
    ];
    let queries = proptest::collection::vec(query, 1..6);
    (parents, children, queries)
        .prop_map(|(parents, children, queries)| Workload { parents, children, queries })
}

fn build(kind: StorageKind, w: &Workload) -> Database {
    let mut db = Database::new(kind);
    db.execute("CREATE TABLE parent (id INT PRIMARY KEY, v TEXT)").unwrap();
    db.execute("CREATE TABLE child (id INT PRIMARY KEY, pid INT INDEX, v TEXT, n INT)")
        .unwrap();
    for (id, v) in &w.parents {
        let v = v.as_ref().map(|s| Value::Text(s.clone())).unwrap_or(Value::Null);
        db.append_row("parent", vec![Value::Int(*id), v]).unwrap();
    }
    for (id, pid, v, n) in &w.children {
        let v = v.as_ref().map(|s| Value::Text(s.clone())).unwrap_or(Value::Null);
        db.append_row("child", vec![Value::Int(*id), Value::Int(*pid), v, Value::Int(*n)])
            .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn row_and_column_engines_agree(w in arb_workload()) {
        let mut row = build(StorageKind::Row, &w);
        let mut col = build(StorageKind::Column, &w);
        for q in &w.queries {
            let r = row.query(q).unwrap().sorted();
            let c = col.query(q).unwrap().sorted();
            prop_assert_eq!(r, c, "engines disagree on `{}`", q);
        }
    }

    #[test]
    fn engines_agree_after_mutations(w in arb_workload(), cut in 0i64..2000) {
        let mut row = build(StorageKind::Row, &w);
        let mut col = build(StorageKind::Column, &w);
        for db in [&mut row, &mut col] {
            db.execute(&format!("UPDATE child SET v = 'u' WHERE n > {cut}")).unwrap();
            db.execute(&format!("DELETE FROM child WHERE n <= {}", cut / 2)).unwrap();
        }
        for q in &w.queries {
            let r = row.query(q).unwrap().sorted();
            let c = col.query(q).unwrap().sorted();
            prop_assert_eq!(r, c, "post-mutation disagreement on `{}`", q);
        }
        prop_assert_eq!(row.row_count("child").unwrap(), col.row_count("child").unwrap());
    }
}
