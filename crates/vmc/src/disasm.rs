//! Disassembler: renders a [`Program`] as a per-element-type listing.
//!
//! The listing groups the typed scan/step instructions under the element
//! type whose `(id, pid, val)` columns they touch — in schema order when
//! a schema is given, in first-appearance order otherwise — followed by
//! the untyped instructions (root/wildcard scans, set algebra, the fused
//! sign write) and the predicate programs. Output is deterministic and
//! golden-file testable.

use crate::bytecode::{Inst, NameSel, Pred, Program, RelStep};
use std::fmt::Write as _;
use xac_xml::Schema;
use xac_xpath::Axis;

/// Render the full listing.
pub fn disassemble(program: &Program, schema: Option<&Schema>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ";; xac-vmc program {:#018x}", program.fingerprint);
    let _ = writeln!(
        out,
        ";; shape: {}   mark: '{}'   registers: r0..r{} (r0 = sign accumulator)",
        program.shape,
        program.mark,
        program.reg_count.saturating_sub(1)
    );
    let _ = writeln!(out, ";; source: {}", program.source);

    // Element types in listing order: schema order first (types the
    // program never touches are listed with an empty body so the
    // per-type decision surface is visible), then any program name the
    // schema does not know.
    let mut types: Vec<String> = Vec::new();
    if let Some(s) = schema {
        types.extend(s.type_names().map(|t| t.to_string()));
    }
    for n in &program.names {
        if !types.iter().any(|t| t == n) {
            types.push(n.clone());
        }
    }

    for ty in &types {
        let _ = writeln!(out, "\n== element type `{ty}` ==");
        let mut any = false;
        for (i, inst) in program.insts.iter().enumerate() {
            if program.scan_target(inst) == Some(ty.as_str()) {
                any = true;
                let _ = writeln!(out, "  {:02}  {}", i, render_inst(program, inst));
            }
        }
        if !any {
            let _ = writeln!(out, "  (no instructions; sign stays at the default)");
        }
    }

    let _ = writeln!(out, "\n== untyped / combine ==");
    for (i, inst) in program.insts.iter().enumerate() {
        if program.scan_target(inst).is_none() {
            let _ = writeln!(out, "  {:02}  {}", i, render_inst(program, inst));
        }
    }

    if !program.preds.is_empty() {
        let _ = writeln!(out, "\n== predicates ==");
        for (i, p) in program.preds.iter().enumerate() {
            let _ = writeln!(out, "  p{i}: {}", render_pred(program, p));
        }
    }
    out
}

fn render_sel(program: &Program, sel: NameSel) -> String {
    match sel {
        NameSel::Any => "*".to_string(),
        NameSel::Name(i) => program.names[i as usize].clone(),
    }
}

fn render_inst(program: &Program, inst: &Inst) -> String {
    match inst {
        Inst::ScanRoot { dst, name } => {
            format!("scan.root  r{dst}, type={}", render_sel(program, *name))
        }
        Inst::ScanAll { dst, name } => {
            format!("scan.all   r{dst}, type={}", render_sel(program, *name))
        }
        Inst::StepChild { dst, src, name } => {
            format!("step.child r{dst}, r{src}, type={}", render_sel(program, *name))
        }
        Inst::StepDesc { dst, src, name } => {
            format!("step.desc  r{dst}, r{src}, type={}", render_sel(program, *name))
        }
        Inst::Filter { reg, pred } => format!("filter     r{reg}, p{pred}"),
        Inst::Union { dst, src } => format!("union      r{dst}, r{src}"),
        Inst::Diff { dst, src } => format!("diff       r{dst}, r{src}"),
        Inst::SignWrite { src, sign } => format!("sign.write r{src}, '{sign}'"),
    }
}

fn render_rel(program: &Program, steps: &[RelStep]) -> String {
    let mut out = String::new();
    for (i, s) in steps.iter().enumerate() {
        let sep = match (i, s.axis) {
            (0, Axis::Child) => "",
            (0, Axis::Descendant) => ".//",
            (_, Axis::Child) => "/",
            (_, Axis::Descendant) => "//",
        };
        out.push_str(sep);
        out.push_str(&render_sel(program, s.name));
        for p in &s.preds {
            let _ = write!(out, "[{}]", render_pred(program, p));
        }
    }
    out
}

fn render_pred(program: &Program, pred: &Pred) -> String {
    match pred {
        Pred::True => "true".to_string(),
        Pred::SelfCmp { op, rhs } => format!(". {op} \"{rhs}\""),
        Pred::Exists { steps } => format!("exists {}", render_rel(program, steps)),
        Pred::Cmp { steps, op, rhs } => {
            format!("any {} {op} \"{rhs}\"", render_rel(program, steps))
        }
        Pred::All(ps) => {
            let parts: Vec<String> = ps.iter().map(|p| render_pred(program, p)).collect();
            parts.join(" and ")
        }
    }
}
