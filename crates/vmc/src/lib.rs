//! xac-vmc — the policy bytecode compiler and VM.
//!
//! The paper's enforcement cost is dominated by re-evaluating annotation
//! queries (Fig. 5) and per-request accessibility checks as interpreted
//! tree walks. A (policy, schema) pair, however, determines a small
//! static decision structure per element type (cf. Cheney's static
//! enforceability results), which is worth compiling once and executing
//! many times. This crate:
//!
//! 1. **compiles** an [`AnnotationQuery`](xac_policy::AnnotationQuery)
//!    (or a single request path) into a register-based [`Program`] —
//!    per element type, a short instruction sequence over the document's
//!    `(id, pid, val)` columns that decides the sign ([`compile_query`],
//!    [`compile_path`]);
//! 2. **executes** programs with a small VM over a columnar
//!    [`DocIndex`], with fused scan+filter+sign-write ops streaming the
//!    result into a [`SignSink`] (the relational backends' batched
//!    column write, or the native element arena) ([`execute`],
//!    [`execute_select`]);
//! 3. **caches** compiled programs in a bounded map keyed on the
//!    (policy, schema) fingerprint ([`cached_query_program`],
//!    [`cached_path_program`]), mirroring `ContainmentOracle`'s
//!    memo-capacity/eviction discipline;
//! 4. **disassembles** programs for debugging and golden-file tests
//!    ([`disassemble`], surfaced as `xmlac vm dump`).
//!
//! Correctness contract: executing a compiled query program selects
//! exactly the node set `AnnotationQuery::evaluate` returns, in the same
//! (document/arena) order — the differential harnesses in core and serve
//! assert byte-identical `sign_state` against the interpreted path.
//! Compilation is total over the repo's XPath fragment; the few shapes
//! outside it surface [`CompileError`] and callers fall back to the
//! interpreter.

mod bytecode;
mod cache;
mod compile;
mod disasm;
mod index;
mod vm;

pub use bytecode::{Inst, NameSel, Pred, Program, RelStep};
pub use cache::{
    cache_stats, cached_path_program, cached_query_program, query_fingerprint, reset_cache,
    VmCacheStats, DEFAULT_PROGRAM_CACHE_CAPACITY,
};
pub use compile::{compile_path, compile_query, CompileError};
pub use disasm::disassemble;
pub use index::DocIndex;
pub use vm::{execute, execute_select, Collect, SignSink};

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use xac_policy::AnnotationQuery;
    use xac_xml::{Document, NodeId};
    use xac_xpath::parse;

    /// The partial hospital document of the paper's Figure 2.
    fn figure2() -> Document {
        Document::parse_str(
            "<hospital><dept><patients>\
             <patient><psn>033</psn><name>john doe</name>\
             <treatment><regular><med>enoxaparin</med><bill>700</bill></regular></treatment>\
             </patient>\
             <patient><psn>042</psn><name>jane doe</name>\
             <treatment><experimental><test>regression hypnosis</test><bill>1600</bill></experimental></treatment>\
             </patient>\
             <patient><psn>099</psn><name>joy smith</name></patient>\
             </patients><staffinfo/></dept></hospital>",
        )
        .unwrap()
    }

    fn vm_select(doc: &Document, src: &str) -> Vec<NodeId> {
        let path = parse(src).unwrap();
        let program = compile_path(&path).unwrap();
        let index = DocIndex::build(doc);
        execute_select(&program, &index)
    }

    fn interp(doc: &Document, src: &str) -> Vec<NodeId> {
        xac_xpath::eval(doc, &parse(src).unwrap())
    }

    #[test]
    fn path_programs_agree_with_interpreter() {
        let doc = figure2();
        for src in [
            "//patient",
            "//hospital",
            "/hospital",
            "/hospital/dept/patients/patient",
            "/dept",
            "/hospital/patient",
            "//patient/*",
            "//*",
            "//patient[treatment]",
            "//patient[treatment]/name",
            "//patient[.//experimental]",
            "//patient[psn and treatment]",
            "//patient[bogus]",
            "//regular[med = \"enoxaparin\"]",
            "//regular[bill > 1000]",
            "//experimental[bill > 1000]",
            "//patient[.//bill > 1000]",
            "//bill[. > 1000]",
            "//patient[name = \"joy smith\"]",
            "//patient[treatment[regular[med = \"enoxaparin\"]]]",
            "//dept[patients[patient[treatment]]]",
            "//dept//bill",
            "//treatment//med",
        ] {
            assert_eq!(vm_select(&doc, src), interp(&doc, src), "path `{src}` diverged");
        }
    }

    #[test]
    fn vm_matches_interpreter_after_structural_edits() {
        // Deletions leave dead arena slots and inserts append out of
        // pre-order; the index must still agree with the interpreter.
        let mut doc = figure2();
        let victim = interp(&doc, "//patient[psn = 42]")[0];
        doc.remove_subtree(victim).unwrap();
        let dept = interp(&doc, "//dept")[0];
        let p = doc.add_element(dept, "patient");
        let psn = doc.add_element(p, "psn");
        doc.add_text(psn, "123");
        for src in ["//patient", "//patient[psn]", "//bill", "//patient[psn > 100]"] {
            assert_eq!(vm_select(&doc, src), interp(&doc, src), "path `{src}` diverged");
        }
    }

    #[test]
    fn query_program_matches_reference_evaluate() {
        let doc = figure2();
        let query = AnnotationQuery {
            shape: xac_policy::QueryShape::GrantsExceptDenies,
            include: vec![parse("//patient").unwrap(), parse("//staffinfo").unwrap()],
            except: vec![parse("//patient[.//experimental]").unwrap()],
            mark: xac_policy::Effect::Allow,
        };
        let program = compile_query(&query, None).unwrap();
        let index = DocIndex::build(&doc);
        let got: BTreeSet<NodeId> = execute_select(&program, &index).into_iter().collect();
        assert_eq!(got, query.evaluate(&doc));
    }

    #[test]
    fn empty_include_selects_nothing() {
        let doc = figure2();
        let query = AnnotationQuery {
            shape: xac_policy::QueryShape::Grants,
            include: vec![],
            except: vec![],
            mark: xac_policy::Effect::Allow,
        };
        let program = compile_query(&query, None).unwrap();
        let index = DocIndex::build(&doc);
        assert!(execute_select(&program, &index).is_empty());
    }

    #[test]
    fn cache_hits_on_repeat_and_flushes_at_capacity() {
        reset_cache();
        let q = AnnotationQuery {
            shape: xac_policy::QueryShape::Grants,
            include: vec![parse("//patient").unwrap()],
            except: vec![],
            mark: xac_policy::Effect::Allow,
        };
        let before = cache_stats();
        let a = cached_query_program(&q, None).unwrap();
        let b = cached_query_program(&q, None).unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &b), "second lookup must hit");
        let after = cache_stats();
        assert_eq!(after.misses - before.misses, 1);
        assert_eq!(after.hits - before.hits, 1);
        assert!(after.hit_rate() > 0.0);
    }

    #[test]
    fn disassembly_is_deterministic_and_typed() {
        let q = AnnotationQuery {
            shape: xac_policy::QueryShape::GrantsExceptDenies,
            include: vec![parse("//patient[treatment]/name").unwrap()],
            except: vec![parse("//patient[.//experimental]/name").unwrap()],
            mark: xac_policy::Effect::Allow,
        };
        let program = compile_query(&q, None).unwrap();
        let text = disassemble(&program, None);
        assert_eq!(text, disassemble(&program, None));
        assert!(text.contains("== element type `patient` =="));
        assert!(text.contains("== element type `name` =="));
        assert!(text.contains("sign.write r0, '+'"));
        assert!(text.contains("p0: exists treatment"));
    }
}
