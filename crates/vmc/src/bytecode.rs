//! The register-based bytecode ISA.
//!
//! A [`Program`] is a straight-line instruction sequence over a small set
//! of *mask registers*. Each register holds a set of element nodes,
//! represented at execution time as a bitset over arena slots of the
//! [`crate::DocIndex`]. There is no control flow: the fragment's
//! annotation queries are unions/differences of path expressions, which
//! compile to a fixed pipeline of scans, steps, filters and set algebra,
//! terminated by one fused sign write.
//!
//! Register convention (fixed by the compiler):
//! - `r0` — the sign accumulator (union of include paths minus except
//!   paths),
//! - `r1`/`r2` — ping-pong registers for the current path's frontier.
//!
//! Element names are interned per program into [`Program::names`]; the VM
//! resolves them against the document index once per execution, so a name
//! absent from the document simply yields empty scans.

use xac_xpath::{Axis, CmpOp};

/// A compiled node test: either any element or one interned name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameSel {
    /// The wildcard `*`.
    Any,
    /// An element name, as an index into [`Program::names`].
    Name(u16),
}

/// One bytecode instruction.
///
/// `Scan*` and `Step*` are the per-element-type ops: with a
/// [`NameSel::Name`] selector they touch only the `(id, pid)` columns of
/// that element type's node list, which is what makes execution
/// vectorized rather than a tree walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst = {root}` if the root matches `name`, else `{}`. Compiles the
    /// leading child step of an absolute path (the virtual root's only
    /// child is the document root).
    ScanRoot { dst: u8, name: NameSel },
    /// `dst = all live elements matching name`. Compiles a leading
    /// descendant step (`//x` selects every matching element).
    ScanAll { dst: u8, name: NameSel },
    /// `dst = elements matching name whose parent is in src` — a fused
    /// scan+filter over the type's `pid` column.
    StepChild { dst: u8, src: u8, name: NameSel },
    /// `dst = elements matching name with a strict ancestor in src`,
    /// computed by one forward closure pass over the parent column.
    StepDesc { dst: u8, src: u8, name: NameSel },
    /// Retain only the nodes of `reg` satisfying predicate program
    /// `pred` (index into [`Program::preds`]).
    Filter { reg: u8, pred: u16 },
    /// `dst |= src`.
    Union { dst: u8, src: u8 },
    /// `dst &= !src`.
    Diff { dst: u8, src: u8 },
    /// Fused terminal: stream the accumulated node set to the sign sink
    /// (column/row store batch write, or the element arena annotator).
    SignWrite { src: u8, sign: char },
}

/// A compiled qualifier, evaluated per candidate node against the
/// document index (the scalar half of the ISA; structural steps stay
/// vectorized, per-node value logic runs here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// `[.]` — always true.
    True,
    /// `[. op d]` — compare the context node's string value.
    SelfCmp { op: CmpOp, rhs: String },
    /// `[p]` — the relative path reaches at least one node.
    Exists { steps: Vec<RelStep> },
    /// `[p op d]` — some node reached by `p` satisfies the comparison.
    Cmp { steps: Vec<RelStep>, op: CmpOp, rhs: String },
    /// Conjunction.
    All(Vec<Pred>),
}

/// One step of a relative (qualifier) path, walked from the context node
/// with short-circuit existence semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelStep {
    pub axis: Axis,
    pub name: NameSel,
    /// Nested qualifiers on this step.
    pub preds: Vec<Pred>,
}

/// A compiled program: the unit the cache stores and the VM executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Interned element names referenced by [`NameSel::Name`].
    pub names: Vec<String>,
    /// The instruction sequence, executed in order.
    pub insts: Vec<Inst>,
    /// Predicate programs referenced by [`Inst::Filter`].
    pub preds: Vec<Pred>,
    /// Number of mask registers the VM must allocate.
    pub reg_count: u8,
    /// The sign the terminal write applies (`'+'` or `'-'`).
    pub mark: char,
    /// The source expression (annotation-query notation or a request
    /// path), kept for the disassembler.
    pub source: String,
    /// Human-readable shape tag (e.g. `GrantsExceptDenies`).
    pub shape: String,
    /// Stable fingerprint of (source, mark, schema) — the cache key.
    pub fingerprint: u64,
}

impl Program {
    /// The element-type name an instruction scans, if it is a typed
    /// scan/step (used by the disassembler's per-type grouping).
    pub fn scan_target(&self, inst: &Inst) -> Option<&str> {
        let sel = match inst {
            Inst::ScanRoot { name, .. }
            | Inst::ScanAll { name, .. }
            | Inst::StepChild { name, .. }
            | Inst::StepDesc { name, .. } => *name,
            _ => return None,
        };
        match sel {
            NameSel::Name(i) => self.names.get(i as usize).map(|s| s.as_str()),
            NameSel::Any => None,
        }
    }
}

/// FNV-1a, the repo's stable dependency-free hash (fingerprints must not
/// vary across runs, unlike `std`'s randomized hasher).
pub(crate) fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
