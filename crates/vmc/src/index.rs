//! Columnar document index: the VM's execution substrate.
//!
//! [`DocIndex`] flattens a [`Document`] arena into dense columns —
//! per-slot name id, parent slot, string value — plus per-element-type
//! node lists and a CSR child adjacency. Scans and steps then run over
//! contiguous `u32` arrays instead of chasing arena nodes, and masks are
//! bitsets over arena slots, whose ascending order *is* the document
//! (arena) order the interpreter produces.
//!
//! The index depends only on document *structure and text*; sign writes
//! do not invalidate it, so backends cache one index per structural
//! epoch.

use std::collections::HashMap;
use xac_xml::{Document, NodeId};

/// Sentinel for "no name" (text node or dead slot) and "no parent".
pub(crate) const NONE: u32 = u32::MAX;

/// Dense columnar view of one document.
#[derive(Debug, Clone)]
pub struct DocIndex {
    /// Arena capacity (bitset width).
    n: usize,
    /// Arena slot of the document root.
    root: u32,
    /// Per-slot interned name id (`NONE` for text nodes and dead slots).
    name_id: Vec<u32>,
    /// Per-slot parent arena slot (`NONE` for the root and dead slots).
    parent: Vec<u32>,
    /// Interned element-name lookup.
    lookup: HashMap<String, u32>,
    /// Live element slots per name id, ascending (document order).
    by_name: Vec<Vec<u32>>,
    /// All live element slots, ascending.
    elements: Vec<u32>,
    /// CSR adjacency over *element* children: children of slot `s` are
    /// `child_list[child_start[s]..child_start[s + 1]]`.
    child_start: Vec<u32>,
    child_list: Vec<u32>,
    /// Per-slot string value (concatenated direct text children), only
    /// materialized where non-empty.
    text: Vec<Option<Box<str>>>,
    /// Per-slot `NodeId` for mapping mask bits back to arena handles.
    node_of: Vec<NodeId>,
}

impl DocIndex {
    /// Build the index in two O(n) passes over the arena.
    pub fn build(doc: &Document) -> DocIndex {
        let _span = xac_obs::span("vm.index");
        let n = doc.arena_len();
        let root = doc.root();
        let mut name_id = vec![NONE; n];
        let mut parent = vec![NONE; n];
        let mut name_count = 0u32;
        let mut lookup: HashMap<String, u32> = HashMap::new();
        let mut elements: Vec<u32> = Vec::new();
        let mut text: Vec<Option<Box<str>>> = vec![None; n];
        let mut node_of = vec![root; n];

        for node in doc.all_elements() {
            let slot = node.index();
            node_of[slot] = node;
            let name = doc.name(node).expect("element has a name");
            let id = match lookup.get(name) {
                Some(&id) => id,
                None => {
                    let id = name_count;
                    name_count += 1;
                    lookup.insert(name.to_string(), id);
                    id
                }
            };
            name_id[slot] = id;
            if let Some(p) = doc.parent(node) {
                parent[slot] = p.index() as u32;
            }
            let value = doc.text_of(node);
            if !value.is_empty() {
                text[slot] = Some(value.into_boxed_str());
            }
            elements.push(slot as u32);
        }

        let mut by_name: Vec<Vec<u32>> = vec![Vec::new(); name_count as usize];
        for &slot in &elements {
            by_name[name_id[slot as usize] as usize].push(slot);
        }

        // CSR over element children, in sibling (document) order. Text
        // and dead slots get empty ranges.
        let mut child_start = vec![0u32; n + 1];
        let mut child_list: Vec<u32> = Vec::with_capacity(elements.len().saturating_sub(1));
        for slot in 0..n {
            child_start[slot] = child_list.len() as u32;
            if name_id[slot] != NONE {
                for c in doc.child_elements(node_of[slot]) {
                    child_list.push(c.index() as u32);
                }
            }
        }
        child_start[n] = child_list.len() as u32;

        DocIndex {
            n,
            root: root.index() as u32,
            name_id,
            parent,
            lookup,
            by_name,
            elements,
            child_start,
            child_list,
            text,
            node_of,
        }
    }

    /// Bitset width (arena capacity).
    pub fn width(&self) -> usize {
        self.n
    }

    /// Number of live elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Arena slot of the root.
    pub(crate) fn root_slot(&self) -> u32 {
        self.root
    }

    /// Interned name id for `name`, if any element carries it.
    pub(crate) fn name_of(&self, name: &str) -> Option<u32> {
        self.lookup.get(name).copied()
    }

    pub(crate) fn name_id_at(&self, slot: u32) -> u32 {
        self.name_id[slot as usize]
    }

    pub(crate) fn parent_of(&self, slot: u32) -> u32 {
        self.parent[slot as usize]
    }

    /// Live element slots of one name id, ascending.
    pub(crate) fn slots_of(&self, name: u32) -> &[u32] {
        &self.by_name[name as usize]
    }

    /// All live element slots, ascending.
    pub(crate) fn all_slots(&self) -> &[u32] {
        &self.elements
    }

    /// Element children of a slot, in document order.
    pub(crate) fn children_of(&self, slot: u32) -> &[u32] {
        let s = self.child_start[slot as usize] as usize;
        let e = self.child_start[slot as usize + 1] as usize;
        &self.child_list[s..e]
    }

    /// String value of a slot (concatenated direct text children).
    pub(crate) fn value_of(&self, slot: u32) -> &str {
        self.text[slot as usize].as_deref().unwrap_or("")
    }

    /// Arena handle for a slot known to hold a live element.
    pub(crate) fn node_at(&self, slot: u32) -> NodeId {
        self.node_of[slot as usize]
    }
}
