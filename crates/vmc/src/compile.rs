//! Compiler: annotation queries and request paths → bytecode programs.
//!
//! The pipeline per absolute path is fixed: the leading step becomes a
//! `ScanRoot`/`ScanAll`, every later step a `StepChild`/`StepDesc`, each
//! followed by a `Filter` per qualifier; the path result is folded into
//! the `r0` accumulator with `Union` (include) or `Diff` (except) and a
//! single fused `SignWrite` terminates the program. Qualifiers compile
//! to [`Pred`] scalar programs.
//!
//! Compilation is total over the repo's XPath fragment; anything outside
//! it (an absolute path inside a qualifier, an empty absolute path as
//! the *only* include) reports [`CompileError`] and callers fall back to
//! the interpreted `AnnotationQuery::evaluate` path.

use crate::bytecode::{fnv1a, Inst, NameSel, Pred, Program, RelStep, FNV_OFFSET};
use std::fmt;
use xac_policy::AnnotationQuery;
use xac_xml::Schema;
use xac_xpath::{Axis, NodeTest, Path, Qualifier};

/// Why a (query, schema) pair could not be compiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A qualifier contained an absolute path — outside the fragment the
    /// VM models (qualifier paths are relative by construction).
    AbsoluteQualifierPath(String),
    /// The main path was relative; programs are compiled for absolute
    /// paths only.
    RelativeMainPath(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::AbsoluteQualifierPath(p) => {
                write!(f, "cannot compile absolute path `{p}` inside a qualifier")
            }
            CompileError::RelativeMainPath(p) => {
                write!(f, "cannot compile relative path `{p}` as a selection root")
            }
        }
    }
}

impl std::error::Error for CompileError {}

struct Compiler {
    names: Vec<String>,
    insts: Vec<Inst>,
    preds: Vec<Pred>,
}

impl Compiler {
    fn new() -> Self {
        Compiler { names: Vec::new(), insts: Vec::new(), preds: Vec::new() }
    }

    fn intern(&mut self, name: &str) -> u16 {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return i as u16;
        }
        self.names.push(name.to_string());
        (self.names.len() - 1) as u16
    }

    fn name_sel(&mut self, test: &NodeTest) -> NameSel {
        match test {
            NodeTest::Wildcard => NameSel::Any,
            NodeTest::Name(n) => {
                let id = self.intern(n);
                NameSel::Name(id)
            }
        }
    }

    /// Compile one absolute path; the final frontier lands in the
    /// returned register (`r1` or `r2`, ping-ponged per step).
    fn compile_path(&mut self, path: &Path) -> Result<u8, CompileError> {
        if !path.absolute {
            return Err(CompileError::RelativeMainPath(path.to_string()));
        }
        let mut cur: u8 = 1;
        for (i, step) in path.steps.iter().enumerate() {
            let name = self.name_sel(&step.test);
            if i == 0 {
                match step.axis {
                    Axis::Child => self.insts.push(Inst::ScanRoot { dst: cur, name }),
                    Axis::Descendant => self.insts.push(Inst::ScanAll { dst: cur, name }),
                }
            } else {
                let dst = if cur == 1 { 2 } else { 1 };
                match step.axis {
                    Axis::Child => self.insts.push(Inst::StepChild { dst, src: cur, name }),
                    Axis::Descendant => self.insts.push(Inst::StepDesc { dst, src: cur, name }),
                }
                cur = dst;
            }
            for q in &step.predicates {
                let pred = self.compile_qualifier(q)?;
                let id = self.preds.len() as u16;
                self.preds.push(pred);
                self.insts.push(Inst::Filter { reg: cur, pred: id });
            }
        }
        Ok(cur)
    }

    fn compile_qualifier(&mut self, q: &Qualifier) -> Result<Pred, CompileError> {
        Ok(match q {
            Qualifier::Exists(p) => {
                if p.is_self() {
                    Pred::True
                } else {
                    Pred::Exists { steps: self.compile_rel(p)? }
                }
            }
            Qualifier::Cmp(p, op, d) => {
                if p.is_self() {
                    Pred::SelfCmp { op: *op, rhs: d.clone() }
                } else {
                    Pred::Cmp { steps: self.compile_rel(p)?, op: *op, rhs: d.clone() }
                }
            }
            Qualifier::And(qs) => {
                let mut preds = Vec::with_capacity(qs.len());
                for q in qs {
                    preds.push(self.compile_qualifier(q)?);
                }
                Pred::All(preds)
            }
        })
    }

    fn compile_rel(&mut self, p: &Path) -> Result<Vec<RelStep>, CompileError> {
        if p.absolute {
            return Err(CompileError::AbsoluteQualifierPath(p.to_string()));
        }
        let mut steps = Vec::with_capacity(p.steps.len());
        for step in &p.steps {
            let name = self.name_sel(&step.test);
            let mut preds = Vec::with_capacity(step.predicates.len());
            for q in &step.predicates {
                preds.push(self.compile_qualifier(q)?);
            }
            steps.push(RelStep { axis: step.axis, name, preds });
        }
        Ok(steps)
    }
}

/// Stable fingerprint of a (source, mark, schema) triple — the cache
/// key a compiled program is stored under.
pub(crate) fn fingerprint(source: &str, mark: char, schema: Option<&Schema>) -> u64 {
    let mut h = fnv1a(source.as_bytes(), FNV_OFFSET);
    h = fnv1a(&[mark as u8], h);
    if let Some(s) = schema {
        h = fnv1a(s.root().as_bytes(), h);
        for t in s.type_names() {
            h = fnv1a(t.as_bytes(), h);
            h = fnv1a(b"|", h);
        }
    }
    h
}

/// Compile an annotation query (the Fig. 5 union/except selection plus
/// its mark) into a program ending in a fused sign write.
pub fn compile_query(
    query: &AnnotationQuery,
    schema: Option<&Schema>,
) -> Result<Program, CompileError> {
    let _span = xac_obs::span("vm.compile");
    let mut c = Compiler::new();
    for p in &query.include {
        if p.steps.is_empty() {
            // An empty absolute path selects nothing; it contributes
            // nothing to the union.
            continue;
        }
        let reg = c.compile_path(p)?;
        c.insts.push(Inst::Union { dst: 0, src: reg });
    }
    for p in &query.except {
        if p.steps.is_empty() {
            continue;
        }
        let reg = c.compile_path(p)?;
        c.insts.push(Inst::Diff { dst: 0, src: reg });
    }
    let mark = query.mark.sign();
    c.insts.push(Inst::SignWrite { src: 0, sign: mark });
    let source = query.describe();
    Ok(Program {
        fingerprint: fingerprint(&source, mark, schema),
        names: c.names,
        insts: c.insts,
        preds: c.preds,
        reg_count: 3,
        mark,
        source,
        shape: format!("{:?}", query.shape),
    })
}

/// Compile a single absolute request path (the decide/read hot path).
/// The program selects the path's node set; the terminal write carries
/// `'+'` but decide-style executions collect instead of writing.
pub fn compile_path(path: &Path) -> Result<Program, CompileError> {
    let _span = xac_obs::span("vm.compile");
    let mut c = Compiler::new();
    if !path.steps.is_empty() {
        let reg = c.compile_path(path)?;
        c.insts.push(Inst::Union { dst: 0, src: reg });
    }
    c.insts.push(Inst::SignWrite { src: 0, sign: '+' });
    let source = path.to_string();
    Ok(Program {
        fingerprint: fingerprint(&format!("path|{source}"), '+', None),
        names: c.names,
        insts: c.insts,
        preds: c.preds,
        reg_count: 3,
        mark: '+',
        source,
        shape: "RequestPath".to_string(),
    })
}
