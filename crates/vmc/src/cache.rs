//! Bounded program cache keyed on (policy, schema) fingerprints.
//!
//! Mirrors `ContainmentOracle`'s memo discipline: a fixed capacity, a
//! wholesale flush when full (counted as evictions, fed to a global
//! counter), and hit/miss/eviction stats published as gauges. Programs
//! are tiny, so the default capacity comfortably holds every annotation
//! query and request path a serving process sees; the bound exists so a
//! pathological workload cannot grow the map without limit.

use crate::bytecode::Program;
use crate::compile::{compile_path, compile_query, CompileError};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use xac_obs::Counter;
use xac_policy::AnnotationQuery;
use xac_xml::Schema;
use xac_xpath::Path;

/// Default capacity of the global program cache.
pub const DEFAULT_PROGRAM_CACHE_CAPACITY: usize = 4096;

fn programs_compiled_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_vm_programs_compiled_total"))
}

fn cache_evictions_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_vm_cache_evictions_total"))
}

/// Cache effectiveness counters (cumulative since process start or the
/// last [`reset_cache`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl VmCacheStats {
    /// Hit fraction in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Publish the stats as gauges (`xac_vm_cache_hits`, `_misses`,
    /// `_evictions`, and `xac_vm_cache_hit_rate_pct` as an integer
    /// percentage).
    pub fn publish(&self) {
        xac_obs::gauge("xac_vm_cache_hits").set(self.hits);
        xac_obs::gauge("xac_vm_cache_misses").set(self.misses);
        xac_obs::gauge("xac_vm_cache_evictions").set(self.evictions);
        xac_obs::gauge("xac_vm_cache_hit_rate_pct").set((self.hit_rate() * 100.0).round() as u64);
    }
}

struct ProgramCache {
    map: HashMap<u64, Arc<Program>>,
    capacity: usize,
    stats: VmCacheStats,
}

impl ProgramCache {
    fn lookup_or_insert<E>(
        &mut self,
        key: u64,
        build: impl FnOnce() -> Result<Program, E>,
    ) -> Result<Arc<Program>, E> {
        if let Some(p) = self.map.get(&key) {
            self.stats.hits += 1;
            return Ok(Arc::clone(p));
        }
        self.stats.misses += 1;
        let program = Arc::new(build()?);
        programs_compiled_total().inc();
        if self.map.len() >= self.capacity {
            // Wholesale flush, like the containment memo: cheap, and a
            // full cache under a stable workload never reaches here.
            let cleared = self.map.len() as u64;
            self.map.clear();
            self.stats.evictions += cleared;
            cache_evictions_total().add(cleared);
        }
        self.map.insert(key, Arc::clone(&program));
        Ok(program)
    }
}

fn cache() -> MutexGuard<'static, ProgramCache> {
    static CACHE: OnceLock<Mutex<ProgramCache>> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            Mutex::new(ProgramCache {
                map: HashMap::new(),
                capacity: DEFAULT_PROGRAM_CACHE_CAPACITY,
                stats: VmCacheStats::default(),
            })
        })
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Fingerprint the cache keys a query program under. Exposed so callers
/// can correlate disassembly output with cache entries.
pub fn query_fingerprint(query: &AnnotationQuery, schema: Option<&Schema>) -> u64 {
    crate::compile::fingerprint(&query.describe(), query.mark.sign(), schema)
}

fn path_fingerprint(path: &Path) -> u64 {
    crate::compile::fingerprint(&format!("path|{path}"), '+', None)
}

/// Compile-or-fetch the program for an annotation query. The schema only
/// contributes to the cache key (two schemas may shred the same query
/// differently downstream), not to the generated code.
pub fn cached_query_program(
    query: &AnnotationQuery,
    schema: Option<&Schema>,
) -> Result<Arc<Program>, CompileError> {
    let key = query_fingerprint(query, schema);
    cache().lookup_or_insert(key, || compile_query(query, schema))
}

/// Compile-or-fetch the program for a single request path (decide path).
pub fn cached_path_program(path: &Path) -> Result<Arc<Program>, CompileError> {
    let key = path_fingerprint(path);
    cache().lookup_or_insert(key, || compile_path(path))
}

/// Current cache stats.
pub fn cache_stats() -> VmCacheStats {
    cache().stats
}

/// Drop every cached program and zero the stats (tests).
pub fn reset_cache() {
    let mut c = cache();
    c.map.clear();
    c.stats = VmCacheStats::default();
}
