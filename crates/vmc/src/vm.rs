//! The VM: executes a [`Program`] against a [`DocIndex`].
//!
//! Registers are bitsets over arena slots. Ascending bit order equals
//! arena order, which is the document order the interpreted evaluator
//! produces — so the node stream handed to the sign sink is already
//! sorted and deduplicated, for free.
//!
//! The descendant step runs as a single forward closure pass over the
//! parent column (parents occupy lower arena slots than their children,
//! an invariant of the append-only arena), so `//a//b` costs O(n)
//! regardless of how many `a` contexts were selected.

use crate::bytecode::{Inst, NameSel, Pred, Program, RelStep};
use crate::index::{DocIndex, NONE};
use std::sync::{Arc, OnceLock};
use xac_obs::Counter;
use xac_xml::NodeId;
use xac_xpath::Axis;

fn instructions_executed_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| xac_obs::counter("xac_vm_instructions_executed_total"))
}

/// Receives the node set a terminal [`Inst::SignWrite`] produces. The
/// relational backends stream it into a batched column-store write, the
/// native backend into arena sign attributes, and the decide path into a
/// plain collector.
pub trait SignSink {
    /// Write `sign` for every node (ascending document order). Returns
    /// the number of sign cells written.
    fn write(&mut self, nodes: &[NodeId], sign: char) -> Result<usize, String>;
}

/// A [`SignSink`] that just collects the selected nodes (decide path,
/// differential tests).
#[derive(Debug, Default)]
pub struct Collect {
    pub nodes: Vec<NodeId>,
}

impl SignSink for Collect {
    fn write(&mut self, nodes: &[NodeId], _sign: char) -> Result<usize, String> {
        self.nodes.extend_from_slice(nodes);
        Ok(0)
    }
}

/// A dense bitset over arena slots.
#[derive(Clone)]
struct Mask {
    words: Vec<u64>,
}

impl Mask {
    fn new(width: usize) -> Mask {
        Mask { words: vec![0; width.div_ceil(64)] }
    }

    #[inline]
    fn set(&mut self, slot: u32) {
        self.words[slot as usize / 64] |= 1u64 << (slot % 64);
    }

    #[inline]
    fn test(&self, slot: u32) -> bool {
        self.words[slot as usize / 64] & (1u64 << (slot % 64)) != 0
    }

    fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    fn union(&mut self, other: &Mask) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    fn diff(&mut self, other: &Mask) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Ascending slots of set bits.
    fn ones(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for (wi, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push((wi as u32) * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }
}

/// Execute `program` against `index`, streaming the terminal node set to
/// `sink`. Returns the sink's written-cell count.
pub fn execute(
    program: &Program,
    index: &DocIndex,
    sink: &mut dyn SignSink,
) -> Result<usize, String> {
    let _span = xac_obs::span("vm.execute");
    // Resolve interned program names against this document once; a name
    // with no elements resolves to None and scans produce empty masks.
    let resolved: Vec<Option<u32>> =
        program.names.iter().map(|n| index.name_of(n)).collect();
    let width = index.width();
    let mut regs: Vec<Mask> = (0..program.reg_count).map(|_| Mask::new(width)).collect();
    let mut under = Mask::new(width);
    let mut written = 0usize;

    for inst in &program.insts {
        match inst {
            Inst::ScanRoot { dst, name } => {
                regs[*dst as usize].clear();
                let root = index.root_slot();
                if sel_admits(&resolved, *name, index.name_id_at(root)) {
                    regs[*dst as usize].set(root);
                }
            }
            Inst::ScanAll { dst, name } => {
                regs[*dst as usize].clear();
                let dstm = &mut regs[*dst as usize];
                for &slot in candidate_slots(index, &resolved, *name) {
                    dstm.set(slot);
                }
            }
            Inst::StepChild { dst, src, name } => {
                let (dstm, srcm) = two_regs(&mut regs, *dst, *src);
                dstm.clear();
                for &slot in candidate_slots(index, &resolved, *name) {
                    let p = index.parent_of(slot);
                    if p != NONE && srcm.test(p) {
                        dstm.set(slot);
                    }
                }
            }
            Inst::StepDesc { dst, src, name } => {
                // Forward closure over the parent column: a slot is
                // "under" the source set iff its parent is in the set or
                // its parent is already under it. Parents precede
                // children in slot order, so one ascending pass suffices.
                under.clear();
                {
                    let srcm = &regs[*src as usize];
                    for &slot in index.all_slots() {
                        let p = index.parent_of(slot);
                        if p != NONE && (srcm.test(p) || under.test(p)) {
                            under.set(slot);
                        }
                    }
                }
                let dstm = &mut regs[*dst as usize];
                dstm.clear();
                for &slot in candidate_slots(index, &resolved, *name) {
                    if under.test(slot) {
                        dstm.set(slot);
                    }
                }
            }
            Inst::Filter { reg, pred } => {
                let pred = &program.preds[*pred as usize];
                let slots = regs[*reg as usize].ones();
                let m = &mut regs[*reg as usize];
                for slot in slots {
                    if !eval_pred(index, &resolved, slot, pred) {
                        m.words[slot as usize / 64] &= !(1u64 << (slot % 64));
                    }
                }
            }
            Inst::Union { dst, src } => {
                let (dstm, srcm) = two_regs(&mut regs, *dst, *src);
                dstm.union(srcm);
            }
            Inst::Diff { dst, src } => {
                let (dstm, srcm) = two_regs(&mut regs, *dst, *src);
                dstm.diff(srcm);
            }
            Inst::SignWrite { src, sign } => {
                let nodes: Vec<NodeId> =
                    regs[*src as usize].ones().iter().map(|&s| index.node_at(s)).collect();
                written += sink.write(&nodes, *sign)?;
            }
        }
    }
    instructions_executed_total().add(program.insts.len() as u64);
    Ok(written)
}

/// Execute and return the selected node set (decide path, tests).
pub fn execute_select(program: &Program, index: &DocIndex) -> Vec<NodeId> {
    let mut sink = Collect::default();
    execute(program, index, &mut sink).expect("collector sink never fails");
    sink.nodes
}

/// The slot list a typed scan iterates: one element type's nodes, or all
/// elements for the wildcard.
fn candidate_slots<'a>(
    index: &'a DocIndex,
    resolved: &[Option<u32>],
    name: NameSel,
) -> &'a [u32] {
    match name {
        NameSel::Any => index.all_slots(),
        NameSel::Name(i) => match resolved[i as usize] {
            Some(id) => index.slots_of(id),
            None => &[],
        },
    }
}

fn sel_admits(resolved: &[Option<u32>], name: NameSel, name_id: u32) -> bool {
    match name {
        NameSel::Any => name_id != NONE,
        NameSel::Name(i) => resolved[i as usize] == Some(name_id),
    }
}

fn two_regs(regs: &mut [Mask], a: u8, b: u8) -> (&mut Mask, &Mask) {
    assert_ne!(a, b, "register operands must differ");
    let (a, b) = (a as usize, b as usize);
    if a < b {
        let (lo, hi) = regs.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = regs.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

/// Scalar predicate evaluation at one context slot. Matches
/// `xac_xpath::eval::qualifier_holds` on the fragment: existence and
/// any-node-satisfies semantics short-circuit on the first witness.
fn eval_pred(index: &DocIndex, resolved: &[Option<u32>], slot: u32, pred: &Pred) -> bool {
    match pred {
        Pred::True => true,
        Pred::SelfCmp { op, rhs } => op.compare(index.value_of(slot), rhs),
        Pred::Exists { steps } => rel_walk(index, resolved, slot, steps, &mut |_| true),
        Pred::Cmp { steps, op, rhs } => {
            rel_walk(index, resolved, slot, steps, &mut |n| op.compare(index.value_of(n), rhs))
        }
        Pred::All(preds) => preds.iter().all(|p| eval_pred(index, resolved, slot, p)),
    }
}

/// Walk a relative path from `ctx`, calling `accept` on every node the
/// full path reaches; returns true as soon as `accept` does.
fn rel_walk(
    index: &DocIndex,
    resolved: &[Option<u32>],
    ctx: u32,
    steps: &[RelStep],
    accept: &mut dyn FnMut(u32) -> bool,
) -> bool {
    let Some(step) = steps.first() else {
        return accept(ctx);
    };
    let rest = &steps[1..];
    match step.axis {
        Axis::Child => {
            for &c in index.children_of(ctx) {
                if step_matches(index, resolved, c, step)
                    && rel_walk(index, resolved, c, rest, accept)
                {
                    return true;
                }
            }
        }
        Axis::Descendant => {
            // Pre-order DFS over strict descendants.
            let mut stack: Vec<u32> = index.children_of(ctx).iter().rev().copied().collect();
            while let Some(d) = stack.pop() {
                if step_matches(index, resolved, d, step)
                    && rel_walk(index, resolved, d, rest, accept)
                {
                    return true;
                }
                stack.extend(index.children_of(d).iter().rev());
            }
        }
    }
    false
}

fn step_matches(index: &DocIndex, resolved: &[Option<u32>], slot: u32, step: &RelStep) -> bool {
    sel_admits(resolved, step.name, index.name_id_at(slot))
        && step.preds.iter().all(|p| eval_pred(index, resolved, slot, p))
}
