//! Property test: serialize → parse is the identity on the tree model
//! (both compact and pretty forms), for randomized documents including
//! attributes, text values and characters needing escapes.
//!
//! Seeded hand-rolled generation (no external crates): each case index
//! deterministically derives one document, so failures reproduce.

use xac_xml::Document;

/// Tiny splitmix64 stream keeping this test self-contained and offline.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

fn random_name(rng: &mut Rng) -> String {
    const FIRST: &[char] = &['a', 'b', 'c', 'x', 'y', 'z'];
    const REST: &[char] = &['a', 'z', '0', '9', '_', '-'];
    let mut s = String::new();
    s.push(FIRST[rng.below(FIRST.len())]);
    for _ in 0..rng.below(7) {
        s.push(REST[rng.below(REST.len())]);
    }
    s
}

fn random_text(rng: &mut Rng) -> String {
    // Include every character the serializer must escape; avoid
    // leading/trailing whitespace (the parser trims insignificant space).
    const TEXTS: &[&str] = &[
        "hello",
        "a & b",
        "x<y>z",
        "quote\"apos'",
        "700",
        "héllo→unicode",
    ];
    TEXTS[rng.below(TEXTS.len())].to_string()
}

/// Grow a random subtree under `parent`: leaves carry optional text, inner
/// nodes up to 3 children, both optionally attributed — depth-bounded.
fn attach_random(doc: &mut Document, parent: xac_xml::NodeId, rng: &mut Rng, depth: usize) {
    let n = doc.add_element(parent, random_name(rng));
    if rng.chance(40) {
        doc.set_attribute(n, random_name(rng), random_text(rng));
    }
    if depth == 0 || rng.chance(40) {
        if rng.chance(60) {
            doc.add_text(n, random_text(rng));
        }
    } else {
        for _ in 0..rng.below(4) {
            attach_random(doc, n, rng, depth - 1);
        }
    }
}

fn random_document(rng: &mut Rng) -> Document {
    let mut doc = Document::new(random_name(rng));
    let root = doc.root();
    if rng.chance(40) {
        doc.set_attribute(root, random_name(rng), random_text(rng));
    }
    if rng.chance(30) {
        doc.add_text(root, random_text(rng));
    } else {
        for _ in 0..rng.below(4) {
            attach_random(&mut doc, root, rng, 2);
        }
    }
    doc
}

/// Structural equality that survives re-parsing (NodeIds differ).
fn same_structure(a: &Document, b: &Document) -> bool {
    fn eq(a: &Document, an: xac_xml::NodeId, b: &Document, bn: xac_xml::NodeId) -> bool {
        if a.kind(an) != b.kind(bn) {
            return false;
        }
        if a.attributes(an) != b.attributes(bn) {
            return false;
        }
        let ak: Vec<_> = a.children(an).collect();
        let bk: Vec<_> = b.children(bn).collect();
        ak.len() == bk.len() && ak.iter().zip(&bk).all(|(&x, &y)| eq(a, x, b, y))
    }
    eq(a, a.root(), b, b.root())
}

#[test]
fn compact_round_trip() {
    let mut rng = Rng(0xD1);
    for case in 0..128 {
        let doc = random_document(&mut rng);
        let xml = doc.to_xml();
        let re = Document::parse_str(&xml)
            .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e}\n{xml}"));
        assert!(same_structure(&doc, &re), "case {case}: structure changed:\n{xml}");
        assert_eq!(re.to_xml(), xml, "case {case}: serialization not a fixpoint");
    }
}

#[test]
fn pretty_round_trip() {
    let mut rng = Rng(0xD2);
    for case in 0..128 {
        let doc = random_document(&mut rng);
        let pretty = doc.to_pretty_xml();
        let re = Document::parse_str(&pretty)
            .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e}\n{pretty}"));
        assert!(same_structure(&doc, &re), "case {case}: structure changed:\n{pretty}");
    }
}

#[test]
fn element_counts_preserved() {
    let mut rng = Rng(0xD3);
    for case in 0..128 {
        let doc = random_document(&mut rng);
        let re = Document::parse_str(&doc.to_xml()).unwrap();
        assert_eq!(doc.element_count(), re.element_count(), "case {case}");
        assert_eq!(doc.len(), re.len(), "case {case}");
        assert_eq!(doc.height(), re.height(), "case {case}");
    }
}
