//! Property test: serialize → parse is the identity on the tree model
//! (both compact and pretty forms), for randomized documents including
//! attributes, text values and characters needing escapes.

use proptest::prelude::*;
use xac_xml::Document;

#[derive(Debug, Clone)]
enum Tree {
    Leaf { name: String, text: Option<String>, attr: Option<(String, String)> },
    Node { name: String, attr: Option<(String, String)>, kids: Vec<Tree> },
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_-]{0,6}".prop_map(|s| s)
}

fn arb_text() -> impl Strategy<Value = String> {
    // Include every character the serializer must escape; avoid
    // leading/trailing whitespace (the parser trims insignificant space).
    prop_oneof![
        Just("hello".to_string()),
        Just("a & b".to_string()),
        Just("x<y>z".to_string()),
        Just("quote\"apos'".to_string()),
        Just("700".to_string()),
        Just("héllo→unicode".to_string()),
    ]
}

fn arb_attr() -> impl Strategy<Value = Option<(String, String)>> {
    proptest::option::of((arb_name(), arb_text()))
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = (arb_name(), proptest::option::of(arb_text()), arb_attr())
        .prop_map(|(name, text, attr)| Tree::Leaf { name, text, attr });
    leaf.prop_recursive(3, 20, 4, |inner| {
        (arb_name(), arb_attr(), proptest::collection::vec(inner, 0..4))
            .prop_map(|(name, attr, kids)| Tree::Node { name, attr, kids })
    })
}

fn build(tree: &Tree) -> Document {
    fn attach(doc: &mut Document, parent: xac_xml::NodeId, t: &Tree) {
        match t {
            Tree::Leaf { name, text, attr } => {
                let n = doc.add_element(parent, name.clone());
                if let Some((k, v)) = attr {
                    doc.set_attribute(n, k.clone(), v.clone());
                }
                if let Some(tv) = text {
                    doc.add_text(n, tv.clone());
                }
            }
            Tree::Node { name, attr, kids } => {
                let n = doc.add_element(parent, name.clone());
                if let Some((k, v)) = attr {
                    doc.set_attribute(n, k.clone(), v.clone());
                }
                for k in kids {
                    attach(doc, n, k);
                }
            }
        }
    }
    let (name, attr, kids) = match tree {
        Tree::Leaf { name, text: _, attr } => (name.clone(), attr.clone(), Vec::new()),
        Tree::Node { name, attr, kids } => (name.clone(), attr.clone(), kids.clone()),
    };
    let mut doc = Document::new(name);
    if let Some((k, v)) = attr {
        doc.set_attribute(doc.root(), k, v);
    }
    if let Tree::Leaf { text: Some(tv), .. } = tree {
        doc.add_text(doc.root(), tv.clone());
    }
    let root = doc.root();
    for k in &kids {
        attach(&mut doc, root, k);
    }
    doc
}

/// Structural equality that survives re-parsing (NodeIds differ).
fn same_structure(a: &Document, b: &Document) -> bool {
    fn eq(a: &Document, an: xac_xml::NodeId, b: &Document, bn: xac_xml::NodeId) -> bool {
        if a.kind(an) != b.kind(bn) {
            return false;
        }
        if a.attributes(an) != b.attributes(bn) {
            return false;
        }
        let ak: Vec<_> = a.children(an).collect();
        let bk: Vec<_> = b.children(bn).collect();
        ak.len() == bk.len()
            && ak.iter().zip(&bk).all(|(&x, &y)| eq(a, x, b, y))
    }
    eq(a, a.root(), b, b.root())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn compact_round_trip(t in arb_tree()) {
        let doc = build(&t);
        let xml = doc.to_xml();
        let re = Document::parse_str(&xml)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{xml}"));
        prop_assert!(same_structure(&doc, &re), "structure changed:\n{xml}");
        prop_assert_eq!(re.to_xml(), xml, "serialization not a fixpoint");
    }

    #[test]
    fn pretty_round_trip(t in arb_tree()) {
        let doc = build(&t);
        let pretty = doc.to_pretty_xml();
        let re = Document::parse_str(&pretty)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{pretty}"));
        prop_assert!(same_structure(&doc, &re), "structure changed:\n{pretty}");
    }

    #[test]
    fn element_counts_preserved(t in arb_tree()) {
        let doc = build(&t);
        let re = Document::parse_str(&doc.to_xml()).unwrap();
        prop_assert_eq!(doc.element_count(), re.element_count());
        prop_assert_eq!(doc.len(), re.len());
        prop_assert_eq!(doc.height(), re.height());
    }
}
