//! Serialization of [`Document`]s back to XML text.
//!
//! Two modes are provided: compact (no insignificant whitespace — suitable
//! for size measurements like the paper's Table 5) and pretty-printed (for
//! human inspection in examples and tests).

use crate::model::{Document, NodeId};
use std::fmt::Write as _;

/// Options controlling serialization.
#[derive(Debug, Clone, Copy)]
#[derive(Default)]
pub struct SerializeOptions {
    /// Indent nested elements with two spaces and newlines.
    pub pretty: bool,
}


/// Serialize the whole document compactly.
pub fn to_string(doc: &Document) -> String {
    let mut out = String::new();
    write_node(doc, doc.root(), &mut out, SerializeOptions::default(), 0);
    out
}

/// Serialize the whole document with indentation.
pub fn to_pretty_string(doc: &Document) -> String {
    let mut out = String::new();
    write_node(doc, doc.root(), &mut out, SerializeOptions { pretty: true }, 0);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out
}

impl Document {
    /// Compact serialization. See [`to_string`].
    pub fn to_xml(&self) -> String {
        to_string(self)
    }

    /// Pretty-printed serialization. See [`to_pretty_string`].
    pub fn to_pretty_xml(&self) -> String {
        to_pretty_string(self)
    }
}

fn write_node(doc: &Document, id: NodeId, out: &mut String, opts: SerializeOptions, depth: usize) {
    if let Some(text) = doc.text_value(id) {
        if opts.pretty {
            indent(out, depth);
        }
        escape_into(text, out);
        if opts.pretty {
            out.push('\n');
        }
        return;
    }
    let name = doc.name(id).expect("non-text node is an element");
    if opts.pretty {
        indent(out, depth);
    }
    out.push('<');
    out.push_str(name);
    for (k, v) in doc.attributes(id) {
        let _ = write!(out, " {k}=\"");
        escape_into(v, out);
        out.push('"');
    }
    let mut children = doc.children(id).peekable();
    if children.peek().is_none() {
        out.push_str("/>");
        if opts.pretty {
            out.push('\n');
        }
        return;
    }
    out.push('>');
    if opts.pretty {
        out.push('\n');
    }
    for c in children {
        write_node(doc, c, out, opts, depth + 1);
    }
    if opts.pretty {
        indent(out, depth);
    }
    out.push_str("</");
    out.push_str(name);
    out.push('>');
    if opts.pretty {
        out.push('\n');
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn round_trips_compact() {
        let src = r#"<a sign="+"><b>hi</b><c/></a>"#;
        let doc = parse(src).unwrap();
        assert_eq!(doc.to_xml(), src);
    }

    #[test]
    fn escapes_special_characters() {
        let mut d = Document::new("a");
        let b = d.add_element(d.root(), "b");
        d.add_text(b, "x<&>\"'y");
        d.set_attribute(b, "k", "a&b");
        let xml = d.to_xml();
        assert_eq!(xml, r#"<a><b k="a&amp;b">x&lt;&amp;&gt;&quot;&apos;y</b></a>"#);
        // Re-parse must give back the same values.
        let re = parse(&xml).unwrap();
        let rb = re.first_child_named(re.root(), "b").unwrap();
        assert_eq!(re.text_of(rb), "x<&>\"'y");
        assert_eq!(re.attribute(rb, "k"), Some("a&b"));
    }

    #[test]
    fn pretty_output_reparses_identically() {
        let src = "<a><b>hi</b><c><d/></c></a>";
        let doc = parse(src).unwrap();
        let pretty = doc.to_pretty_xml();
        assert!(pretty.contains("\n  <b>"));
        let re = parse(&pretty).unwrap();
        assert_eq!(re.to_xml(), src);
    }
}
