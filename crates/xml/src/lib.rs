//! # xac-xml
//!
//! The XML substrate of the **xmlac** system: an arena-based tree model for
//! XML documents, a small parser and serializer, and a DTD-style schema
//! graph with the content models used by the paper
//! *"Controlling Access to XML Documents over XML Native and Relational
//! Databases"* (Koromilas et al., SDM 2009).
//!
//! The paper (§2.1) models XML documents as rooted, unordered trees
//! `T = (V_T, E_T, R_T, λ_T)` whose labels come from `Σ ∪ D`: element names
//! from a finite alphabet `Σ` and data values from a domain `D`. This crate
//! realises that model with:
//!
//! * [`Document`] — an arena of [`Node`]s addressed by dense [`NodeId`]s,
//!   supporting O(1) parent/child navigation, subtree iteration, in-place
//!   mutation (insert/delete), and per-element attributes (used by the
//!   native XML store to materialise `sign` annotations);
//! * [`parse`]/[`Document::parse_str`] — a parser for the XML subset the
//!   system manipulates (elements, attributes, character data, comments);
//! * [`serialize`] — a serializer that round-trips parsed documents;
//! * [`schema`] — the node-and-edge-labelled schema graphs of the paper's
//!   Figure 1 (sequence/choice content, `*`/`+`/`?` occurrence indicators),
//!   plus schema analyses needed elsewhere in the system: recursion
//!   detection, reachable label paths, and label paths between two element
//!   types (used for the descendant-axis expansion of §5.3).
//!
//! ```
//! use xac_xml::Document;
//!
//! let doc = Document::parse_str("<a><b>hi</b><b/></a>").unwrap();
//! let root = doc.root();
//! assert_eq!(doc.name(root), Some("a"));
//! assert_eq!(doc.children(root).count(), 2);
//! ```

pub mod dtd;
pub mod error;
pub mod model;
pub mod parse;
pub mod schema;
pub mod serialize;

pub use dtd::parse_dtd;
pub use error::{Error, Result};
pub use model::{Document, Node, NodeId, NodeKind};
pub use schema::{ContentModel, ElementType, Occurs, Particle, Schema};
